//! Umbrella crate for the HeapMD reproduction workspace.
//!
//! Re-exports the workspace members so examples and integration tests can
//! use a single dependency root.

pub use faults;
pub use heap_graph;
pub use heapmd;
pub use sim_ds;
pub use sim_heap;
pub use swat;
pub use workloads;
