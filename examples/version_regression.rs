//! Cross-version checking: the paper's `input*.exe` flow.
//!
//! Trains a model on version 1 of the PC action game, then checks
//! later development versions against it — clean versions stay within
//! the calibrated ranges (Figure 7B's point), and version 4 with the
//! Figure 10 scene-tree bug is caught by the *old* model.
//!
//! Run with `cargo run --release --example version_regression`.

use faults::FaultPlan;
use workloads::bugs::CATALOG;
use workloads::harness::{check, train};
use workloads::{commercial_at_version, Input};

fn main() {
    let v1 = commercial_at_version("game_action", 1);
    println!("Training on game_action v1 (8 inputs)…");
    let model = train(v1.as_ref(), &Input::set(8)).model;
    for sm in model.stable_metrics() {
        println!(
            "  stable {:<9} [{:6.2}, {:6.2}]",
            sm.kind.to_string(),
            sm.min,
            sm.max
        );
    }

    for version in 2..=5 {
        let w = commercial_at_version("game_action", version);
        let bugs = check(w.as_ref(), &model, &Input::new(42), &mut FaultPlan::new());
        println!("v{version} clean: {} anomalies", bugs.len());
    }

    let spec = CATALOG
        .iter()
        .find(|b| b.fault.0 == "ga.scene_tree.skip_parent")
        .expect("catalogued");
    let w = commercial_at_version("game_action", 4);
    let bugs = check(w.as_ref(), &model, &Input::new(42), &mut spec.plan());
    println!("v4 with the Figure 10 bug: {} anomalies", bugs.len());
    if let Some(b) = bugs.first() {
        println!("  {b}");
    }
}
