//! Post-mortem analysis: the paper's second deployment mode.
//!
//! The instrumented program writes an execution trace; later — possibly
//! on another machine — the checker replays the trace against a saved
//! model and produces bug reports with full call-stack context.
//!
//! Run with `cargo run --example postmortem`.

use faults::FaultPlan;
use heapmd::{FuncId, ModelBuilder, Process, Settings, Trace};
use sim_ds::{fault_ids::CLIST_FREE_SHARED_HEAD, SimCircularList};

fn run(
    settings: &Settings,
    plan: &mut FaultPlan,
    traced: bool,
) -> (heapmd::MetricReport, Option<Trace>) {
    let mut p = Process::new(settings.clone());
    if traced {
        p.enable_trace();
    }
    let mut rings: Vec<SimCircularList> =
        (0..12).map(|_| SimCircularList::new("columns")).collect();
    for ring in &mut rings {
        for k in 0..6 {
            ring.push(&mut p, k).expect("push");
        }
    }
    for i in 0..800usize {
        p.enter("scheduler_tick");
        let r = i % rings.len();
        rings[r].push(&mut p, i as u64).expect("push");
        rings[r].rotate_free_head(&mut p, plan).expect("rotate");
        p.leave();
    }
    let trace = p.take_trace().map(|mut t| {
        let names: Vec<String> = (0..p.functions().len())
            .map(|i| p.functions().name(FuncId(i as u32)).to_string())
            .collect();
        t.set_functions(names);
        t
    });
    (p.finish("postmortem"), trace)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let settings = Settings::builder().frq(25).build()?;

    // Train a model on clean runs.
    let mut builder = ModelBuilder::new(settings.clone()).program("scheduler");
    for _ in 0..3 {
        builder.add_run(&run(&settings, &mut FaultPlan::new(), false).0);
    }
    let model = builder.build().model;
    let dir = std::env::temp_dir().join("heapmd-postmortem");
    std::fs::create_dir_all(&dir)?;
    model.save(dir.join("model.json"))?;
    println!("model saved ({} stable metrics)", model.stable.len());

    // The deployed run: Figure 12's shared-head bug, traced.
    let mut plan = FaultPlan::single(CLIST_FREE_SHARED_HEAD);
    let (_, trace) = run(&settings, &mut plan, true);
    let trace = trace.expect("tracing enabled");
    trace.save(dir.join("crash.trace.json"))?;
    println!("trace saved: {} events", trace.len());

    // Post-mortem: reload both, replay, report.
    let model = heapmd::HeapModel::load(dir.join("model.json"))?;
    let trace = Trace::load(dir.join("crash.trace.json"))?;
    let bugs = trace.check(&model, &settings)?;
    println!("post-mortem found {} anomalies", bugs.len());
    for b in bugs.iter().take(3) {
        println!("  {b}");
        let funcs = b.implicated_functions();
        if !funcs.is_empty() {
            println!("    implicated: {funcs:?}");
        }
    }
    Ok(())
}
