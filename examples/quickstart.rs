//! Quickstart: HeapMD end to end in ~60 lines.
//!
//! Trains a heap-behaviour model on clean runs of a toy program, then
//! checks a buggy variant — a doubly-linked list whose insert forgets
//! the `prev` pointers (the paper's Figure 1) — and prints the anomaly
//! report.
//!
//! Run with `cargo run --example quickstart`.

use faults::FaultPlan;
use heapmd::{AnomalyDetector, ModelBuilder, Process, Settings};
use sim_ds::{fault_ids::DLIST_SKIP_PREV, SimDList};
use std::cell::RefCell;
use std::rc::Rc;

/// The "program": an asset list that grows to an input-dependent size,
/// then churns in steady state.
fn run(seed: u64, plan: &mut FaultPlan, settings: &Settings) -> heapmd::MetricReport {
    let mut p = Process::new(settings.clone());
    let mut list = SimDList::new(&mut p, "assets").expect("allocate header");
    let target = 150 + (seed % 7) * 10;
    for i in 0..900u64 {
        p.enter("main_loop");
        list.push_back(&mut p, plan, seed.wrapping_add(i))
            .expect("insert");
        if list.len() as u64 > target {
            if let Some(front) = list.front(&mut p).expect("read") {
                list.remove(&mut p, front).expect("remove");
            }
        }
        p.leave();
    }
    p.finish(format!("run-{seed}"))
}

fn main() {
    let settings = Settings::builder().frq(20).build().expect("valid settings");

    // Phase 1: model construction on three clean training inputs.
    let mut builder = ModelBuilder::new(settings.clone()).program("quickstart");
    for seed in 0..3 {
        builder.add_run(&run(seed, &mut FaultPlan::new(), &settings));
    }
    let model = builder.build().model;
    println!("Calibrated {} stable metrics:", model.stable.len());
    for sm in model.stable_metrics() {
        println!(
            "  {:<9} range [{:6.2}, {:6.2}]",
            sm.kind.to_string(),
            sm.min,
            sm.max
        );
    }

    // Phase 2: execution checking — first clean, then with Figure 1's bug.
    let clean = run(99, &mut FaultPlan::new(), &settings);
    let clean_bugs = AnomalyDetector::check_report(&model, &settings, &clean);
    println!("\nClean run:  {} anomalies", clean_bugs.len());

    let mut buggy_plan = FaultPlan::single(DLIST_SKIP_PREV);
    let buggy = run(99, &mut buggy_plan, &settings);
    let bugs = AnomalyDetector::check_report(&model, &settings, &buggy);
    println!("Buggy run:  {} anomalies", bugs.len());
    for b in &bugs {
        println!("  {b}");
    }

    // The online variant with call-stack context.
    let detector = Rc::new(RefCell::new(AnomalyDetector::new(model, settings.clone())));
    let mut p = Process::new(settings.clone());
    p.attach(detector.clone());
    let mut plan = FaultPlan::single(DLIST_SKIP_PREV);
    let mut list = SimDList::new(&mut p, "assets").expect("header");
    for i in 0..600u64 {
        p.enter("main_loop");
        list.push_back(&mut p, &mut plan, i).expect("insert");
        p.leave();
    }
    let _ = p.finish("online");
    let det = detector.borrow();
    if let Some(bug) = det.bugs().first() {
        println!("\nOnline report with call-stack context:");
        println!("  {bug}");
        println!("  implicated: {:?}", bug.implicated_functions());
    }
}
