//! Leak hunt: the Table 1 scenario in miniature.
//!
//! Runs the interactive web-app with the Figure 11 index-typo leak
//! injected, with both detectors attached: HeapMD (shape anomaly) and
//! the SWAT baseline (staleness). Then runs clean to show the
//! mechanism gap — SWAT false-positives on the reachable-but-stale
//! render cache; HeapMD stays quiet.
//!
//! Run with `cargo run --release --example leak_hunt`.

use faults::FaultPlan;
use heapmd_bench::experiments::dual_run;
use workloads::bugs::CATALOG;
use workloads::harness::{settings_for, train};
use workloads::{commercial_at_version, Input};

fn main() {
    let w = commercial_at_version("webapp", 1);
    let settings = settings_for(w.as_ref());
    println!("Training the web-app model on 8 clean inputs…");
    let model = train(w.as_ref(), &Input::set(8)).model;

    let bug = CATALOG
        .iter()
        .find(|b| b.fault.0 == "webapp.session_props.typo_leak")
        .expect("catalogued");
    println!("\nInjecting: {}", bug.description);
    let run = dual_run(
        w.as_ref(),
        &model,
        &Input::new(100),
        &mut bug.plan(),
        &settings,
    );
    println!("HeapMD anomalies: {}", run.heapmd_bugs.len());
    for b in run.heapmd_bugs.iter().take(2) {
        println!("  {b}");
    }
    println!("SWAT leak sites:");
    for (site, n) in &run.swat_leaks {
        println!("  {site} ({n} stale objects)");
    }

    println!("\nClean run (the false-positive test):");
    let clean = dual_run(
        w.as_ref(),
        &model,
        &Input::new(101),
        &mut FaultPlan::new(),
        &settings,
    );
    println!("HeapMD anomalies: {} (expected 0)", clean.heapmd_bugs.len());
    println!("SWAT leak sites (expected: the stale render cache):");
    for (site, n) in &clean.swat_leaks {
        println!("  {site} ({n} stale objects)");
    }
}
