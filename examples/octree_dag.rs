//! The poorly disguised bug: an oct-tree that becomes an oct-DAG.
//!
//! The paper's only *poorly disguised* bug occurred during startup and
//! pinned the indegree = 1 percentage at the minimum of its calibrated
//! range for the rest of the run. This example reproduces the
//! mechanism in isolation and shows the detector's pinned-extreme
//! report.
//!
//! Run with `cargo run --example octree_dag`.

use faults::FaultPlan;
use heapmd::{AnomalyDetector, MetricKind, ModelBuilder, Process, Settings};
use sim_ds::{fault_ids::OCTREE_ALIAS_SUBTREE, BufferPool, SimOctTree};

fn run(settings: &Settings, plan: &mut FaultPlan, depth: usize) -> heapmd::MetricReport {
    let mut p = Process::new(settings.clone());
    // Startup: build the world.
    let world = SimOctTree::build(&mut p, plan, depth, "world").expect("build");
    let mut scratch = BufferPool::new(60, "frame");
    // Steady state: render frames.
    for _ in 0..700 {
        p.enter("render_frame");
        scratch.acquire(&mut p, 128).expect("acquire");
        world.touch_all(&mut p).expect("touch");
        p.leave();
    }
    world.free_all(&mut p).expect("free");
    p.finish("octree")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let settings = Settings::builder().frq(20).build()?;
    let mut builder = ModelBuilder::new(settings.clone()).program("renderer");
    for _ in 0..3 {
        builder.add_run(&run(&settings, &mut FaultPlan::new(), 2));
    }
    let model = builder.build().model;
    let sm = model
        .stable_metric(MetricKind::Indeg1)
        .expect("a clean oct-tree pins indeg=1 high");
    println!(
        "clean model: Indeg=1 calibrated to [{:.1}, {:.1}]",
        sm.min, sm.max
    );

    let mut plan = FaultPlan::single(OCTREE_ALIAS_SUBTREE);
    let report = run(&settings, &mut plan, 2);
    let bugs = AnomalyDetector::check_report(&model, &settings, &report);
    println!("oct-DAG run: {} reports", bugs.len());
    for b in &bugs {
        println!("  {b}");
    }
    Ok(())
}
