//! Per-structure (site-scoped) metrics — the §4.4 extension.
//!
//! HeapMD computes metrics over the whole heap, so a malformed
//! structure must be "systemic" to surface (§3.1's needle-in-a-haystack
//! analogy). The scoped view restricts the heap-graph to one
//! structure's allocation sites, where even a *small* malformed list
//! shifts the degree profile by tens of points — at the cost of the
//! per-structure false-positive surface the paper avoided.
//!
//! Run with `cargo run --example per_structure`.

use faults::{FaultConfig, FaultPlan};
use heap_graph::ScopedGraph;
use heapmd::{MetricKind, Monitor, MonitorCtx, Process, Settings};
use sim_ds::{fault_ids::DLIST_SKIP_PREV, BufferPool, SimDList};
use std::cell::RefCell;
use std::rc::Rc;

/// A monitor maintaining a scoped view from the event stream.
struct ScopedMonitor {
    scoped: ScopedGraph,
}

impl Monitor for ScopedMonitor {
    fn on_event(&mut self, _ctx: &MonitorCtx<'_>, event: &heapmd::HeapEvent) {
        self.scoped.apply(event);
    }
}

fn run(buggy: bool) -> (f64, f64) {
    let settings = Settings::builder().frq(1_000).build().expect("valid");
    let mut p = Process::new(settings);
    // The scope: the asset list's node site. Site ids are interned in
    // order; intern them first so the scope can name them.
    let node_site = p.intern_site("assets::node");
    let monitor = Rc::new(RefCell::new(ScopedMonitor {
        scoped: ScopedGraph::new([node_site]),
    }));
    p.attach(monitor.clone());

    let mut plan = FaultPlan::new();
    if buggy {
        // Fire on every third insert: a sparse, non-systemic bug.
        plan.enable(DLIST_SKIP_PREV, FaultConfig::every(3));
    }
    let mut assets = SimDList::new(&mut p, "assets").expect("header");
    let mut noise = BufferPool::new(400, "textures");
    for i in 0..2_000u64 {
        p.enter("frame");
        noise.acquire(&mut p, 128).expect("acquire");
        assets.push_back(&mut p, &mut plan, i).expect("insert");
        if assets.len() > 60 {
            if let Some(front) = assets.front(&mut p).expect("read") {
                assets.remove(&mut p, front).expect("remove");
            }
        }
        p.leave();
    }
    let global = p.graph().metrics().get(MetricKind::Indeg2);
    let scoped = monitor.borrow().scoped.metrics().get(MetricKind::Indeg2);
    let _ = p.finish(if buggy { "buggy" } else { "clean" });
    (global, scoped)
}

fn main() {
    let (g_clean, s_clean) = run(false);
    let (g_buggy, s_buggy) = run(true);
    println!("Indeg=2 (interior doubly-linked nodes):");
    println!("               clean     buggy     shift");
    println!(
        "  whole heap   {g_clean:6.2}%   {g_buggy:6.2}%   {:+.2} points",
        g_buggy - g_clean
    );
    println!(
        "  scoped view  {s_clean:6.2}%   {s_buggy:6.2}%   {:+.2} points",
        s_buggy - s_clean
    );
    println!(
        "\nThe sparse bug barely moves the whole-heap metric but craters\n\
         the per-structure view — the trade-off §4.4 describes."
    );
}
