//! Differential property test for the binary trace codec: any valid
//! event sequence round-tripped through the block-based binary format
//! and through the framed-JSONL stream must come back as the same
//! `Trace` — and the two copies must replay to bit-identical metric
//! reports (all seven paper metrics compared via `f64::to_bits`) and
//! produce identical `check` verdicts, whether checked in memory or
//! through the pipelined binary engine.
//!
//! This is the acceptance gate for the codec: the on-disk encoding is
//! an implementation detail that must never change a single observable.

use heapmd::{
    BinaryTraceImage, BinaryTraceReader, BinaryTraceWriter, MetricKind, MetricReport, ModelBuilder,
    Settings, Trace, TraceReader, TraceWriter,
};
use proptest::prelude::*;
use sim_heap::{AllocSite, HeapError, HeapEvent, SimHeap};

#[derive(Debug, Clone)]
enum Op {
    Alloc(usize),
    FreeNth(usize),
    Link { src: usize, dst: usize, slot: u64 },
    Scalar { src: usize, slot: u64 },
    Call(u32),
    Return,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (8usize..96).prop_map(Op::Alloc),
        2 => (0usize..48).prop_map(Op::FreeNth),
        4 => ((0usize..48), (0usize..48), (0u64..4))
            .prop_map(|(src, dst, slot)| Op::Link { src, dst, slot: slot * 8 }),
        1 => ((0usize..48), (0u64..4)).prop_map(|(src, slot)| Op::Scalar { src, slot: slot * 8 }),
        3 => (0u32..4).prop_map(Op::Call),
        2 => (0u32..1).prop_map(|_| Op::Return),
    ]
}

/// Materializes a random op list into a valid trace: heap effects come
/// from a real `SimHeap` (so ids, addresses, and old-values are
/// consistent) and call events keep enter/exit balanced.
fn build_trace(ops: &[Op]) -> Trace {
    let mut heap = SimHeap::new();
    let mut live = Vec::new();
    let mut depth = 0u32;
    let mut trace = Trace::new();
    for op in ops {
        match *op {
            Op::Alloc(size) => {
                let eff = heap.alloc(size, AllocSite(1)).unwrap();
                live.push(eff.addr);
                trace.push(HeapEvent::Alloc {
                    obj: eff.id,
                    addr: eff.addr,
                    size: eff.size,
                    site: AllocSite(1),
                });
            }
            Op::FreeNth(n) => {
                if !live.is_empty() {
                    let addr = live.remove(n % live.len());
                    let eff = heap.free(addr).unwrap();
                    trace.push(HeapEvent::Free {
                        obj: eff.id,
                        addr: eff.addr,
                        size: eff.size,
                    });
                }
            }
            Op::Link { src, dst, slot } => {
                if !live.is_empty() {
                    let s = live[src % live.len()];
                    let d = live[dst % live.len()];
                    match heap.write_ptr(s.offset(slot), d) {
                        Ok(w) => trace.push(HeapEvent::PtrWrite {
                            src: w.src,
                            offset: w.offset,
                            value: d,
                            old_value: w.old_value,
                        }),
                        Err(HeapError::TornAccess { .. } | HeapError::WildAccess(_)) => {}
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
            }
            Op::Scalar { src, slot } => {
                if !live.is_empty() {
                    let s = live[src % live.len()];
                    match heap.write_scalar(s.offset(slot)) {
                        Ok(w) => trace.push(HeapEvent::ScalarWrite {
                            src: w.src,
                            offset: w.offset,
                            old_value: w.old_value,
                        }),
                        Err(HeapError::WildAccess(_)) => {}
                        Err(e) => panic!("unexpected: {e}"),
                    }
                }
            }
            Op::Call(func) => {
                depth += 1;
                trace.push(HeapEvent::FnEnter { func });
            }
            Op::Return => {
                if depth > 0 {
                    depth -= 1;
                    trace.push(HeapEvent::FnExit { func: 0 });
                }
            }
        }
    }
    trace.set_functions(vec!["f0".into(), "f1".into(), "f2".into(), "f3".into()]);
    trace
}

/// Streams `trace` through the framed-JSONL writer into memory.
fn jsonl_bytes(trace: &Trace) -> Vec<u8> {
    let mut w = TraceWriter::new(Vec::new()).unwrap();
    for ev in trace.events() {
        w.write_event(ev).unwrap();
    }
    w.write_functions(trace.functions()).unwrap();
    w.finish().unwrap()
}

/// Streams `trace` through the binary block writer into memory.
fn binary_bytes(trace: &Trace) -> Vec<u8> {
    let mut w = BinaryTraceWriter::new(Vec::new()).unwrap();
    for ev in trace.events() {
        w.write_event(ev).unwrap();
    }
    w.write_functions(trace.functions()).unwrap();
    w.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ISSUE acceptance: binary and JSONL round trips of an arbitrary
    // event sequence are indistinguishable — same events, same
    // replayed samples bit-for-bit, same check verdicts.
    #[test]
    fn binary_and_jsonl_round_trips_are_indistinguishable(
        ops in proptest::collection::vec(op_strategy(), 1..300),
        frq in 1u64..8,
    ) {
        let trace = build_trace(&ops);
        let from_jsonl = TraceReader::strict(&jsonl_bytes(&trace)[..]).unwrap();
        let from_binary = BinaryTraceReader::strict(&binary_bytes(&trace)[..]).unwrap();
        prop_assert_eq!(&from_jsonl, &trace, "JSONL round trip changed the trace");
        prop_assert_eq!(&from_binary, &trace, "binary round trip changed the trace");

        // Replay both copies: every sample must agree on every one of
        // the seven paper metrics at the bit level, plus the structural
        // counters and the sampling clocks.
        let settings = Settings::builder().frq(frq).build().unwrap();
        let a = from_jsonl.replay(&settings, "differential").unwrap();
        let b = from_binary.replay(&settings, "differential").unwrap();
        prop_assert_eq!(a.samples.len(), b.samples.len());
        for (sa, sb) in a.samples.iter().zip(&b.samples) {
            prop_assert_eq!(sa.seq, sb.seq);
            prop_assert_eq!(sa.fn_entries, sb.fn_entries);
            prop_assert_eq!(sa.tick, sb.tick);
            prop_assert_eq!((sa.nodes, sa.edges, sa.dangling), (sb.nodes, sb.edges, sb.dangling));
            for kind in MetricKind::ALL {
                prop_assert_eq!(
                    sa.metrics.get(kind).to_bits(),
                    sb.metrics.get(kind).to_bits(),
                    "metric {:?} diverged between formats: {} vs {}",
                    kind,
                    sa.metrics.get(kind),
                    sb.metrics.get(kind)
                );
            }
        }

        // Check verdicts: train a throwaway model on the replayed
        // report, then both copies — in-memory and pipelined — must
        // return the same `BugReport` list.
        let mut builder = ModelBuilder::new(settings.clone());
        builder.add_run(&a);
        let model = builder.build().model;
        // Debug rendering keeps the comparison NaN-stable: a metric the
        // tiny one-run model never calibrated carries (NaN, NaN) bounds,
        // which are *identical* but not PartialEq-equal.
        let jsonl_bugs = format!("{:?}", from_jsonl.check(&model, &settings).unwrap());
        let memory_bugs = format!("{:?}", from_binary.check(&model, &settings).unwrap());
        let image = BinaryTraceImage::open(binary_bytes(&trace)).unwrap();
        let pipelined_bugs =
            format!("{:?}", heapmd::check_binary(&image, &model, &settings).unwrap());
        prop_assert_eq!(&jsonl_bugs, &memory_bugs, "verdicts diverged between formats");
        prop_assert_eq!(&jsonl_bugs, &pipelined_bugs, "pipelined verdicts diverged");
    }

    // The binary encoding earns its keep: it must never be larger than
    // the framed JSONL of the same events (and is typically 5-15x
    // smaller for non-trivial traces).
    #[test]
    fn binary_is_never_larger_than_jsonl(
        ops in proptest::collection::vec(op_strategy(), 8..200),
    ) {
        let trace = build_trace(&ops);
        let jsonl = jsonl_bytes(&trace).len();
        let binary = binary_bytes(&trace).len();
        prop_assert!(
            binary <= jsonl,
            "binary encoding ({binary} bytes) larger than JSONL ({jsonl} bytes)"
        );
    }
}

/// Asserts two metric reports carry the same samples, bit-for-bit on
/// every one of the seven paper metrics.
fn assert_reports_match(
    a: &MetricReport,
    b: &MetricReport,
    what: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        a.samples.len(),
        b.samples.len(),
        "{}: sample count diverged",
        what
    );
    for (sa, sb) in a.samples.iter().zip(&b.samples) {
        prop_assert_eq!(sa.seq, sb.seq);
        prop_assert_eq!(sa.fn_entries, sb.fn_entries);
        prop_assert_eq!(sa.tick, sb.tick);
        prop_assert_eq!(
            (sa.nodes, sa.edges, sa.dangling),
            (sb.nodes, sb.edges, sb.dangling)
        );
        for kind in MetricKind::ALL {
            prop_assert_eq!(
                sa.metrics.get(kind).to_bits(),
                sb.metrics.get(kind).to_bits(),
                "{}: metric {:?} diverged: {} vs {}",
                what,
                kind,
                sa.metrics.get(kind),
                sb.metrics.get(kind)
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // PR 8 acceptance: the sharded replay engine (any shard count) and
    // the mmap decode path are unobservable — same samples bit-for-bit
    // as the fused single-thread engine, same check verdicts, and the
    // same salvage result whether a damaged file is read through the
    // strict path's fallback or the block-granular scavenger.
    #[test]
    fn sharded_and_mapped_engines_match_the_fused_path(
        ops in proptest::collection::vec(op_strategy(), 1..250),
        frq in 1u64..8,
        cut_pct in 10u64..101,
    ) {
        let trace = build_trace(&ops);
        let bytes = binary_bytes(&trace);
        let settings = Settings::builder().frq(frq).build().unwrap();
        let image = BinaryTraceImage::open(bytes.clone()).unwrap();

        // Shard sweep: 2, 3 (does not divide the address space evenly),
        // and 8 worker shards must reproduce the fused engine's report.
        let fused = heapmd::replay_binary_fused(&image, &settings, "differential").unwrap();
        for shards in [2usize, 3, 8] {
            let sharded =
                heapmd::replay_binary_sharded(&image, &settings, "differential", shards).unwrap();
            assert_reports_match(&sharded, &fused, &format!("{shards}-shard replay"))?;
        }

        // Check verdicts through the sharded checker. Debug rendering
        // keeps the comparison NaN-stable (see above).
        let mut builder = ModelBuilder::new(settings.clone());
        builder.add_run(&fused);
        let model = builder.build().model;
        let baseline = format!("{:?}", heapmd::check_binary(&image, &model, &settings).unwrap());
        for shards in [2usize, 3, 8] {
            let sharded = format!(
                "{:?}",
                heapmd::check_binary_sharded(&image, &model, &settings, shards).unwrap()
            );
            prop_assert_eq!(&baseline, &sharded, "{}-shard verdicts diverged", shards);
        }

        // mmap vs buffered: the same file opened through the zero-copy
        // mapping and through a plain read must replay identically.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("heapmd-prop-mmap-{}.hmdt", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let mapped = BinaryTraceImage::open_path(&path).unwrap();
        let buffered = BinaryTraceImage::open_path_buffered(&path).unwrap();
        let via_map = heapmd::replay_binary_fused(&mapped, &settings, "differential").unwrap();
        let via_buf = heapmd::replay_binary_fused(&buffered, &settings, "differential").unwrap();
        assert_reports_match(&via_map, &fused, "mmap replay")?;
        assert_reports_match(&via_buf, &fused, "buffered replay")?;

        // Truncated-file salvage: cutting the file anywhere must leave
        // the path-based scavenger and the in-memory scavenger in exact
        // agreement on what was recovered.
        let cut = (bytes.len() as u64 * cut_pct / 100) as usize;
        let trunc = dir.join(format!("heapmd-prop-trunc-{}.hmdt", std::process::id()));
        std::fs::write(&trunc, &bytes[..cut]).unwrap();
        let (disk_trace, disk_stats) = Trace::salvage_binary(&trunc).unwrap();
        let (mem_trace, mem_stats) = BinaryTraceReader::salvage(&bytes[..cut]).unwrap();
        prop_assert_eq!(&disk_trace, &mem_trace, "salvaged traces diverged");
        prop_assert_eq!(&disk_stats, &mem_stats, "salvage stats diverged");
        if cut == bytes.len() {
            prop_assert!(disk_stats.complete, "full file salvage reported loss");
            prop_assert_eq!(&disk_trace, &trace);
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&trunc).ok();
    }
}
