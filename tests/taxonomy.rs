//! The detectability taxonomy of §4.1, executed: heap-anomaly bugs are
//! caught, well-disguised and invisible ones are not, the oct-DAG is
//! poorly disguised.

use workloads::bugs::{CATALOG, SWAT_ONLY};
use workloads::harness::{check, train};
use workloads::{commercial_at_version, Input};

#[test]
fn tiny_leaks_are_well_disguised() {
    let w = commercial_at_version("game_sim", 1);
    let model = train(w.as_ref(), &Input::set(10)).model;
    let leak = SWAT_ONLY
        .iter()
        .find(|l| l.fault.0 == "gs.replay_list.tiny_leak")
        .expect("catalogued");
    let bugs = check(w.as_ref(), &model, &Input::new(88), &mut leak.plan());
    assert!(
        bugs.is_empty(),
        "a four-object leak must not move any degree metric: {bugs:?}"
    );
}

#[test]
fn typo_leak_is_a_heap_anomaly() {
    let w = commercial_at_version("game_sim", 1);
    let model = train(w.as_ref(), &Input::set(10)).model;
    let bug = CATALOG
        .iter()
        .find(|b| b.fault.0 == "gs.unit_props.typo_leak")
        .expect("catalogued");
    let bugs = check(w.as_ref(), &model, &Input::new(88), &mut bug.plan());
    assert!(!bugs.is_empty(), "the Figure 11 typo leak must be detected");
}

#[test]
fn shared_state_ring_bug_is_detected() {
    let w = commercial_at_version("multimedia", 1);
    let model = train(w.as_ref(), &Input::set(5)).model;
    let bug = CATALOG
        .iter()
        .find(|b| b.fault.0 == "mm.stream_ring.free_shared_head")
        .expect("catalogued");
    let bugs = check(w.as_ref(), &model, &Input::new(88), &mut bug.plan());
    assert!(!bugs.is_empty(), "the Figure 12 bug must be detected");
}

#[test]
fn catalog_matches_the_paper_totals() {
    assert_eq!(CATALOG.len(), 40, "Table 2 has 40 bugs");
    let typos = CATALOG
        .iter()
        .filter(|b| b.category == heapmd::BugCategory::ProgrammingTypo)
        .count();
    assert_eq!(typos, 11);
    // 31 of the 40 were previously unknown: the 9 Table 1 leaks are the
    // typo leaks of the three Table 1 programs.
    let table1_leaks = CATALOG
        .iter()
        .filter(|b| {
            b.category == heapmd::BugCategory::ProgrammingTypo
                && ["multimedia", "webapp", "game_sim"].contains(&b.app)
        })
        .count();
    assert_eq!(table1_leaks, 9);
    assert_eq!(CATALOG.len() - table1_leaks, 31);
}
