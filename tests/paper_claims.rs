//! The paper's headline claims, checked at reduced (quick) effort:
//! stable metrics exist for every program, the same metrics persist
//! across versions, and the experiment harness reproduces the table
//! shapes.

use heapmd_bench::{experiments, Effort};

#[test]
fn stable_metrics_exist_for_all_13_programs() {
    let (rows, _) = experiments::fig7a(Effort::Quick);
    assert_eq!(rows.len(), 13);
    for row in &rows {
        assert!(
            row.stable_count >= 1,
            "{} calibrated no stable metric",
            row.program
        );
        let sm = row.example.as_ref().expect("example metric");
        assert!(
            sm.avg_change.abs() <= 1.0,
            "{}: example metric drifts {:.2}%/step",
            row.program,
            sm.avg_change
        );
        assert!(sm.std_change < 5.0);
        assert!(sm.min >= 0.0 && sm.max <= 100.0);
    }
}

#[test]
fn stable_metrics_persist_across_versions() {
    let (rows, _) = experiments::fig7b(Effort::Quick);
    assert_eq!(rows.len(), 5);
    for row in &rows {
        assert!(
            !row.common_stable.is_empty(),
            "{}: no metric stable across all versions",
            row.program
        );
    }
}

#[test]
fn fig10_reproduces_the_indeg1_violation() {
    let result = experiments::fig10(Effort::Quick);
    assert!(result.indeg1_violated, "Indeg=1 must leave its range");
    assert!(result.rendered.contains("calibrated max"));
}

#[test]
fn injected_spec_bugs_are_detected() {
    let (results, _) = experiments::injection(Effort::Quick);
    let detected = results.iter().filter(|(_, _, d)| *d).count();
    assert!(
        detected >= results.len() - 1,
        "artificial injection should be detected nearly always: {results:?}"
    );
}
