//! End-to-end check of the observability layer: run a workload with a
//! JSON-lines sink attached and verify the stream against the run's own
//! report — one heartbeat per metric computation point, a final
//! counters event, and a Prometheus dump carrying the same series.
//!
//! The obs globals (enabled flag, sink, registry) are process-wide, so
//! every test here serialises on one mutex and leaves obs disabled on
//! exit.

use faults::FaultPlan;
use heapmd::Process;
use serde_json::Value;
use std::sync::Mutex;
use workloads::harness::settings_for;
use workloads::{registry, Input};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn temp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("heapmd_obs_{}_{name}", std::process::id()))
}

#[test]
fn jsonl_stream_matches_the_run() {
    let _guard = OBS_LOCK.lock().unwrap();
    let path = temp_path("stream.jsonl");

    heapmd_obs::set_enabled(true);
    heapmd_obs::export::set_sink_file(&path).unwrap();

    let w = registry().into_iter().find(|w| w.name() == "gzip").unwrap();
    let settings = settings_for(w.as_ref());
    let mut p = Process::new(settings);
    w.run(&mut p, &mut FaultPlan::new(), &Input::new(7))
        .unwrap();
    let stats = *p.heap().stats();
    let report = p.finish("obs-test");

    heapmd_obs::export::emit_counters_event();
    heapmd_obs::export::clear_sink();
    heapmd_obs::set_enabled(false);

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let events: Vec<Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("every line is one JSON object"))
        .collect();
    assert!(!events.is_empty());
    for e in &events {
        assert!(e["type"].as_str().is_some(), "events carry a type tag");
        assert!(e["ts_ms"].as_u64().is_some(), "events carry a timestamp");
    }

    // One heartbeat per metric computation point, in order, with all
    // seven degree metrics attached.
    let heartbeats: Vec<&Value> = events
        .iter()
        .filter(|e| e["type"].as_str() == Some("heartbeat"))
        .collect();
    assert_eq!(heartbeats.len(), report.samples.len());
    for (i, (hb, sample)) in heartbeats.iter().zip(&report.samples).enumerate() {
        assert_eq!(hb["seq"].as_u64(), Some(sample.seq as u64), "heartbeat {i}");
        assert_eq!(hb["fn_entries"].as_u64(), Some(sample.fn_entries));
        assert_eq!(hb["nodes"].as_u64(), Some(sample.nodes));
        for name in [
            "Root", "Indeg=1", "Indeg=2", "Leaves", "Outdeg=1", "Outdeg=2", "In=Out",
        ] {
            assert!(
                hb["metrics"][name].as_f64().is_some(),
                "heartbeat {i} carries metric {name}"
            );
        }
    }

    // Exactly one final counters event; the process-global registry may
    // carry counts from other obs-enabled tests in this binary, so the
    // totals bound this run's heap activity from above.
    let counters: Vec<&Value> = events
        .iter()
        .filter(|e| e["type"].as_str() == Some("counters"))
        .collect();
    assert_eq!(counters.len(), 1);
    let c = &counters[0]["counters"];
    assert!(c["sim_heap_alloc_total"].as_u64().unwrap() >= stats.allocs as u64);
    assert!(c["sim_heap_free_total"].as_u64().unwrap() >= stats.frees as u64);
    assert!(c["heapmd_samples_total"].as_u64().unwrap() >= report.samples.len() as u64);
}

#[test]
fn prometheus_dump_carries_the_series() {
    let _guard = OBS_LOCK.lock().unwrap();

    heapmd_obs::set_enabled(true);
    let w = registry().into_iter().find(|w| w.name() == "mcf").unwrap();
    let settings = settings_for(w.as_ref());
    let mut p = Process::new(settings);
    w.run(&mut p, &mut FaultPlan::new(), &Input::new(3))
        .unwrap();
    let _ = p.finish("obs-prom-test");
    heapmd_obs::set_enabled(false);

    let text = heapmd_obs::export::prometheus_text();
    assert!(text.contains("# TYPE sim_heap_alloc_total counter"));
    assert!(text.contains("# TYPE heapmd_graph_nodes gauge"));
    assert!(text.contains("# TYPE heap_graph_metrics_ns histogram"));
    assert!(text.contains("heap_graph_metrics_ns_bucket{le=\"+Inf\"}"));
    assert!(text.contains("heap_graph_metrics_ns_count"));
}

#[test]
fn disabled_obs_keeps_the_sink_silent() {
    let _guard = OBS_LOCK.lock().unwrap();
    let path = temp_path("silent.jsonl");

    // With obs disabled and no sink attached, a full run must leave no
    // trace: counters stay put (every probe early-outs on the enabled
    // flag) and nothing is written anywhere.
    let before = heapmd_obs::registry().counter("sim_heap_alloc_total").get();
    let w = registry().into_iter().find(|w| w.name() == "gzip").unwrap();
    let settings = settings_for(w.as_ref());
    let mut p = Process::new(settings);
    w.run(&mut p, &mut FaultPlan::new(), &Input::new(5))
        .unwrap();
    let _ = p.finish("obs-disabled-test");
    let after = heapmd_obs::registry().counter("sim_heap_alloc_total").get();
    assert_eq!(before, after, "disabled probes record nothing");
    assert!(!path.exists(), "no sink was attached, no file appears");
}
