//! The reproduction's extension features, end to end: locally stable
//! models (§2.1 future work), the DIDUCE-style online learner (§2's
//! third design), field-granularity ablation (Figure 3), and the
//! alternative connectivity metrics (§2.1).

use faults::FaultPlan;
use heapmd::{ModelBuilder, OnlineLearner, Process, Settings};
use std::cell::RefCell;
use std::rc::Rc;
use workloads::harness::{run_once, settings_for};
use workloads::Input;

/// gcc alternates parse/optimize phases — the natural host for the
/// locally-stable model.
#[test]
fn locally_stable_model_calibrates_on_gcc() {
    let w = workloads::spec::Gcc;
    let settings = settings_for(&w);
    let mut builder = ModelBuilder::new(settings.clone())
        .program("gcc")
        .locally_stable(true);
    for input in Input::set(4) {
        builder.add_run(&run_once(&w, &input, &mut FaultPlan::new(), &settings));
    }
    let model = builder.build().model;
    // Globally stable metrics exist AND at least part of the residue is
    // captured as locally stable phase bands.
    assert!(!model.stable.is_empty());
    for lm in &model.locally_stable {
        assert!(!lm.ranges.is_empty());
        for &(lo, hi) in &lm.ranges {
            assert!(lo <= hi);
            assert!((0.0..=100.0).contains(&lo));
            assert!(hi <= 100.0);
        }
    }
}

#[test]
fn online_learner_flags_an_injected_bug_without_training() {
    use sim_ds::{fault_ids::DLIST_SKIP_PREV, SimDList};
    let settings = Settings::builder()
        .frq(15)
        .warmup_samples(3)
        .build()
        .unwrap();

    let run = |plan: &mut FaultPlan| -> usize {
        let learner = Rc::new(RefCell::new(OnlineLearner::new(settings.clone())));
        let mut p = Process::new(settings.clone());
        p.attach(learner.clone());
        let mut list = SimDList::new(&mut p, "t").unwrap();
        for i in 0..900u64 {
            p.enter("tick");
            // Clean steady state for the first two thirds…
            list.push_back(&mut p, plan, i).unwrap();
            if list.len() > 150 {
                if let Some(front) = list.front(&mut p).unwrap() {
                    list.remove(&mut p, front).unwrap();
                }
            }
            p.leave();
        }
        let _ = p.finish("online");
        let n = learner.borrow().reports().len();
        n
    };

    let clean = run(&mut FaultPlan::new());
    // The bug only starts firing late: the learner has a settled model
    // by then, so the indegree shift is an anomaly.
    let mut plan = FaultPlan::new();
    plan.enable(DLIST_SKIP_PREV, faults::FaultConfig::always().after(500));
    let buggy = run(&mut plan);
    assert!(
        buggy > clean,
        "online learner should flag the late-onset bug (clean {clean}, buggy {buggy})"
    );
}

#[test]
fn field_granularity_is_layout_sensitive_but_object_is_not() {
    use heap_graph::{FieldGraph, HeapGraph};
    use sim_heap::{AllocSite, SimHeap};

    let build = |next_off: u64| {
        let mut heap = SimHeap::new();
        let mut og = HeapGraph::new();
        let mut fg = FieldGraph::new();
        let mut prev = None;
        for _ in 0..50 {
            let eff = heap.alloc(16, AllocSite(0)).unwrap();
            og.on_alloc(eff.id, eff.addr, eff.size);
            fg.on_alloc(eff.id, eff.addr, eff.size);
            if let Some(prev) = prev {
                let w = heap.write_ptr(eff.addr.offset(next_off), prev).unwrap();
                og.on_ptr_write(w.src, w.offset, prev);
                fg.on_ptr_write(w.src, w.offset, prev);
            }
            prev = Some(eff.addr);
        }
        (og.metrics(), fg.metrics())
    };
    let (oa, fa) = build(8);
    let (ob, fb) = build(0);
    assert_eq!(oa, ob);
    assert_ne!(fa, fb);
}

#[test]
fn connectivity_metrics_census_a_real_workload() {
    // Run game_sim (rings + graph + lists) and census its heap: rings
    // are the non-trivial SCCs.
    let w = workloads::commercial::GameSim::new(1);
    let settings = settings_for(&w);
    let mut p = Process::new(settings);
    // Run a shortened version manually: reuse the workload but stop
    // before shutdown is impossible through the trait — instead just
    // inspect mid-run via a monitor-less full run plus a rebuilt rig.
    // Simpler: drive the structures directly.
    let plan = FaultPlan::new();
    let mut rings: Vec<sim_ds::SimCircularList> = Vec::new();
    for _ in 0..6 {
        let mut ring = sim_ds::SimCircularList::new("rings");
        for k in 0..5 {
            ring.push(&mut p, k).unwrap();
        }
        rings.push(ring);
    }
    let mut list = sim_ds::SimList::new("chain");
    for k in 0..20 {
        list.push_front(&mut p, k).unwrap();
    }
    let sccs = p.graph().sccs();
    assert_eq!(sccs.nontrivial, 6, "each ring is one cycle");
    assert_eq!(sccs.largest, 5);
    let comps = p.graph().components();
    assert_eq!(comps.count, 7, "6 rings + 1 chain");
    let _ = (w, plan.enabled());
}
