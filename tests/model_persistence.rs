//! Model save/load: a model trained in one process checks runs in
//! another (the paper's summarized-metric-report file).

use heapmd::HeapModel;
use workloads::bugs::CATALOG;
use workloads::harness::{check, train};
use workloads::{commercial_at_version, Input};

#[test]
fn saved_model_detects_the_same_bugs() {
    let w = commercial_at_version("multimedia", 1);
    let model = train(w.as_ref(), &Input::set(4)).model;

    let dir = std::env::temp_dir().join("heapmd-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mm-model.json");
    model.save(&path).unwrap();
    let loaded = HeapModel::load(&path).unwrap();
    // JSON round-trips floats to within an ulp; compare semantically.
    assert_eq!(model.program, loaded.program);
    assert_eq!(model.training_runs, loaded.training_runs);
    assert_eq!(model.stable.len(), loaded.stable.len());
    for (a, b) in model.stable.iter().zip(&loaded.stable) {
        assert_eq!(a.kind, b.kind);
        assert!((a.min - b.min).abs() < 1e-9);
        assert!((a.max - b.max).abs() < 1e-9);
    }

    let bug = CATALOG
        .iter()
        .find(|b| b.fault.0 == "mm.track_dlist.skip_prev")
        .expect("catalogued");
    let direct = check(w.as_ref(), &model, &Input::new(9), &mut bug.plan());
    let via_file = check(w.as_ref(), &loaded, &Input::new(9), &mut bug.plan());
    assert_eq!(direct.len(), via_file.len());
    assert!(!direct.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn model_json_is_human_readable() {
    let w = commercial_at_version("productivity", 1);
    let model = train(w.as_ref(), &Input::set(3)).model;
    let json = model.to_json().unwrap();
    assert!(json.contains("\"program\": \"productivity\""));
    assert!(json.contains("stable"));
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert!(value["training_runs"].as_u64().unwrap() >= 3);
}
