//! Differential property tests for the production-overhead sampling
//! pipeline (PR 10): with `decimation == 1` the [`SampledIngest`]
//! filter is a pure passthrough, so every observable — recorded
//! events, replayed metric samples, trained models, and post-mortem
//! verdicts — must be **bit-identical** to the unsampled pipeline.
//! This is the acceptance gate that lets `--sample` default to exact
//! behavior and only trade fidelity when the operator dials
//! decimation up.
//!
//! A second property pins the invariants that survive real decimation
//! (`decimation > 1`): allocation, free, and function events are never
//! dropped (object counts stay exact), the kept stream is a strict
//! subsequence of the original, and the measured rate stays in
//! `(0, 1]`.

use heapmd::{ModelBuilder, Process, SamplerConfig, Settings};
use proptest::prelude::*;
use sim_heap::HeapEvent;

/// One mutation step of the synthetic workload driven below.
#[derive(Debug, Clone)]
enum Op {
    Alloc,
    FreeNth(usize),
    Link { src: usize, dst: usize, slot: u64 },
    Scalar { src: usize, slot: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0usize..1).prop_map(|_| Op::Alloc),
        1 => (0usize..64).prop_map(Op::FreeNth),
        4 => ((0usize..64), (0usize..64), (0u64..4))
            .prop_map(|(src, dst, slot)| Op::Link { src, dst, slot: slot * 8 }),
        2 => ((0usize..64), (0u64..4)).prop_map(|(src, slot)| Op::Scalar { src, slot: slot * 8 }),
    ]
}

fn settings() -> Settings {
    Settings::builder()
        .frq(2)
        .build()
        .expect("test settings are valid")
}

/// Replays `ops` against a fresh process. Every op runs inside a
/// function scope so the metric pipeline hits computation points, and
/// writes target only live objects (object size 64 covers every slot
/// offset the strategy emits).
fn drive(p: &mut Process, ops: &[Op]) {
    let mut live: Vec<sim_heap::Addr> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        p.enter(if i % 2 == 0 { "even" } else { "odd" });
        match op {
            Op::Alloc => {
                let addr = p.malloc(64, "site").expect("alloc");
                live.push(addr);
            }
            Op::FreeNth(n) => {
                if !live.is_empty() {
                    let addr = live.remove(n % live.len());
                    p.free(addr).expect("free");
                }
            }
            Op::Link { src, dst, slot } => {
                if !live.is_empty() {
                    let s = live[src % live.len()];
                    let d = live[dst % live.len()];
                    p.write_ptr(s.offset(*slot), d).expect("write_ptr");
                }
            }
            Op::Scalar { src, slot } => {
                if !live.is_empty() {
                    let s = live[src % live.len()];
                    p.write_scalar(s.offset(*slot)).expect("write_scalar");
                }
            }
        }
        p.leave();
    }
}

/// Runs the op sequence once with tracing on, returning the trace.
fn record(ops: &[Op], sampler: Option<SamplerConfig>) -> heapmd::Trace {
    let mut p = Process::new(settings());
    if let Some(config) = sampler {
        p.enable_sampling(config);
    }
    p.enable_trace();
    drive(&mut p, ops);
    let mut p = p;
    p.take_trace().expect("tracing was enabled")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // `decimation == 1` end to end: live monitoring, offline replay,
    // model construction, and verdicts all match the unsampled
    // pipeline bit for bit.
    #[test]
    fn exact_sampling_is_bit_identical(ops in proptest::collection::vec(op_strategy(), 16..160)) {
        let exact_config = SamplerConfig::new(SamplerConfig::default().hot_threshold, 1);
        prop_assert!(exact_config.is_exact());

        // Live path: a sampling-enabled process must finish with the
        // same report as a plain one.
        let mut plain = Process::new(settings());
        drive(&mut plain, &ops);
        let plain_report = plain.finish("diff/plain");
        let mut sampled = Process::new(settings());
        sampled.enable_sampling(exact_config);
        drive(&mut sampled, &ops);
        let sampled_report = sampled.finish("diff/plain");
        prop_assert_eq!(&plain_report, &sampled_report);

        // Offline path: Trace::sampled at decimation 1 keeps every
        // event and reports rate 1.0.
        let trace = record(&ops, None);
        let resampled = trace.sampled(exact_config);
        prop_assert_eq!(trace.events(), resampled.events());
        prop_assert_eq!(resampled.sample_rate(), 1.0);

        // Replay and model construction agree.
        let s = settings();
        let plain_replay = trace.replay(&s, "diff/replay").expect("replay");
        let sampled_replay = resampled.replay(&s, "diff/replay").expect("replay");
        prop_assert_eq!(&plain_replay, &sampled_replay);
        let mut pb = ModelBuilder::new(s.clone()).program("diff");
        pb.add_run(&plain_replay);
        let mut sb = ModelBuilder::new(s.clone()).program("diff");
        sb.add_run(&sampled_replay);
        let plain_outcome = pb.build();
        let sampled_outcome = sb.build();
        prop_assert_eq!(&plain_outcome, &sampled_outcome);

        // Post-mortem verdicts agree (clean self-check; the point is
        // bit-identity, not detection).
        let plain_bugs = trace.check(&plain_outcome.model, &s).expect("check");
        let sampled_bugs = resampled.check(&sampled_outcome.model, &s).expect("check");
        prop_assert_eq!(plain_bugs, sampled_bugs);
    }

    // Real decimation drops only stores: allocation, free, and
    // function events survive verbatim, the kept stream is a
    // subsequence of the original, and the measured rate is sane.
    #[test]
    fn decimation_preserves_object_events(
        ops in proptest::collection::vec(op_strategy(), 16..160),
        hot in 0u64..32,
        decimation in 2u64..16,
    ) {
        let trace = record(&ops, None);
        let sampled = trace.sampled(SamplerConfig::new(hot, decimation));

        let non_store = |evs: &[HeapEvent]| -> Vec<HeapEvent> {
            evs.iter()
                .filter(|e| !matches!(e, HeapEvent::PtrWrite { .. } | HeapEvent::ScalarWrite { .. }))
                .copied()
                .collect()
        };
        prop_assert_eq!(non_store(trace.events()), non_store(sampled.events()));

        // Subsequence check: every kept event appears in the original,
        // in order.
        let mut it = trace.events().iter();
        for kept in sampled.events() {
            prop_assert!(
                it.any(|orig| orig == kept),
                "kept event missing from original stream"
            );
        }

        let info = sampled.sampling().expect("sampled traces carry metadata");
        let rate = info.rate();
        prop_assert!(rate > 0.0 && rate <= 1.0, "rate {} out of range", rate);
        prop_assert_eq!(sampled.sample_rate(), rate);

        // The recorded schedule is sticky: re-sampling an
        // already-sampled trace is the caller's bug, but the metadata
        // lets every consumer detect it.
        prop_assert!(sampled.sampling().is_some() && trace.sampling().is_none());
    }
}
