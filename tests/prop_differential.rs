//! Differential property test: the dense-slab [`HeapGraph`] and the
//! map-based [`ReferenceGraph`] (the pre-optimization implementation,
//! kept under the `reference-graph` feature) must agree exactly on
//! every observable — snapshot, degree histogram, all seven paper
//! metrics, and per-node degrees — under arbitrary event sequences,
//! including frees that dangle pointers and allocations that re-bind
//! them through address reuse.
//!
//! This is the acceptance gate for the hot-path rewrite: ≥ 1024 random
//! cases, each checking agreement after *every* operation.
//!
//! A second gate (PR 8) sweeps the address-partitioned [`ShardedGraph`]
//! over shard counts {1, 2, 3, 8} against the single-shard graph under
//! the same regime — partitioning must be unobservable.

use heap_graph::{HeapGraph, MetricKind, ReferenceGraph, ShardedGraph};
use proptest::prelude::*;
use sim_heap::{Addr, AllocSite, HeapError, HeapEvent, ObjectId, SimHeap};

#[derive(Debug, Clone)]
enum Op {
    Alloc(usize),
    FreeNth(usize),
    Link { src: usize, dst: usize, slot: u64 },
    Unlink { src: usize, slot: u64 },
    Scalar { src: usize, slot: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (8usize..128).prop_map(Op::Alloc),
        2 => (0usize..64).prop_map(Op::FreeNth),
        4 => ((0usize..64), (0usize..64), (0u64..4))
            .prop_map(|(src, dst, slot)| Op::Link { src, dst, slot: slot * 8 }),
        1 => ((0usize..64), (0u64..4)).prop_map(|(src, slot)| Op::Unlink { src, slot: slot * 8 }),
        1 => ((0usize..64), (0u64..4)).prop_map(|(src, slot)| Op::Scalar { src, slot: slot * 8 }),
    ]
}

/// Asserts every observable the two implementations share is equal.
fn assert_agree(
    opt: &HeapGraph,
    refg: &ReferenceGraph,
    live: &[(ObjectId, Addr)],
) -> Result<(), TestCaseError> {
    prop_assert_eq!(opt.snapshot(), refg.snapshot());
    prop_assert_eq!(opt.histogram(), refg.histogram());
    prop_assert_eq!(opt.node_count(), refg.node_count());
    prop_assert_eq!(opt.edge_count(), refg.edge_count());
    prop_assert_eq!(opt.dangling_count(), refg.dangling_count());
    let om = opt.metrics();
    let rm = refg.metrics();
    for kind in MetricKind::ALL {
        prop_assert_eq!(
            om.get(kind).to_bits(),
            rm.get(kind).to_bits(),
            "metric {:?} diverged: optimized {} vs reference {}",
            kind,
            om.get(kind),
            rm.get(kind)
        );
    }
    for &(id, _) in live {
        let o = opt.node(id).map(|n| (n.indegree, n.outdegree));
        prop_assert_eq!(o, refg.degrees(id), "degrees diverged for {:?}", id);
        prop_assert!(opt.contains(id) && refg.contains(id));
    }
    Ok(())
}

/// Asserts an address-partitioned [`ShardedGraph`] agrees with the
/// single-shard [`HeapGraph`] on every shared observable — the
/// bit-identity contract the sharded ingestion path is built on.
fn assert_shards_agree(
    sharded: &mut ShardedGraph,
    base: &HeapGraph,
    live: &[(ObjectId, Addr)],
) -> Result<(), TestCaseError> {
    let n = sharded.shard_count();
    sharded
        .validate()
        .map_err(|e| TestCaseError::fail(format!("{n}-shard invariant violated: {e}")))?;
    sharded.reconcile();
    prop_assert_eq!(
        sharded.snapshot(),
        base.snapshot(),
        "snapshot diverged at {} shards",
        n
    );
    prop_assert_eq!(
        sharded.histogram(),
        base.histogram(),
        "histogram diverged at {} shards",
        n
    );
    prop_assert_eq!(sharded.node_count(), base.node_count());
    prop_assert_eq!(sharded.edge_count(), base.edge_count());
    prop_assert_eq!(sharded.dangling_count(), base.dangling_count());
    let sm = sharded.metrics();
    let bm = base.metrics();
    for kind in MetricKind::ALL {
        prop_assert_eq!(
            sm.get(kind).to_bits(),
            bm.get(kind).to_bits(),
            "metric {:?} diverged at {} shards: {} vs {}",
            kind,
            n,
            sm.get(kind),
            bm.get(kind)
        );
    }
    for &(id, _) in live {
        let s = sharded.node(id).map(|node| (node.indegree, node.outdegree));
        let b = base.node(id).map(|node| (node.indegree, node.outdegree));
        prop_assert_eq!(s, b, "degrees diverged for {:?} at {} shards", id, n);
        prop_assert!(sharded.contains(id) == base.contains(id));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    // ISSUE acceptance: optimized and reference graphs agree on
    // snapshot, histogram, and all seven metrics over >= 1024 random
    // event sequences.
    #[test]
    fn dense_graph_matches_reference_graph(
        ops in proptest::collection::vec(op_strategy(), 1..200)
    ) {
        let mut heap = SimHeap::new();
        let mut opt = HeapGraph::new();
        let mut refg = ReferenceGraph::new();
        let mut live: Vec<(ObjectId, Addr)> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(size) => {
                    let eff = heap.alloc(size, AllocSite(0)).unwrap();
                    opt.on_alloc(eff.id, eff.addr, eff.size);
                    refg.on_alloc(eff.id, eff.addr, eff.size);
                    live.push((eff.id, eff.addr));
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (_, addr) = live.remove(n % live.len());
                        let eff = heap.free(addr).unwrap();
                        opt.on_free(eff.id);
                        refg.on_free(eff.id);
                    }
                }
                Op::Link { src, dst, slot } => {
                    if !live.is_empty() {
                        let s = live[src % live.len()].1;
                        let d = live[dst % live.len()].1;
                        match heap.write_ptr(s.offset(slot), d) {
                            Ok(w) => {
                                opt.on_ptr_write(w.src, w.offset, d);
                                refg.on_ptr_write(w.src, w.offset, d);
                            }
                            Err(HeapError::TornAccess { .. } | HeapError::WildAccess(_)) => {}
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
                Op::Unlink { src, slot } => {
                    if !live.is_empty() {
                        let s = live[src % live.len()].1;
                        match heap.write_ptr(s.offset(slot), sim_heap::NULL) {
                            Ok(w) => {
                                opt.on_ptr_write(w.src, w.offset, sim_heap::NULL);
                                refg.on_ptr_write(w.src, w.offset, sim_heap::NULL);
                            }
                            Err(HeapError::TornAccess { .. } | HeapError::WildAccess(_)) => {}
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
                Op::Scalar { src, slot } => {
                    if !live.is_empty() {
                        let s = live[src % live.len()].1;
                        match heap.write_scalar(s.offset(slot)) {
                            Ok(w) => {
                                opt.on_scalar_write(w.src, w.offset);
                                refg.on_scalar_write(w.src, w.offset);
                            }
                            Err(HeapError::WildAccess(_)) => {}
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
            }

            opt.validate().map_err(|e| {
                TestCaseError::fail(format!("dense graph invariant violated: {e}"))
            })?;
            assert_agree(&opt, &refg, &live)?;
        }
    }

    // The event-slice entry points agree with the reference graph's
    // per-event path too (exercises `apply`/`apply_batch` dispatch).
    #[test]
    fn batched_apply_matches_reference(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let mut heap = SimHeap::new();
        let mut live: Vec<Addr> = Vec::new();
        let mut events = Vec::new();

        for op in ops {
            match op {
                Op::Alloc(size) => {
                    let eff = heap.alloc(size, AllocSite(0)).unwrap();
                    live.push(eff.addr);
                    events.push(HeapEvent::Alloc {
                        obj: eff.id,
                        addr: eff.addr,
                        size: eff.size,
                        site: AllocSite(0),
                    });
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let addr = live.remove(n % live.len());
                        let eff = heap.free(addr).unwrap();
                        events.push(HeapEvent::Free {
                            obj: eff.id,
                            addr: eff.addr,
                            size: eff.size,
                        });
                    }
                }
                Op::Link { src, dst, slot } => {
                    if !live.is_empty() {
                        let s = live[src % live.len()];
                        let d = live[dst % live.len()];
                        match heap.write_ptr(s.offset(slot), d) {
                            Ok(w) => events.push(HeapEvent::PtrWrite {
                                src: w.src,
                                offset: w.offset,
                                value: d,
                                old_value: w.old_value,
                            }),
                            Err(HeapError::TornAccess { .. } | HeapError::WildAccess(_)) => {}
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
                Op::Unlink { src, slot } => {
                    if !live.is_empty() {
                        let s = live[src % live.len()];
                        match heap.write_ptr(s.offset(slot), sim_heap::NULL) {
                            Ok(w) => events.push(HeapEvent::PtrWrite {
                                src: w.src,
                                offset: w.offset,
                                value: sim_heap::NULL,
                                old_value: w.old_value,
                            }),
                            Err(HeapError::TornAccess { .. } | HeapError::WildAccess(_)) => {}
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
                Op::Scalar { src, slot } => {
                    if !live.is_empty() {
                        let s = live[src % live.len()];
                        match heap.write_scalar(s.offset(slot)) {
                            Ok(w) => events.push(HeapEvent::ScalarWrite {
                                src: w.src,
                                offset: w.offset,
                                old_value: w.old_value,
                            }),
                            Err(HeapError::WildAccess(_)) => {}
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
            }
        }

        let mut batched = HeapGraph::new();
        batched.apply_batch(&events);
        let mut refg = ReferenceGraph::new();
        for ev in &events {
            refg.apply(ev);
        }
        prop_assert_eq!(batched.snapshot(), refg.snapshot());
        prop_assert_eq!(batched.histogram(), refg.histogram());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // PR 8 acceptance: partitioning the graph by address range must be
    // unobservable. A shard sweep over {1, 2, 3, 8} — including a
    // count that does not divide the address space evenly — agrees
    // with the single-shard graph after *every* operation: snapshot,
    // reconciled histogram, all seven metrics at the bit level, node /
    // edge / dangling counts, and per-node degrees resolved through
    // the cross-shard edge table.
    #[test]
    fn sharded_graph_matches_single_shard_at_every_step(
        ops in proptest::collection::vec(op_strategy(), 1..120)
    ) {
        let mut heap = SimHeap::new();
        let mut base = HeapGraph::new();
        let mut sharded: Vec<ShardedGraph> =
            [1, 2, 3, 8].into_iter().map(ShardedGraph::new).collect();
        let mut live: Vec<(ObjectId, Addr)> = Vec::new();

        for op in ops {
            let event = match op {
                Op::Alloc(size) => {
                    let eff = heap.alloc(size, AllocSite(0)).unwrap();
                    live.push((eff.id, eff.addr));
                    Some(HeapEvent::Alloc {
                        obj: eff.id,
                        addr: eff.addr,
                        size: eff.size,
                        site: AllocSite(0),
                    })
                }
                Op::FreeNth(n) => {
                    if live.is_empty() {
                        None
                    } else {
                        let (_, addr) = live.remove(n % live.len());
                        let eff = heap.free(addr).unwrap();
                        Some(HeapEvent::Free { obj: eff.id, addr: eff.addr, size: eff.size })
                    }
                }
                Op::Link { src, dst, slot } => {
                    if live.is_empty() {
                        None
                    } else {
                        let s = live[src % live.len()].1;
                        let d = live[dst % live.len()].1;
                        match heap.write_ptr(s.offset(slot), d) {
                            Ok(w) => Some(HeapEvent::PtrWrite {
                                src: w.src,
                                offset: w.offset,
                                value: d,
                                old_value: w.old_value,
                            }),
                            Err(HeapError::TornAccess { .. } | HeapError::WildAccess(_)) => None,
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
                Op::Unlink { src, slot } => {
                    if live.is_empty() {
                        None
                    } else {
                        let s = live[src % live.len()].1;
                        match heap.write_ptr(s.offset(slot), sim_heap::NULL) {
                            Ok(w) => Some(HeapEvent::PtrWrite {
                                src: w.src,
                                offset: w.offset,
                                value: sim_heap::NULL,
                                old_value: w.old_value,
                            }),
                            Err(HeapError::TornAccess { .. } | HeapError::WildAccess(_)) => None,
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
                Op::Scalar { src, slot } => {
                    if live.is_empty() {
                        None
                    } else {
                        let s = live[src % live.len()].1;
                        match heap.write_scalar(s.offset(slot)) {
                            Ok(w) => Some(HeapEvent::ScalarWrite {
                                src: w.src,
                                offset: w.offset,
                                old_value: w.old_value,
                            }),
                            Err(HeapError::WildAccess(_)) => None,
                            Err(e) => panic!("unexpected: {e}"),
                        }
                    }
                }
            };

            let Some(event) = event else { continue };
            base.apply(&event);
            for graph in &mut sharded {
                graph.apply(&event);
                assert_shards_agree(graph, &base, &live)?;
            }
        }
    }
}
