//! End-to-end pipeline: train on clean inputs, check clean and buggy
//! runs, across the crate boundary exactly as a downstream user would.

use faults::FaultPlan;
use workloads::bugs::CATALOG;
use workloads::harness::{check, train};
use workloads::{commercial_at_version, Input};

#[test]
fn train_check_cycle_on_game_action() {
    let w = commercial_at_version("game_action", 1);
    // The paper calibrates on ≥ 25 inputs; fewer leaves this test's
    // check input outside the trained envelope.
    let outcome = train(w.as_ref(), &Input::set(25));
    let model = outcome.model;
    assert!(model.training_runs >= 25);
    assert!(
        model.is_stable(heapmd::MetricKind::Indeg1),
        "game_action must calibrate Indeg=1 (its Figure 7 signature)"
    );

    // Clean check input: quiet.
    let clean = check(w.as_ref(), &model, &Input::new(77), &mut FaultPlan::new());
    assert!(clean.is_empty(), "clean run raised {clean:?}");

    // The Figure 10 bug: detected, with Indeg=1 among the violations.
    let spec = CATALOG
        .iter()
        .find(|b| b.fault.0 == "ga.scene_tree.skip_parent")
        .expect("catalogued");
    let bugs = check(w.as_ref(), &model, &Input::new(77), &mut spec.plan());
    assert!(!bugs.is_empty(), "Figure 10 bug missed");
    assert!(
        bugs.iter().any(|b| b.metric == heapmd::MetricKind::Indeg1),
        "Indeg=1 should be among the violated metrics: {bugs:?}"
    );
}

#[test]
fn models_transfer_across_versions() {
    // Figure 7B's operational consequence: a v1 model checks v3 runs.
    let v1 = commercial_at_version("productivity", 1);
    let model = train(v1.as_ref(), &Input::set(5)).model;
    let v3 = commercial_at_version("productivity", 3);
    let bugs = check(v3.as_ref(), &model, &Input::new(55), &mut FaultPlan::new());
    assert!(bugs.is_empty(), "v3 clean run vs v1 model raised {bugs:?}");
}

#[test]
fn every_commercial_program_calibrates_its_signature_metric() {
    use heapmd::MetricKind::*;
    for (app, kind) in [
        ("multimedia", InEqOut),
        ("webapp", Indeg1),
        ("game_sim", Outdeg1),
        ("game_action", Indeg1),
        ("productivity", Leaves),
    ] {
        let w = commercial_at_version(app, 1);
        let model = train(w.as_ref(), &Input::set(4)).model;
        assert!(
            model.is_stable(kind),
            "{app} should calibrate {kind:?}; got {:?}",
            model.stable.iter().map(|s| s.kind).collect::<Vec<_>>()
        );
    }
}
