//! Determinism gate for parallel training: distributing runs and
//! summarization over worker threads must be *bit-identical* to the
//! sequential path — same serialized model, same checkpoints — for any
//! thread count. Anything less would make `--threads` change what the
//! detector later flags.

use faults::FaultPlan;
use heapmd::ModelBuilder;
use workloads::harness::{run_many, run_once, settings_for, train, train_parallel};
use workloads::spec::{Gzip, Mcf};
use workloads::{Input, Workload};

/// Serialized model + serialized mid-training checkpoint for the
/// sequential reference path.
fn sequential_artifacts(w: &dyn Workload, inputs: &[Input]) -> (String, String) {
    let settings = settings_for(w);
    let mut builder = ModelBuilder::new(settings.clone()).program(w.name());
    for input in inputs {
        builder.add_run(&run_once(w, input, &mut FaultPlan::new(), &settings));
    }
    let cp = serde_json::to_string(&builder.checkpoint(inputs.len() as u64))
        .expect("checkpoint serializes");
    let model = builder.build().model.to_json().expect("model serializes");
    (model, cp)
}

/// Same artifacts via the parallel path at a given thread count.
fn parallel_artifacts(w: &dyn Workload, inputs: &[Input], threads: usize) -> (String, String) {
    let settings = settings_for(w);
    let reports = run_many(w, inputs, &settings, threads);
    let mut builder = ModelBuilder::new(settings.clone()).program(w.name());
    builder.add_runs_parallel(&reports, threads);
    let cp = serde_json::to_string(&builder.checkpoint(inputs.len() as u64))
        .expect("checkpoint serializes");
    let model = builder.build().model.to_json().expect("model serializes");
    (model, cp)
}

#[test]
fn parallel_training_is_bit_identical_across_thread_counts() {
    let w = Gzip;
    let inputs = Input::set(6);
    let (seq_model, seq_cp) = sequential_artifacts(&w, &inputs);

    for threads in [1, 2, 8] {
        let (par_model, par_cp) = parallel_artifacts(&w, &inputs, threads);
        assert_eq!(
            seq_model, par_model,
            "serialized model diverged at threads={threads}"
        );
        assert_eq!(
            seq_cp, par_cp,
            "serialized checkpoint diverged at threads={threads}"
        );
    }
}

#[test]
fn train_parallel_outcome_equals_train() {
    let w = Mcf;
    let inputs = Input::set(5);
    let seq = train(&w, &inputs);
    for threads in [2, 8] {
        let par = train_parallel(&w, &inputs, threads);
        assert_eq!(seq, par, "ModelOutcome diverged at threads={threads}");
        assert_eq!(
            seq.model.to_json().unwrap(),
            par.model.to_json().unwrap(),
            "serialized model diverged at threads={threads}"
        );
    }
}

#[test]
fn oversubscribed_threads_are_harmless() {
    let w = Gzip;
    let inputs = Input::set(3);
    let seq = train(&w, &inputs);
    let par = train_parallel(&w, &inputs, 64);
    assert_eq!(seq, par, "threads > inputs must clamp, not diverge");
}
