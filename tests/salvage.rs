//! Salvage-mode coverage for the crash-safe streaming trace format:
//! a hand-damaged corpus under `tests/data/` plus properties that any
//! prefix (simulated crash) and any single bit flip (simulated media
//! corruption) of a valid stream salvage cleanly — the reader recovers
//! a prefix of the original events and never panics, never returns
//! garbage, never errors out of salvage mode for non-I/O damage.

use heapmd::{HeapEvent, HeapMdError, Process, Settings, Trace, TraceReader};
use proptest::prelude::*;
use std::path::PathBuf;

fn data(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

/// Builds a small linked-list trace with a functions table.
fn sample_trace(extra_events: usize) -> Trace {
    let settings = Settings::builder().frq(10).build().unwrap();
    let mut p = Process::new(settings);
    p.enable_trace();
    let mut nodes = Vec::new();
    for _ in 0..(2 + extra_events / 4) {
        p.enter("build");
        let n = p.malloc(24, "node").unwrap();
        if let Some(&prev) = nodes.last() {
            p.write_ptr(n, prev).unwrap();
        }
        nodes.push(n);
        p.leave();
    }
    for n in nodes.drain(..) {
        p.free(n).unwrap();
    }
    let mut trace = p.take_trace().unwrap();
    trace.set_functions(vec!["build".into()]);
    trace
}

fn stream_bytes(trace: &Trace) -> Vec<u8> {
    let dir = std::env::temp_dir().join("heapmd-salvage-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("s{}.hmdt", trace.len()));
    trace.save_stream(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn corpus_valid_stream_loads_strict_and_complete() {
    let trace = Trace::load_stream(data("valid.hmdt")).unwrap();
    assert_eq!(trace.len(), 41);
    assert_eq!(trace.functions(), ["build", "teardown"]);
    let (salvaged, stats) = Trace::salvage_stream(data("valid.hmdt")).unwrap();
    assert!(stats.complete);
    assert_eq!(stats.events, 41);
    assert!(stats.corruption.is_none());
    assert_eq!(salvaged, trace);
}

#[test]
fn corpus_truncated_stream_salvages_a_prefix() {
    assert!(matches!(
        Trace::load_stream(data("truncated.hmdt")),
        Err(HeapMdError::Corrupt { .. })
    ));
    let full = Trace::load_stream(data("valid.hmdt")).unwrap();
    let (salvaged, stats) = Trace::salvage_stream(data("truncated.hmdt")).unwrap();
    assert!(!stats.complete);
    assert_eq!(stats.events, 28);
    assert_eq!(salvaged.events(), &full.events()[..28]);
    assert!(stats.valid_bytes < stats.total_bytes);
}

#[test]
fn corpus_bit_flipped_stream_stops_at_the_damage() {
    assert!(matches!(
        Trace::load_stream(data("bitflip.hmdt")),
        Err(HeapMdError::Corrupt { .. })
    ));
    let full = Trace::load_stream(data("valid.hmdt")).unwrap();
    let (salvaged, stats) = Trace::salvage_stream(data("bitflip.hmdt")).unwrap();
    assert!(!stats.complete);
    let (offset, reason) = stats.corruption.expect("damage was located");
    assert_eq!(offset, 1741, "damage at the start of the flipped record");
    assert!(reason.contains("checksum mismatch"), "reason: {reason}");
    assert_eq!(salvaged.events(), &full.events()[..stats.events as usize]);
}

#[test]
fn corpus_garbage_salvages_to_an_empty_trace() {
    assert!(Trace::load_stream(data("garbage.hmdt")).is_err());
    let (salvaged, stats) = Trace::salvage_stream(data("garbage.hmdt")).unwrap();
    assert_eq!(salvaged.len(), 0);
    assert_eq!(stats.records, 0);
    assert!(!stats.complete);
    assert!(stats.corruption.is_some());
}

/// Events of the salvaged trace must be a prefix of the original's.
fn assert_salvages_to_prefix(damaged: &[u8], original: &Trace) {
    let (salvaged, stats) = TraceReader::salvage(damaged).expect("salvage never fails on bytes");
    let got: &[HeapEvent] = salvaged.events();
    let all: &[HeapEvent] = original.events();
    assert!(
        got.len() <= all.len() && got == &all[..got.len()],
        "salvaged {} events are not a prefix of the original {}",
        got.len(),
        all.len()
    );
    assert_eq!(stats.events as usize, got.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_prefix_of_a_valid_stream_salvages_cleanly(
        extra in 0usize..40,
        cut_frac in 0.0f64..1.0,
    ) {
        let trace = sample_trace(extra);
        let bytes = stream_bytes(&trace);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        assert_salvages_to_prefix(&bytes[..cut], &trace);
    }

    #[test]
    fn any_single_bit_flip_is_detected_not_propagated(
        extra in 0usize..40,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let trace = sample_trace(extra);
        let mut bytes = stream_bytes(&trace);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        // Strict mode must reject the damage (typed, not a panic)...
        match TraceReader::strict(&bytes[..]) {
            Err(HeapMdError::Corrupt { .. }) => {}
            Err(e) => prop_assert!(false, "wrong error type: {e}"),
            // ...unless the flip hit the End trailer's event count in a
            // way that still parses — impossible, CRC-32 catches all
            // single-bit errors — so Ok means the reader missed it.
            Ok(_) => prop_assert!(false, "single-bit corruption at byte {pos} accepted"),
        }
        // ...and salvage must still recover a clean prefix.
        assert_salvages_to_prefix(&bytes, &trace);
    }

    #[test]
    fn salvage_of_undamaged_streams_is_lossless(extra in 0usize..60) {
        let trace = sample_trace(extra);
        let bytes = stream_bytes(&trace);
        let (salvaged, stats) = TraceReader::salvage(&bytes[..]).unwrap();
        prop_assert!(stats.complete);
        prop_assert_eq!(stats.valid_bytes, bytes.len() as u64);
        prop_assert_eq!(salvaged, trace);
    }
}
