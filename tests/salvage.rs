//! Salvage-mode coverage for the crash-safe streaming trace format:
//! a hand-damaged corpus under `tests/data/` plus properties that any
//! prefix (simulated crash) and any single bit flip (simulated media
//! corruption) of a valid stream salvage cleanly — the reader recovers
//! a prefix of the original events and never panics, never returns
//! garbage, never errors out of salvage mode for non-I/O damage.

use heapmd::{
    BinaryTraceImage, BinaryTraceReader, HeapEvent, HeapMdError, Process, Settings, Trace,
    TraceReader, EVENTS_PER_BLOCK,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn data(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/data")
        .join(name)
}

/// Builds a small linked-list trace with a functions table.
fn sample_trace(extra_events: usize) -> Trace {
    let settings = Settings::builder().frq(10).build().unwrap();
    let mut p = Process::new(settings);
    p.enable_trace();
    let mut nodes = Vec::new();
    for _ in 0..(2 + extra_events / 4) {
        p.enter("build");
        let n = p.malloc(24, "node").unwrap();
        if let Some(&prev) = nodes.last() {
            p.write_ptr(n, prev).unwrap();
        }
        nodes.push(n);
        p.leave();
    }
    for n in nodes.drain(..) {
        p.free(n).unwrap();
    }
    let mut trace = p.take_trace().unwrap();
    trace.set_functions(vec!["build".into()]);
    trace
}

fn stream_bytes(trace: &Trace) -> Vec<u8> {
    let dir = std::env::temp_dir().join("heapmd-salvage-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("s{}.hmdt", trace.len()));
    trace.save_stream(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

#[test]
fn corpus_valid_stream_loads_strict_and_complete() {
    let trace = Trace::load_stream(data("valid.hmdt")).unwrap();
    assert_eq!(trace.len(), 41);
    assert_eq!(trace.functions(), ["build", "teardown"]);
    let (salvaged, stats) = Trace::salvage_stream(data("valid.hmdt")).unwrap();
    assert!(stats.complete);
    assert_eq!(stats.events, 41);
    assert!(stats.corruption.is_none());
    assert_eq!(salvaged, trace);
}

#[test]
fn corpus_truncated_stream_salvages_a_prefix() {
    assert!(matches!(
        Trace::load_stream(data("truncated.hmdt")),
        Err(HeapMdError::Corrupt { .. })
    ));
    let full = Trace::load_stream(data("valid.hmdt")).unwrap();
    let (salvaged, stats) = Trace::salvage_stream(data("truncated.hmdt")).unwrap();
    assert!(!stats.complete);
    assert_eq!(stats.events, 28);
    assert_eq!(salvaged.events(), &full.events()[..28]);
    assert!(stats.valid_bytes < stats.total_bytes);
}

#[test]
fn corpus_bit_flipped_stream_stops_at_the_damage() {
    assert!(matches!(
        Trace::load_stream(data("bitflip.hmdt")),
        Err(HeapMdError::Corrupt { .. })
    ));
    let full = Trace::load_stream(data("valid.hmdt")).unwrap();
    let (salvaged, stats) = Trace::salvage_stream(data("bitflip.hmdt")).unwrap();
    assert!(!stats.complete);
    let (offset, reason) = stats.corruption.expect("damage was located");
    assert_eq!(offset, 1741, "damage at the start of the flipped record");
    assert!(reason.contains("checksum mismatch"), "reason: {reason}");
    assert_eq!(salvaged.events(), &full.events()[..stats.events as usize]);
}

#[test]
fn corpus_garbage_salvages_to_an_empty_trace() {
    assert!(Trace::load_stream(data("garbage.hmdt")).is_err());
    let (salvaged, stats) = Trace::salvage_stream(data("garbage.hmdt")).unwrap();
    assert_eq!(salvaged.len(), 0);
    assert_eq!(stats.records, 0);
    assert!(!stats.complete);
    assert!(stats.corruption.is_some());
}

/// Events of the salvaged trace must be a prefix of the original's.
fn assert_salvages_to_prefix(damaged: &[u8], original: &Trace) {
    let (salvaged, stats) = TraceReader::salvage(damaged).expect("salvage never fails on bytes");
    let got: &[HeapEvent] = salvaged.events();
    let all: &[HeapEvent] = original.events();
    assert!(
        got.len() <= all.len() && got == &all[..got.len()],
        "salvaged {} events are not a prefix of the original {}",
        got.len(),
        all.len()
    );
    assert_eq!(stats.events as usize, got.len());
}

// ---------------------------------------------------------------------
// Binary (.hmdt, HMDB1) corpus: block-granular salvage. Unlike the
// JSONL prefix salvage above, the binary reader recovers every intact
// block — including blocks *after* a damaged one.
// ---------------------------------------------------------------------

/// The deterministic trace behind the binary corpus: 1802 linked-list
/// nodes → 9009 events → three event blocks (two full, one partial).
fn binary_corpus_trace() -> Trace {
    let trace = sample_trace(4 * 1800);
    assert_eq!(trace.len(), 9009, "corpus trace drifted; regenerate");
    trace
}

/// Regenerates the committed binary corpus under `tests/data/`. Run
/// `cargo test --test salvage -- --ignored regenerate_binary` after a
/// format change, then update the expectations above.
#[test]
#[ignore = "writes the committed corpus under tests/data/"]
fn regenerate_binary_corpus() {
    let trace = binary_corpus_trace();
    let valid = trace.encode_binary();
    let image = BinaryTraceImage::open(valid.clone()).unwrap();
    let blocks: Vec<_> = image.event_blocks().cloned().collect();
    assert!(blocks.len() >= 3, "corpus needs >= 3 event blocks");
    std::fs::write(data("valid_binary.hmdt"), &valid).unwrap();
    // Truncation mid-second-block: only the first block survives.
    let cut = blocks[1].offset as usize + 600;
    std::fs::write(data("truncated_binary.hmdt"), &valid[..cut]).unwrap();
    // One flipped bit inside the second block's payload: the CRC kills
    // that block, and every other block stays recoverable.
    let mut flipped = valid;
    flipped[blocks[1].offset as usize + 300] ^= 0x10;
    std::fs::write(data("bitflip_binary.hmdt"), &flipped).unwrap();
}

#[test]
fn corpus_valid_binary_loads_strict_and_complete() {
    let trace = Trace::load_binary(data("valid_binary.hmdt")).unwrap();
    assert_eq!(trace, binary_corpus_trace());
    assert_eq!(trace.functions(), ["build"]);
    let (salvaged, stats) = Trace::salvage_binary(data("valid_binary.hmdt")).unwrap();
    assert!(stats.complete);
    assert_eq!(stats.events, 9009);
    assert!(stats.corruption.is_none());
    assert_eq!(salvaged, trace);
}

#[test]
fn corpus_truncated_binary_salvages_whole_blocks() {
    assert!(matches!(
        Trace::load_binary(data("truncated_binary.hmdt")),
        Err(HeapMdError::Corrupt { .. })
    ));
    let full = Trace::load_binary(data("valid_binary.hmdt")).unwrap();
    let (salvaged, stats) = Trace::salvage_binary(data("truncated_binary.hmdt")).unwrap();
    assert!(!stats.complete);
    assert_eq!(stats.events as usize, EVENTS_PER_BLOCK);
    assert_eq!(salvaged.events(), &full.events()[..EVENTS_PER_BLOCK]);
    let (_, reason) = stats.corruption.expect("damage was located");
    assert!(reason.contains("truncated"), "reason: {reason}");
}

#[test]
fn corpus_bit_flipped_binary_recovers_blocks_after_the_hole() {
    assert!(matches!(
        Trace::load_binary(data("bitflip_binary.hmdt")),
        Err(HeapMdError::Corrupt { .. })
    ));
    let full = Trace::load_binary(data("valid_binary.hmdt")).unwrap();
    let (salvaged, stats) = Trace::salvage_binary(data("bitflip_binary.hmdt")).unwrap();
    assert!(!stats.complete);
    let (_, reason) = stats.corruption.expect("damage was located");
    assert!(reason.contains("checksum mismatch"), "reason: {reason}");
    // Exactly the flipped block is lost; the first block, every block
    // after the hole, and the function table all survive.
    let mut expect = full.events()[..EVENTS_PER_BLOCK].to_vec();
    expect.extend_from_slice(&full.events()[2 * EVENTS_PER_BLOCK..]);
    assert_eq!(salvaged.events(), &expect[..]);
    assert_eq!(salvaged.functions(), ["build"]);
    assert_eq!(stats.events as usize, expect.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn any_prefix_of_a_valid_stream_salvages_cleanly(
        extra in 0usize..40,
        cut_frac in 0.0f64..1.0,
    ) {
        let trace = sample_trace(extra);
        let bytes = stream_bytes(&trace);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        assert_salvages_to_prefix(&bytes[..cut], &trace);
    }

    #[test]
    fn any_single_bit_flip_is_detected_not_propagated(
        extra in 0usize..40,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let trace = sample_trace(extra);
        let mut bytes = stream_bytes(&trace);
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        // Strict mode must reject the damage (typed, not a panic)...
        match TraceReader::strict(&bytes[..]) {
            Err(HeapMdError::Corrupt { .. }) => {}
            Err(e) => prop_assert!(false, "wrong error type: {e}"),
            // ...unless the flip hit the End trailer's event count in a
            // way that still parses — impossible, CRC-32 catches all
            // single-bit errors — so Ok means the reader missed it.
            Ok(_) => prop_assert!(false, "single-bit corruption at byte {pos} accepted"),
        }
        // ...and salvage must still recover a clean prefix.
        assert_salvages_to_prefix(&bytes, &trace);
    }

    #[test]
    fn salvage_of_undamaged_streams_is_lossless(extra in 0usize..60) {
        let trace = sample_trace(extra);
        let bytes = stream_bytes(&trace);
        let (salvaged, stats) = TraceReader::salvage(&bytes[..]).unwrap();
        prop_assert!(stats.complete);
        prop_assert_eq!(stats.valid_bytes, bytes.len() as u64);
        prop_assert_eq!(salvaged, trace);
    }

    // ----- binary format properties -----

    #[test]
    fn any_prefix_of_a_binary_trace_salvages_whole_blocks(
        extra in 0usize..4000,
        cut_frac in 0.0f64..1.0,
    ) {
        let trace = sample_trace(extra);
        let bytes = trace.encode_binary();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let (salvaged, stats) =
            BinaryTraceReader::salvage(&bytes[..cut]).expect("salvage never fails on bytes");
        // Truncation can only drop suffix blocks, so whatever survives
        // is a prefix of the original — and always whole blocks.
        let got = salvaged.events();
        let all = trace.events();
        prop_assert!(got.len() <= all.len() && got == &all[..got.len()]);
        prop_assert!(got.len() == all.len() || got.len().is_multiple_of(EVENTS_PER_BLOCK));
        prop_assert_eq!(stats.events as usize, got.len());
        prop_assert!(cut == bytes.len() || !stats.complete);
    }

    #[test]
    fn any_single_bit_flip_in_a_binary_trace_is_detected(
        extra in 0usize..4000,
        pos_frac in 0.0f64..1.0,
        bit in 0u32..8,
    ) {
        let trace = sample_trace(extra);
        let mut bytes = trace.encode_binary();
        let pos = (((bytes.len() - 1) as f64) * pos_frac) as usize;
        bytes[pos] ^= 1 << bit;
        // Strict mode must reject the damage with a typed error (every
        // byte is covered: header magic/version, per-block CRC-32 over
        // payloads with length-checked decode, CRC'd footer).
        match BinaryTraceReader::strict(&bytes[..]) {
            Err(HeapMdError::Corrupt { .. }) => {}
            Err(e) => prop_assert!(false, "wrong error type: {e}"),
            Ok(_) => prop_assert!(false, "single-bit corruption at byte {pos} accepted"),
        }
        // ...and salvage must survive it, recovering only events that
        // exist in the original (block-granular subsequence, so each
        // surviving block is an exact slice of the original stream).
        let (salvaged, stats) =
            BinaryTraceReader::salvage(&bytes[..]).expect("salvage never fails on bytes");
        prop_assert!(salvaged.len() <= trace.len());
        prop_assert_eq!(stats.events as usize, salvaged.len());
        prop_assert!(!stats.complete);
    }

    #[test]
    fn binary_salvage_of_undamaged_traces_is_lossless(extra in 0usize..4000) {
        let trace = sample_trace(extra);
        let bytes = trace.encode_binary();
        let (salvaged, stats) = BinaryTraceReader::salvage(&bytes[..]).unwrap();
        prop_assert!(stats.complete);
        prop_assert_eq!(stats.valid_bytes, bytes.len() as u64);
        prop_assert_eq!(salvaged, trace);
    }
}
