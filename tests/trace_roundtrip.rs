//! Offline mode equivalences: a replayed trace reproduces the online
//! metric report, and offline checking agrees with online checking.

use faults::FaultPlan;
use heapmd::{AnomalyDetector, FuncId, ModelBuilder, Process, Settings, Trace};
use sim_ds::{fault_ids::DLIST_SKIP_PREV, SimDList};

fn run(settings: &Settings, plan: &mut FaultPlan) -> (heapmd::MetricReport, Trace) {
    let mut p = Process::new(settings.clone());
    p.enable_trace();
    let mut list = SimDList::new(&mut p, "t").unwrap();
    for i in 0..500u64 {
        p.enter("tick");
        list.push_back(&mut p, plan, i).unwrap();
        if list.len() > 120 {
            if let Some(front) = list.front(&mut p).unwrap() {
                list.remove(&mut p, front).unwrap();
            }
        }
        p.leave();
    }
    let mut trace = p.take_trace().unwrap();
    let names: Vec<String> = (0..p.functions().len())
        .map(|i| p.functions().name(FuncId(i as u32)).to_string())
        .collect();
    trace.set_functions(names);
    (p.finish("traced"), trace)
}

#[test]
fn replay_reproduces_the_online_series_exactly() {
    let settings = Settings::builder().frq(10).build().unwrap();
    let (online, trace) = run(&settings, &mut FaultPlan::new());
    let offline = trace.replay(&settings, "replayed").unwrap();
    assert_eq!(online.len(), offline.len());
    for (a, b) in online.samples.iter().zip(&offline.samples) {
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.edges, b.edges);
        assert_eq!(a.dangling, b.dangling);
    }
}

#[test]
fn offline_check_agrees_with_report_check() {
    let settings = Settings::builder().frq(10).build().unwrap();
    let mut builder = ModelBuilder::new(settings.clone());
    for _ in 0..3 {
        builder.add_run(&run(&settings, &mut FaultPlan::new()).0);
    }
    let model = builder.build().model;

    let mut plan = FaultPlan::single(DLIST_SKIP_PREV);
    let (report, trace) = run(&settings, &mut plan);
    let via_report = AnomalyDetector::check_report(&model, &settings, &report);
    let via_trace = trace.check(&model, &settings).unwrap();
    assert!(!via_report.is_empty(), "the bug must be detected offline");
    assert!(!via_trace.is_empty(), "the bug must be detected via trace");
    // Same violations (trace mode adds call-stack context).
    let keys = |v: &[heapmd::BugReport]| -> Vec<(heapmd::MetricKind, usize)> {
        v.iter().map(|b| (b.metric, b.sample_seq)).collect()
    };
    let trace_keys = keys(&via_trace);
    for k in keys(&via_report) {
        assert!(trace_keys.contains(&k), "missing {k:?} in trace check");
    }
    // Trace-mode reports carry call-stacks.
    assert!(via_trace
        .iter()
        .any(|b| b.context.iter().any(|e| !e.stack.is_empty())));
}

#[test]
fn trace_json_roundtrip_preserves_checking() {
    let settings = Settings::builder().frq(10).build().unwrap();
    let mut builder = ModelBuilder::new(settings.clone());
    for _ in 0..3 {
        builder.add_run(&run(&settings, &mut FaultPlan::new()).0);
    }
    let model = builder.build().model;
    let mut plan = FaultPlan::single(DLIST_SKIP_PREV);
    let (_, trace) = run(&settings, &mut plan);
    let json = trace.to_json().unwrap();
    let back = Trace::from_json(&json).unwrap();
    assert_eq!(
        trace.check(&model, &settings).unwrap().len(),
        back.check(&model, &settings).unwrap().len()
    );
}
