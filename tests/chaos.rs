//! Pipeline-level fault-injection (chaos) harness: round-trips every
//! persistent artifact — streaming traces, models, checkpoints — through
//! [`faults::io::FaultyWriter`] / [`faults::io::FaultyReader`] under a
//! matrix of deterministic fault schedules, asserting each outcome is
//! either success or a typed [`HeapMdError`]: zero panics, and no
//! corrupted artifact is ever silently accepted as valid.

use faults::io::{fault_ids::*, FaultyReader, FaultyWriter};
use faults::{FaultConfig, FaultId, FaultPlan};
use heapmd::{
    BinaryTraceReader, BinaryTraceWriter, HeapMdError, ModelBuilder, Process, Settings,
    StreamFormat, Trace, TraceReader, TraceWriter, TrainCheckpoint,
};
use std::io::{Read, Write};

/// The schedule matrix each fault id is exercised under.
fn schedules() -> Vec<FaultConfig> {
    vec![
        FaultConfig::always(),
        FaultConfig::always().after(5),
        FaultConfig::every(3),
        FaultConfig::every(7).after(2).limit(2),
        FaultConfig::always().limit(1),
    ]
}

const WRITER_FAULTS: [FaultId; 4] = [
    IO_SHORT_WRITE,
    IO_WRITE_ERROR,
    IO_FLUSH_INTERRUPT,
    IO_BIT_FLIP_WRITE,
];
const READER_FAULTS: [FaultId; 4] = [IO_SHORT_READ, IO_READ_ERROR, IO_BIT_FLIP_READ, IO_EARLY_EOF];

fn sample_trace() -> Trace {
    let settings = Settings::builder().frq(10).build().unwrap();
    let mut p = Process::new(settings);
    p.enable_trace();
    let mut nodes = Vec::new();
    for _ in 0..12 {
        p.enter("build");
        let n = p.malloc(24, "node").unwrap();
        if let Some(&prev) = nodes.last() {
            p.write_ptr(n, prev).unwrap();
        }
        nodes.push(n);
        p.leave();
    }
    for n in nodes.drain(..) {
        p.free(n).unwrap();
    }
    let mut trace = p.take_trace().unwrap();
    trace.set_functions(vec!["build".into()]);
    trace
}

fn sample_model() -> heapmd::HeapModel {
    let settings = Settings::default();
    let mut b = ModelBuilder::new(settings).program("chaos");
    for i in 0..4 {
        let samples = (0..30)
            .map(|s| heapmd::MetricSample {
                seq: s,
                fn_entries: s as u64,
                tick: s as u64,
                metrics: heapmd::MetricVector::from_array([40.0 + i as f64; heapmd::METRIC_COUNT]),
                nodes: 10,
                edges: 5,
                dangling: 0,
                candidates: None,
            })
            .collect();
        b.add_run(&heapmd::MetricReport::new(format!("r{i}"), samples));
    }
    b.build().model
}

/// Streams `trace` through a faulty writer; Ok(bytes) or a typed error.
fn stream_through_faulty_writer(trace: &Trace, plan: FaultPlan) -> Result<Vec<u8>, HeapMdError> {
    let mut w = TraceWriter::new(FaultyWriter::new(Vec::new(), plan))?;
    w.write_functions(trace.functions())?;
    for ev in trace.events() {
        w.write_event(ev)?;
    }
    Ok(w.finish()?.into_inner())
}

#[test]
fn trace_writes_under_every_fault_schedule_never_panic() {
    let trace = sample_trace();
    let clean = stream_through_faulty_writer(&trace, FaultPlan::new()).unwrap();
    for fault in WRITER_FAULTS {
        for config in schedules() {
            let mut plan = FaultPlan::new();
            plan.enable(fault, config);
            match stream_through_faulty_writer(&trace, plan) {
                // A surviving write (fault missed, bounded, or absorbed
                // by retry-free short-write semantics) must either
                // produce a loadable stream or be caught on read-back.
                Ok(bytes) => match TraceReader::strict(&bytes[..]) {
                    Ok(back) => {
                        if fault != IO_BIT_FLIP_WRITE {
                            assert_eq!(back, trace, "{fault} {config:?} altered the trace");
                        } else {
                            // Flips that landed were CRC-caught above;
                            // strict Ok means every flip was out-schedule.
                            assert_eq!(bytes, clean, "undetected corruption under {fault}");
                        }
                    }
                    Err(HeapMdError::Corrupt { .. }) => {
                        // Damaged on the wire but detected: salvage must
                        // still recover a clean prefix without error.
                        let (salvaged, _) = TraceReader::salvage(&bytes[..]).unwrap();
                        let got = salvaged.events();
                        assert_eq!(got, &trace.events()[..got.len()]);
                    }
                    Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
                },
                Err(HeapMdError::Io(_)) => {}
                Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
            }
        }
    }
}

#[test]
fn trace_reads_under_every_fault_schedule_never_panic() {
    let trace = sample_trace();
    let bytes = stream_through_faulty_writer(&trace, FaultPlan::new()).unwrap();
    for fault in READER_FAULTS {
        for config in schedules() {
            let mut plan = FaultPlan::new();
            plan.enable(fault, config);
            match TraceReader::strict(FaultyReader::new(&bytes[..], plan.clone())) {
                Ok(back) => assert_eq!(back, trace, "{fault} {config:?} altered the trace"),
                Err(HeapMdError::Corrupt { .. }) | Err(HeapMdError::Io(_)) => {}
                Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
            }
            // Salvage mode: only a true I/O error may fail; any
            // recovered data must be a prefix of the original events.
            match TraceReader::salvage(FaultyReader::new(&bytes[..], plan)) {
                Ok((salvaged, stats)) => {
                    let got = salvaged.events();
                    assert_eq!(got, &trace.events()[..got.len()]);
                    assert_eq!(stats.events as usize, got.len());
                }
                Err(HeapMdError::Io(_)) => assert_eq!(fault, IO_READ_ERROR),
                Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
            }
        }
    }
}

#[test]
fn model_round_trips_under_every_fault_schedule_never_panic() {
    let model = sample_model();
    let json = model.to_json().unwrap();
    for fault in WRITER_FAULTS.iter().chain(&READER_FAULTS) {
        for config in schedules() {
            let mut plan = FaultPlan::new();
            plan.enable(*fault, config);

            // Write side: push the JSON through a faulty writer.
            let mut w = FaultyWriter::new(Vec::new(), plan.clone());
            let wrote = w.write_all(json.as_bytes()).and_then(|_| w.flush());
            let stored = w.into_inner();

            // Read side: pull whatever landed back through a faulty
            // reader and parse.
            let mut r = FaultyReader::new(&stored[..], plan);
            let mut text = Vec::new();
            if r.read_to_end(&mut text).is_err() {
                continue; // typed I/O failure, fine
            }
            let parsed = String::from_utf8(text).map_err(|_| ()).and_then(|t| {
                heapmd::HeapModel::from_json(&t).map_err(|e| {
                    assert!(
                        matches!(e, HeapMdError::Corrupt { .. } | HeapMdError::Serde(_)),
                        "{fault} {config:?}: wrong error type {e}"
                    );
                })
            });
            // `Err(())` means the damage was detected with a typed error.
            if let Ok(back) = parsed {
                // Unlike the CRC-framed trace stream, model JSON has
                // no integrity checksum: a bit flip that lands on a
                // digit can survive parsing and validation. That is
                // the documented trade-off (models rely on atomic
                // rename, not media-corruption resistance), so only
                // non-flip faults must reproduce the model exactly.
                if *fault != IO_BIT_FLIP_WRITE && *fault != IO_BIT_FLIP_READ {
                    assert_eq!(back, model, "{fault} {config:?}: silent corruption");
                }
                let _ = wrote;
            }
        }
    }
}

#[test]
fn checkpoints_round_trip_under_corruption_never_panic() {
    let settings = Settings::default();
    let mut b = ModelBuilder::new(settings).program("chaos");
    let samples: Vec<heapmd::MetricSample> = (0..30)
        .map(|s| heapmd::MetricSample {
            seq: s,
            fn_entries: s as u64,
            tick: s as u64,
            metrics: heapmd::MetricVector::from_array([50.0; heapmd::METRIC_COUNT]),
            nodes: 10,
            edges: 5,
            dangling: 0,
            candidates: None,
        })
        .collect();
    b.add_run(&heapmd::MetricReport::new("r0", samples));
    let cp = b.checkpoint(1);

    let dir = std::env::temp_dir().join("heapmd-chaos-test");
    std::fs::create_dir_all(&dir).unwrap();
    let clean_path = dir.join("clean.ckpt");
    cp.save(&clean_path).unwrap();
    let clean_bytes = std::fs::read(&clean_path).unwrap();

    for fault in READER_FAULTS {
        for config in schedules() {
            let mut plan = FaultPlan::new();
            plan.enable(fault, config);
            // Corrupt the checkpoint bytes on their way to disk, then
            // load through the real path-based API.
            let mut damaged = Vec::new();
            let read = FaultyReader::new(&clean_bytes[..], plan).read_to_end(&mut damaged);
            if read.is_err() {
                continue;
            }
            let path = dir.join("damaged.ckpt");
            std::fs::write(&path, &damaged).unwrap();
            match TrainCheckpoint::load(&path) {
                Ok(back) => {
                    // See the model test: JSON carries no checksum, so a
                    // value-preserving bit flip may parse; all other
                    // faults must reproduce the checkpoint exactly.
                    if fault != IO_BIT_FLIP_READ {
                        assert_eq!(back, cp, "{fault} {config:?}: silent corruption");
                    }
                }
                Err(
                    HeapMdError::Corrupt { .. }
                    | HeapMdError::Checkpoint(_)
                    | HeapMdError::Serde(_)
                    | HeapMdError::InvalidSettings(_),
                ) => {}
                Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
            }
        }
    }
    std::fs::remove_file(&clean_path).ok();
    std::fs::remove_file(dir.join("damaged.ckpt")).ok();
}

/// Streams `trace` through the binary block writer behind a faulty
/// sink; Ok(bytes) or a typed error.
fn binary_through_faulty_writer(trace: &Trace, plan: FaultPlan) -> Result<Vec<u8>, HeapMdError> {
    let mut w = BinaryTraceWriter::new(FaultyWriter::new(Vec::new(), plan))?;
    for ev in trace.events() {
        w.write_event(ev)?;
    }
    w.write_functions(trace.functions())?;
    Ok(w.finish()?.into_inner())
}

#[test]
fn binary_writes_under_every_fault_schedule_never_panic() {
    let trace = sample_trace();
    let clean = binary_through_faulty_writer(&trace, FaultPlan::new()).unwrap();
    for fault in WRITER_FAULTS {
        for config in schedules() {
            let mut plan = FaultPlan::new();
            plan.enable(fault, config);
            match binary_through_faulty_writer(&trace, plan) {
                Ok(bytes) => match BinaryTraceReader::strict(&bytes[..]) {
                    Ok(back) => {
                        if fault != IO_BIT_FLIP_WRITE {
                            assert_eq!(back, trace, "{fault} {config:?} altered the trace");
                        } else {
                            assert_eq!(bytes, clean, "undetected corruption under {fault}");
                        }
                    }
                    Err(HeapMdError::Corrupt { .. }) => {
                        // Detected on read-back; block-granular salvage
                        // must still succeed, and every recovered event
                        // must exist in the original (salvage keeps whole
                        // blocks, so damage never *invents* events).
                        let (salvaged, stats) = BinaryTraceReader::salvage(&bytes[..]).unwrap();
                        assert!(salvaged.len() <= trace.len());
                        assert_eq!(stats.events as usize, salvaged.len());
                    }
                    Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
                },
                Err(HeapMdError::Io(_)) => {}
                Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
            }
        }
    }
}

#[test]
fn binary_reads_under_every_fault_schedule_never_panic() {
    let trace = sample_trace();
    let bytes = binary_through_faulty_writer(&trace, FaultPlan::new()).unwrap();
    for fault in READER_FAULTS {
        for config in schedules() {
            let mut plan = FaultPlan::new();
            plan.enable(fault, config);
            match BinaryTraceReader::strict(FaultyReader::new(&bytes[..], plan.clone())) {
                Ok(back) => assert_eq!(back, trace, "{fault} {config:?} altered the trace"),
                Err(HeapMdError::Corrupt { .. }) | Err(HeapMdError::Io(_)) => {}
                Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
            }
            // Salvage mode: only a true I/O error may fail; recovered
            // blocks carry only events the original stream held.
            match BinaryTraceReader::salvage(FaultyReader::new(&bytes[..], plan)) {
                Ok((salvaged, stats)) => {
                    assert!(salvaged.len() <= trace.len());
                    assert_eq!(stats.events as usize, salvaged.len());
                }
                Err(HeapMdError::Io(_)) => assert_eq!(fault, IO_READ_ERROR),
                Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
            }
        }
    }
}

#[test]
fn process_survives_a_dying_binary_trace_sink_under_every_schedule() {
    for fault in WRITER_FAULTS {
        for config in schedules() {
            let mut plan = FaultPlan::new();
            plan.enable(fault, config);
            let settings = Settings::builder().frq(10).build().unwrap();
            let mut p = Process::new(settings);
            let sink = Box::new(FaultyWriter::new(Vec::new(), plan));
            match p.stream_trace_to_format(sink, StreamFormat::Binary) {
                Ok(()) => {}
                Err(HeapMdError::Io(_)) => continue,
                Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
            }
            for _ in 0..20 {
                p.enter("w");
                let a = p.malloc(16, "x").unwrap();
                p.free(a).unwrap();
                p.leave();
            }
            assert_eq!(p.fn_entries(), 20, "{fault} {config:?} disturbed the run");
            match p.finish_stream() {
                Ok(_) | Err(HeapMdError::Io(_)) => {}
                Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
            }
            let _ = p.finish("chaos");
        }
    }
}

#[test]
fn process_survives_a_dying_trace_sink_under_every_schedule() {
    for fault in WRITER_FAULTS {
        for config in schedules() {
            let mut plan = FaultPlan::new();
            plan.enable(fault, config);
            let settings = Settings::builder().frq(10).build().unwrap();
            let mut p = Process::new(settings);
            match p.stream_trace_to(Box::new(FaultyWriter::new(Vec::new(), plan))) {
                Ok(()) => {}
                // The stream header itself can hit the fault; a typed
                // error at setup is a legal outcome.
                Err(HeapMdError::Io(_)) => continue,
                Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
            }
            // The checked process itself must survive any sink failure.
            for _ in 0..20 {
                p.enter("w");
                let a = p.malloc(16, "x").unwrap();
                p.free(a).unwrap();
                p.leave();
            }
            assert_eq!(p.fn_entries(), 20, "{fault} {config:?} disturbed the run");
            match p.finish_stream() {
                Ok(_) | Err(HeapMdError::Io(_)) => {}
                Err(e) => panic!("{fault} {config:?}: wrong error type {e}"),
            }
            let _ = p.finish("chaos");
        }
    }
}
