//! Fleet daemon end-to-end: concurrent tenant streams against
//! [`heapmd::Server`] must yield verdicts bit-identical to the offline
//! `check` path, survive corrupt streams by evicting exactly the
//! offending tenant, and flush every incident bundle plus the final
//! Prometheus dump on graceful shutdown.

use faults::io::{fault_ids::*, FaultyWriter};
use faults::{FaultConfig, FaultPlan};
use heapmd::serve::push_trace;
use heapmd::{FuncId, Process, ServeConfig, Server, Settings, Trace, SERVE_PREAMBLE};
use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};
use workloads::bugs::CATALOG;
use workloads::harness::{settings_for, train};
use workloads::{commercial_at_version, Input, Workload};

/// Records a full heap-event trace of one workload run (what
/// `heapmd record` does), with the function table attached.
fn record_trace(w: &dyn Workload, input: u32, plan: &mut FaultPlan, settings: &Settings) -> Trace {
    let mut p = Process::new(settings.clone());
    p.enable_trace();
    w.run(&mut p, plan, &Input::new(input))
        .expect("workload run");
    let mut trace = p.take_trace().expect("tracing enabled");
    let names: Vec<String> = (0..p.functions().len())
        .map(|i| p.functions().name(FuncId(i as u32)).to_string())
        .collect();
    trace.set_functions(names);
    let _ = p.finish("record");
    trace
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// Minimal HTTP/1.0 GET, returning the response body.
fn http_get(addr: &str, path: &str) -> String {
    use std::io::Read as _;
    let mut stream = TcpStream::connect(addr).expect("connect http");
    write!(stream, "GET {path} HTTP/1.0\r\nConnection: close\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default()
}

#[test]
fn sixty_four_concurrent_tenants_match_offline_verdicts() {
    let w = commercial_at_version("game_action", 1);
    let settings = settings_for(w.as_ref());
    let model = train(w.as_ref(), &Input::set(25)).model;
    let bug = CATALOG
        .iter()
        .find(|b| b.fault.0 == "ga.scene_tree.skip_parent")
        .expect("catalogued bug");

    // 64 tenants: mostly clean runs, a few with the catalogued Figure
    // 10 fault so anomalous verdicts cross the wire too.
    let mut tenants = Vec::new();
    for i in 0..64u32 {
        let mut plan = if i % 17 == 0 {
            bug.plan()
        } else {
            FaultPlan::new()
        };
        let trace = record_trace(w.as_ref(), 100 + i, &mut plan, &settings);
        let expected = trace.check(&model, &model.settings).expect("offline check");
        tenants.push((format!("tenant-{i:02}"), trace, expected));
    }

    let mut config = ServeConfig::new(model);
    config.shards = 4;
    let server = Server::start(config, "127.0.0.1:0", "127.0.0.1:0").expect("start daemon");
    let ingest = server.ingest_addr().to_string();

    std::thread::scope(|scope| {
        for (name, trace, _) in &tenants {
            let ingest = ingest.clone();
            scope.spawn(move || {
                let sent = push_trace(&ingest, name, trace).expect("push");
                assert_eq!(sent, trace.len() as u64);
            });
        }
    });

    // All 64 registered and drained (connected drops only at finalize).
    let fleet = server.fleet();
    assert!(
        wait_until(Duration::from_secs(60), || {
            let snap = fleet.snapshot();
            snap.tenants_total == 64 && snap.connected == 0
        }),
        "daemon never drained: {:?} tenants, {} connected",
        fleet.snapshot().tenants_total,
        fleet.snapshot().connected
    );

    // Live scrape: per-tenant series and fleet rollups on /metrics.
    let metrics = http_get(server.http_addr(), "/metrics");
    assert!(
        metrics.contains("heapmd_fleet_tenants_total 64"),
        "{metrics}"
    );
    assert!(metrics.contains("heapmd_tenant_events_total{tenant=\"tenant-00\"}"));
    assert!(metrics.contains("heapmd_tenant_events_total{tenant=\"tenant-63\"}"));
    assert!(metrics.contains("heapmd_build_info{"));
    let tsv = http_get(server.http_addr(), "/fleet.tsv");
    assert_eq!(
        tsv.lines().filter(|l| l.starts_with("tenant\t")).count(),
        64
    );
    assert!(http_get(server.http_addr(), "/healthz").contains("ok"));

    server.shutdown();
    let summary = server.wait();
    assert_eq!(summary.tenants.len(), 64);
    assert!(summary.prom_dump_error.is_none());
    let mut anomalous = 0;
    for (name, _, expected) in &tenants {
        let outcome = summary.tenants.get(name).expect("tenant outcome");
        assert!(
            !outcome.partial,
            "{name} should have completed cleanly (evicted: {:?}, error: {:?})",
            outcome.evicted, outcome.error
        );
        assert!(outcome.evicted.is_none(), "{name}: {:?}", outcome.evicted);
        assert!(outcome.error.is_none(), "{name}: {:?}", outcome.error);
        assert_eq!(
            &outcome.bugs, expected,
            "{name}: daemon verdict must be bit-identical to offline check"
        );
        anomalous += usize::from(!expected.is_empty());
    }
    assert!(
        anomalous > 0,
        "fault-planned tenants should have raised bugs"
    );
}

#[test]
fn corrupt_streams_evict_only_the_offending_tenant() {
    let w = commercial_at_version("webapp", 1);
    let settings = settings_for(w.as_ref());
    let model = train(w.as_ref(), &Input::set(4)).model;
    let trace = record_trace(w.as_ref(), 7, &mut FaultPlan::new(), &settings);
    let expected = trace.check(&model, &model.settings).expect("offline check");
    let base = trace.encode_binary();

    // The damage matrix: truncations at structural boundaries plus
    // faults::io bit flips sprayed at different periods.
    let mut variants: Vec<(String, Vec<u8>)> = Vec::new();
    for (i, cut) in [9usize, 25, base.len() / 2, base.len() - 6]
        .into_iter()
        .enumerate()
    {
        variants.push((format!("trunc-{i}"), base[..cut].to_vec()));
    }
    for (i, period) in [3u64, 17, 101].into_iter().enumerate() {
        let mut plan = FaultPlan::new();
        plan.enable(IO_BIT_FLIP_WRITE, FaultConfig::every(period));
        let mut writer = FaultyWriter::new(Vec::new(), plan);
        for chunk in base.chunks(64) {
            writer.write_all(chunk).expect("buffered write");
        }
        variants.push((format!("bitflip-{i}"), writer.into_inner()));
    }

    let server =
        Server::start(ServeConfig::new(model), "127.0.0.1:0", "127.0.0.1:0").expect("start daemon");
    let ingest = server.ingest_addr().to_string();

    for (name, bytes) in &variants {
        let mut stream = TcpStream::connect(&ingest).expect("connect ingest");
        writeln!(stream, "{SERVE_PREAMBLE} {name}").expect("preamble");
        // The daemon may evict (and close) mid-write; a broken pipe
        // here is the expected symptom, not a failure.
        let _ = stream.write_all(bytes);
        let _ = stream.flush();
    }
    // A garbage preamble must be counted, not crash the accept loop.
    {
        let mut stream = TcpStream::connect(&ingest).expect("connect ingest");
        let _ = stream.write_all(b"NOT-A-PREAMBLE\njunk");
    }

    // The daemon survives and a healthy tenant still gets the exact
    // offline verdict.
    assert!(http_get(server.http_addr(), "/healthz").contains("ok"));
    push_trace(&ingest, "healthy", &trace).expect("push healthy");

    let fleet = server.fleet();
    assert!(
        wait_until(Duration::from_secs(30), || {
            let snap = fleet.snapshot();
            snap.connected == 0 && snap.protocol_errors_total >= 1
        }),
        "daemon never drained"
    );
    server.shutdown();
    let summary = server.wait();

    let healthy = summary.tenants.get("healthy").expect("healthy outcome");
    assert!(healthy.evicted.is_none() && !healthy.partial);
    assert_eq!(healthy.bugs, expected);
    let mut evictions = 0;
    for (name, _) in &variants {
        // A bit flip can land in unchecked padding (e.g. the reserved
        // header byte); such a stream legitimately completes. Everything
        // the codec *did* flag must be an eviction, never a panic.
        if let Some(outcome) = summary.tenants.get(name.as_str()) {
            evictions += usize::from(outcome.evicted.is_some());
        }
    }
    assert!(
        evictions >= variants.len() - 1,
        "most damaged streams should evict (got {evictions}/{})",
        variants.len()
    );
}

#[test]
fn shutdown_flushes_partial_verdicts_incidents_and_prom_dump() {
    let w = commercial_at_version("game_action", 1);
    let settings = settings_for(w.as_ref());
    let model = train(w.as_ref(), &Input::set(25)).model;
    let spec = CATALOG
        .iter()
        .find(|b| b.fault.0 == "ga.scene_tree.skip_parent")
        .expect("catalogued bug");
    let trace = record_trace(w.as_ref(), 77, &mut spec.plan(), &settings);
    let expected = trace.check(&model, &model.settings).expect("offline check");
    assert!(!expected.is_empty(), "the Figure 10 bug must reproduce");

    let dir = std::env::temp_dir().join(format!("heapmd-serve-flush-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let prom_path = dir.join("final.prom");
    let mut config = ServeConfig::new(model);
    config.incident_dir = Some(dir.join("incidents"));
    config.prom_dump = Some(prom_path.clone());
    let server = Server::start(config, "127.0.0.1:0", "127.0.0.1:0").expect("start daemon");

    // Stream everything *except* the index/footer, then hold the socket
    // open: from the daemon's view this tenant is mid-stream forever.
    let bytes = trace.encode_binary();
    let footer = &bytes[bytes.len() - 20..];
    let index_offset = u64::from_le_bytes(footer[..8].try_into().unwrap()) as usize;
    let mut stream = TcpStream::connect(server.ingest_addr()).expect("connect ingest");
    writeln!(stream, "{SERVE_PREAMBLE} flusher").expect("preamble");
    stream
        .write_all(&bytes[..index_offset])
        .expect("stream prefix");
    stream.flush().expect("flush");

    let fleet = server.fleet();
    assert!(
        wait_until(Duration::from_secs(30), || {
            fleet.snapshot().tenants.iter().any(|t| t.name == "flusher")
        }),
        "tenant never registered"
    );
    // Graceful shutdown while the stream is open: the buffered prefix
    // must still be finalized (all events arrived — only the index was
    // withheld), incidents flushed, and the dump written.
    server.shutdown();
    let summary = server.wait();
    drop(stream);

    let outcome = summary.tenants.get("flusher").expect("flusher outcome");
    assert!(
        outcome.partial,
        "index never arrived, so the verdict is partial"
    );
    assert!(outcome.evicted.is_none(), "shutdown is not an eviction");
    assert_eq!(outcome.bugs, expected, "prefix held every event");
    assert!(
        !outcome.bundle_paths.is_empty(),
        "incident bundles must flush"
    );
    for path in &outcome.bundle_paths {
        assert!(path.exists(), "bundle {} missing", path.display());
    }
    assert!(summary.prom_dump_error.is_none());
    let dump = std::fs::read_to_string(&prom_path).expect("final prom dump");
    assert!(dump.contains("heapmd_build_info{"));
    assert!(dump.contains("heapmd_fleet_tenants_total 1"));
    assert!(dump.contains("heapmd_tenant_bugs_total{tenant=\"flusher\"}"));
    let _ = std::fs::remove_dir_all(&dir);
}
