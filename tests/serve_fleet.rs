//! Fleet daemon end-to-end: concurrent tenant streams against
//! [`heapmd::Server`] must yield verdicts bit-identical to the offline
//! `check` path, survive corrupt streams by evicting exactly the
//! offending tenant, and flush every incident bundle plus the final
//! Prometheus dump on graceful shutdown.
//!
//! The fault-tolerant-ingest half of the suite drives the resumable v2
//! session layer: a daemon restart mid-stream must resume from the
//! journal, any healing network fault schedule must converge to the
//! uninterrupted offline verdict, evicted streams must salvage their
//! buffered prefix, and `model_dir` overrides must check a tenant
//! against its own model.

use faults::io::{fault_ids::*, FaultyWriter};
use faults::net::{fault_ids::*, partitioned, shared, FaultyConn, SharedFaultPlan};
use faults::{FaultConfig, FaultId, FaultPlan};
use heapmd::serve::push_trace;
use heapmd::{
    connect_session, push_trace_resumable, BugReport, Conn, Dialer, FuncId, HeapModel, Process,
    RetryPolicy, SamplerConfig, ServeConfig, Server, SessionOptions, Settings, Trace,
    SERVE_PREAMBLE,
};
use proptest::prelude::*;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use workloads::bugs::CATALOG;
use workloads::harness::{settings_for, train};
use workloads::{commercial_at_version, Input, Workload};

/// Records a full heap-event trace of one workload run (what
/// `heapmd record` does), with the function table attached.
fn record_trace(w: &dyn Workload, input: u32, plan: &mut FaultPlan, settings: &Settings) -> Trace {
    let mut p = Process::new(settings.clone());
    p.enable_trace();
    w.run(&mut p, plan, &Input::new(input))
        .expect("workload run");
    let mut trace = p.take_trace().expect("tracing enabled");
    let names: Vec<String> = (0..p.functions().len())
        .map(|i| p.functions().name(FuncId(i as u32)).to_string())
        .collect();
    trace.set_functions(names);
    let _ = p.finish("record");
    trace
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// Minimal HTTP/1.0 GET, returning the response body.
fn http_get(addr: &str, path: &str) -> String {
    use std::io::Read as _;
    let mut stream = TcpStream::connect(addr).expect("connect http");
    write!(stream, "GET {path} HTTP/1.0\r\nConnection: close\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default()
}

#[test]
fn sixty_four_concurrent_tenants_match_offline_verdicts() {
    let w = commercial_at_version("game_action", 1);
    let settings = settings_for(w.as_ref());
    let model = train(w.as_ref(), &Input::set(25)).model;
    let bug = CATALOG
        .iter()
        .find(|b| b.fault.0 == "ga.scene_tree.skip_parent")
        .expect("catalogued bug");

    // 64 tenants: mostly clean runs, a few with the catalogued Figure
    // 10 fault so anomalous verdicts cross the wire too.
    let mut tenants = Vec::new();
    for i in 0..64u32 {
        let mut plan = if i % 17 == 0 {
            bug.plan()
        } else {
            FaultPlan::new()
        };
        let trace = record_trace(w.as_ref(), 100 + i, &mut plan, &settings);
        let expected = trace.check(&model, &model.settings).expect("offline check");
        tenants.push((format!("tenant-{i:02}"), trace, expected));
    }

    let mut config = ServeConfig::new(model);
    config.shards = 4;
    let server = Server::start(config, "127.0.0.1:0", "127.0.0.1:0").expect("start daemon");
    let ingest = server.ingest_addr().to_string();

    std::thread::scope(|scope| {
        for (name, trace, _) in &tenants {
            let ingest = ingest.clone();
            scope.spawn(move || {
                let sent = push_trace(&ingest, name, trace).expect("push");
                assert_eq!(sent, trace.len() as u64);
            });
        }
    });

    // All 64 registered and drained (connected drops only at finalize).
    let fleet = server.fleet();
    assert!(
        wait_until(Duration::from_secs(60), || {
            let snap = fleet.snapshot();
            snap.tenants_total == 64 && snap.connected == 0
        }),
        "daemon never drained: {:?} tenants, {} connected",
        fleet.snapshot().tenants_total,
        fleet.snapshot().connected
    );

    // Live scrape: per-tenant series and fleet rollups on /metrics.
    let metrics = http_get(server.http_addr(), "/metrics");
    assert!(
        metrics.contains("heapmd_fleet_tenants_total 64"),
        "{metrics}"
    );
    assert!(metrics.contains("heapmd_tenant_events_total{tenant=\"tenant-00\"}"));
    assert!(metrics.contains("heapmd_tenant_events_total{tenant=\"tenant-63\"}"));
    assert!(metrics.contains("heapmd_build_info{"));
    let tsv = http_get(server.http_addr(), "/fleet.tsv");
    assert_eq!(
        tsv.lines().filter(|l| l.starts_with("tenant\t")).count(),
        64
    );
    assert!(http_get(server.http_addr(), "/healthz").contains("ok"));

    server.shutdown();
    let summary = server.wait();
    assert_eq!(summary.tenants.len(), 64);
    assert!(summary.prom_dump_error.is_none());
    let mut anomalous = 0;
    for (name, _, expected) in &tenants {
        let outcome = summary.tenants.get(name).expect("tenant outcome");
        assert!(
            !outcome.partial,
            "{name} should have completed cleanly (evicted: {:?}, error: {:?})",
            outcome.evicted, outcome.error
        );
        assert!(outcome.evicted.is_none(), "{name}: {:?}", outcome.evicted);
        assert!(outcome.error.is_none(), "{name}: {:?}", outcome.error);
        assert_eq!(
            &outcome.bugs, expected,
            "{name}: daemon verdict must be bit-identical to offline check"
        );
        anomalous += usize::from(!expected.is_empty());
    }
    assert!(
        anomalous > 0,
        "fault-planned tenants should have raised bugs"
    );
}

#[test]
fn corrupt_streams_evict_only_the_offending_tenant() {
    let w = commercial_at_version("webapp", 1);
    let settings = settings_for(w.as_ref());
    let model = train(w.as_ref(), &Input::set(4)).model;
    let trace = record_trace(w.as_ref(), 7, &mut FaultPlan::new(), &settings);
    let expected = trace.check(&model, &model.settings).expect("offline check");
    let base = trace.encode_binary();

    // The damage matrix: truncations at structural boundaries plus
    // faults::io bit flips sprayed at different periods.
    let mut variants: Vec<(String, Vec<u8>)> = Vec::new();
    for (i, cut) in [9usize, 25, base.len() / 2, base.len() - 6]
        .into_iter()
        .enumerate()
    {
        variants.push((format!("trunc-{i}"), base[..cut].to_vec()));
    }
    for (i, period) in [3u64, 17, 101].into_iter().enumerate() {
        let mut plan = FaultPlan::new();
        plan.enable(IO_BIT_FLIP_WRITE, FaultConfig::every(period));
        let mut writer = FaultyWriter::new(Vec::new(), plan);
        for chunk in base.chunks(64) {
            writer.write_all(chunk).expect("buffered write");
        }
        variants.push((format!("bitflip-{i}"), writer.into_inner()));
    }

    let server =
        Server::start(ServeConfig::new(model), "127.0.0.1:0", "127.0.0.1:0").expect("start daemon");
    let ingest = server.ingest_addr().to_string();

    for (name, bytes) in &variants {
        let mut stream = TcpStream::connect(&ingest).expect("connect ingest");
        writeln!(stream, "{SERVE_PREAMBLE} {name}").expect("preamble");
        // The daemon may evict (and close) mid-write; a broken pipe
        // here is the expected symptom, not a failure.
        let _ = stream.write_all(bytes);
        let _ = stream.flush();
    }
    // A garbage preamble must be counted, not crash the accept loop.
    {
        let mut stream = TcpStream::connect(&ingest).expect("connect ingest");
        let _ = stream.write_all(b"NOT-A-PREAMBLE\njunk");
    }

    // The daemon survives and a healthy tenant still gets the exact
    // offline verdict.
    assert!(http_get(server.http_addr(), "/healthz").contains("ok"));
    push_trace(&ingest, "healthy", &trace).expect("push healthy");

    let fleet = server.fleet();
    assert!(
        wait_until(Duration::from_secs(30), || {
            let snap = fleet.snapshot();
            snap.connected == 0 && snap.protocol_errors_total >= 1
        }),
        "daemon never drained"
    );
    server.shutdown();
    let summary = server.wait();

    let healthy = summary.tenants.get("healthy").expect("healthy outcome");
    assert!(healthy.evicted.is_none() && !healthy.partial);
    assert_eq!(healthy.bugs, expected);
    let mut evictions = 0;
    for (name, _) in &variants {
        // A bit flip can land in unchecked padding (e.g. the reserved
        // header byte); such a stream legitimately completes. Everything
        // the codec *did* flag must be an eviction, never a panic.
        if let Some(outcome) = summary.tenants.get(name.as_str()) {
            evictions += usize::from(outcome.evicted.is_some());
        }
    }
    assert!(
        evictions >= variants.len() - 1,
        "most damaged streams should evict (got {evictions}/{})",
        variants.len()
    );
}

#[test]
fn shutdown_flushes_partial_verdicts_incidents_and_prom_dump() {
    let w = commercial_at_version("game_action", 1);
    let settings = settings_for(w.as_ref());
    let model = train(w.as_ref(), &Input::set(25)).model;
    let spec = CATALOG
        .iter()
        .find(|b| b.fault.0 == "ga.scene_tree.skip_parent")
        .expect("catalogued bug");
    let trace = record_trace(w.as_ref(), 77, &mut spec.plan(), &settings);
    let expected = trace.check(&model, &model.settings).expect("offline check");
    assert!(!expected.is_empty(), "the Figure 10 bug must reproduce");

    let dir = std::env::temp_dir().join(format!("heapmd-serve-flush-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let prom_path = dir.join("final.prom");
    let mut config = ServeConfig::new(model);
    config.incident_dir = Some(dir.join("incidents"));
    config.prom_dump = Some(prom_path.clone());
    let server = Server::start(config, "127.0.0.1:0", "127.0.0.1:0").expect("start daemon");

    // Stream everything *except* the index/footer, then hold the socket
    // open: from the daemon's view this tenant is mid-stream forever.
    let bytes = trace.encode_binary();
    let footer = &bytes[bytes.len() - 20..];
    let index_offset = u64::from_le_bytes(footer[..8].try_into().unwrap()) as usize;
    let mut stream = TcpStream::connect(server.ingest_addr()).expect("connect ingest");
    writeln!(stream, "{SERVE_PREAMBLE} flusher").expect("preamble");
    stream
        .write_all(&bytes[..index_offset])
        .expect("stream prefix");
    stream.flush().expect("flush");

    let fleet = server.fleet();
    assert!(
        wait_until(Duration::from_secs(30), || {
            fleet.snapshot().tenants.iter().any(|t| t.name == "flusher")
        }),
        "tenant never registered"
    );
    // Graceful shutdown while the stream is open: the buffered prefix
    // must still be finalized (all events arrived — only the index was
    // withheld), incidents flushed, and the dump written.
    server.shutdown();
    let summary = server.wait();
    drop(stream);

    let outcome = summary.tenants.get("flusher").expect("flusher outcome");
    assert!(
        outcome.partial,
        "index never arrived, so the verdict is partial"
    );
    assert!(outcome.evicted.is_none(), "shutdown is not an eviction");
    assert_eq!(outcome.bugs, expected, "prefix held every event");
    assert!(
        !outcome.bundle_paths.is_empty(),
        "incident bundles must flush"
    );
    for path in &outcome.bundle_paths {
        assert!(path.exists(), "bundle {} missing", path.display());
    }
    assert!(summary.prom_dump_error.is_none());
    let dump = std::fs::read_to_string(&prom_path).expect("final prom dump");
    assert!(dump.contains("heapmd_build_info{"));
    assert!(dump.contains("heapmd_fleet_tenants_total 1"));
    assert!(dump.contains("heapmd_tenant_bugs_total{tenant=\"flusher\"}"));
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Fault-tolerant ingest: session resume, chaos, salvage, model overrides
// ---------------------------------------------------------------------

/// A workload trace with its model and authoritative offline verdict,
/// shared across the resume/chaos tests (training is the expensive
/// part, so it runs once per fixture).
struct Fixture {
    model: HeapModel,
    trace: Trace,
    expected: Vec<BugReport>,
}

/// Clean webapp run: small and fast, for the per-case chaos matrix.
fn webapp_fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let w = commercial_at_version("webapp", 1);
        let settings = settings_for(w.as_ref());
        let model = train(w.as_ref(), &Input::set(4)).model;
        let trace = record_trace(w.as_ref(), 7, &mut FaultPlan::new(), &settings);
        let expected = trace.check(&model, &model.settings).expect("offline check");
        Fixture {
            model,
            trace,
            expected,
        }
    })
}

/// Buggy game_action run (the catalogued Figure 10 fault), so verdict
/// equality is asserted on a *non-empty* bug list.
fn buggy_fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let w = commercial_at_version("game_action", 1);
        let settings = settings_for(w.as_ref());
        let model = train(w.as_ref(), &Input::set(25)).model;
        let spec = CATALOG
            .iter()
            .find(|b| b.fault.0 == "ga.scene_tree.skip_parent")
            .expect("catalogued bug");
        let trace = record_trace(w.as_ref(), 77, &mut spec.plan(), &settings);
        let expected = trace.check(&model, &model.settings).expect("offline check");
        assert!(!expected.is_empty(), "the Figure 10 bug must reproduce");
        Fixture {
            model,
            trace,
            expected,
        }
    })
}

/// A per-test scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("heapmd-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

/// End offset of the first wire block: 8-byte file header + 17-byte
/// block header (whose length field sits at header bytes 9..13) +
/// payload. Splitting an encoded trace here leaves exactly one whole
/// frame on each side of the cut.
fn first_block_end(bytes: &[u8]) -> usize {
    let len = u32::from_le_bytes(bytes[17..21].try_into().unwrap()) as usize;
    8 + 17 + len
}

#[test]
fn daemon_restart_mid_stream_resumes_from_journal() {
    let fx = buggy_fixture();
    let dir = scratch_dir("restart");
    let journal = dir.join("journal");
    let addr = format!("unix:{}", dir.join("ingest.sock").display());

    let mut config = ServeConfig::new(fx.model.clone());
    config.journal_dir = Some(journal.clone());
    let server = Server::start(config.clone(), &addr, "127.0.0.1:0").expect("start first daemon");

    let opts = SessionOptions {
        session: Some("phoenix-1".into()),
        retry: RetryPolicy {
            max_attempts: 60,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(100),
        },
        // A 1-byte spill cap makes every write block until the daemon
        // has journaled and acked the frames it completed, so the split
        // point below is deterministically durable before the daemon
        // dies.
        spill_limit: 1,
        ..SessionOptions::default()
    };
    let mut client = connect_session(&addr, "phoenix", opts).expect("connect session");

    let bytes = fx.trace.encode_binary();
    let mid = first_block_end(&bytes);
    assert!(mid < bytes.len(), "trace must span several blocks");
    client.write_all(&bytes[..mid]).expect("first block");

    // Kill the first daemon mid-stream. The journal must survive.
    server.shutdown();
    let summary = server.wait();
    let outcome = summary.tenants.get("phoenix").expect("first-life outcome");
    assert!(outcome.partial, "daemon died mid-stream");
    assert!(outcome.evicted.is_none(), "shutdown is not an eviction");
    assert!(
        journal.join("phoenix.hmdt").exists(),
        "journal survives shutdown"
    );
    assert!(journal.join("phoenix.session.json").exists());

    // Second daemon, same socket and journal: recovery replays the
    // journal before accepting, so the client resumes transparently.
    let server = Server::start(config, &addr, "127.0.0.1:0").expect("restart daemon");
    client.write_all(&bytes[mid..]).expect("rest of the stream");
    client.flush().expect("final ack");
    assert!(
        client.reconnects() >= 1,
        "client redialed across the restart"
    );

    let snap = server.fleet().snapshot();
    assert!(snap.reconnects_total >= 1, "daemon counted the reconnect");
    let row = snap
        .tenants
        .iter()
        .find(|t| t.name == "phoenix")
        .expect("phoenix fleet row");
    assert!(row.resumes_total >= 1, "daemon counted the session resume");

    server.shutdown();
    let summary = server.wait();
    let outcome = summary.tenants.get("phoenix").expect("resumed outcome");
    assert!(
        !outcome.partial && outcome.evicted.is_none() && outcome.error.is_none(),
        "resumed stream must complete cleanly: {outcome:?}"
    );
    assert_eq!(
        outcome.bugs, fx.expected,
        "verdict across the restart must be bit-identical to offline check"
    );
    assert!(
        !journal.join("phoenix.hmdt").exists(),
        "journal is deleted once the verdict closes"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The session client's pluggable transport, wrapped in network fault
/// injection. Read timeouts travel via a `try_clone`d handle (timeouts
/// are a property of the shared socket, not the wrapper).
struct ChaosConn {
    io: FaultyConn<TcpStream>,
    ctl: TcpStream,
}

impl std::io::Read for ChaosConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.io.read(buf)
    }
}

impl std::io::Write for ChaosConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.io.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.io.flush()
    }
}

impl Conn for ChaosConn {
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> std::io::Result<()> {
        self.ctl.set_read_timeout(dur)
    }
}

/// Dials TCP through the shared fault plan: partitions gate the dial
/// itself, everything else wraps the live connection. The plan spans
/// redials, so fault budgets keep counting across reconnects.
fn chaos_dialer(plan: SharedFaultPlan) -> Dialer {
    Box::new(move |addr: &str| {
        partitioned(&plan)?;
        let stream = TcpStream::connect(addr)?;
        let ctl = stream.try_clone()?;
        Ok(Box::new(ChaosConn {
            io: FaultyConn::new(stream, Arc::clone(&plan)),
            ctl,
        }) as Box<dyn Conn>)
    })
}

const NET_FAULTS: [FaultId; 6] = [
    NET_DROP,
    NET_PARTITION,
    NET_DELAY,
    NET_RESET_MID_BLOCK,
    NET_DUP_FRAME,
    NET_TRUNCATE_FRAME,
];

// The tentpole invariant: any fault schedule that eventually heals
// (every config carries a limit, so the budget runs dry) yields a
// final verdict bit-identical to the uninterrupted offline check.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn healing_fault_schedules_converge_to_the_offline_verdict(
        specs in proptest::collection::vec((0usize..6, 1u64..5, 0u64..4, 1u64..3), 1..4)
    ) {
        static CASE: AtomicU64 = AtomicU64::new(0);
        let case = CASE.fetch_add(1, Relaxed);
        let fx = webapp_fixture();
        let dir = scratch_dir(&format!("chaos-{case}"));

        let mut plan = FaultPlan::new();
        for (fault, every, after, limit) in &specs {
            plan.enable(
                NET_FAULTS[*fault],
                FaultConfig::every(*every).after(*after).limit(*limit),
            );
        }

        let mut config = ServeConfig::new(fx.model.clone());
        config.journal_dir = Some(dir.join("journal"));
        let server = Server::start(config, "127.0.0.1:0", "127.0.0.1:0").expect("start daemon");

        let opts = SessionOptions {
            session: Some(format!("chaos-{case}")),
            retry: RetryPolicy {
                max_attempts: 50,
                base_delay: Duration::from_millis(5),
                max_delay: Duration::from_millis(50),
            },
            io_timeout: Duration::from_millis(1500),
            dialer: Some(chaos_dialer(shared(plan))),
            ..SessionOptions::default()
        };
        let tenant = format!("chaos-{case}");
        let ingest = server.ingest_addr().to_string();
        let (events, _reconnects) =
            push_trace_resumable(&ingest, &tenant, &fx.trace, opts).expect("push through chaos");
        prop_assert_eq!(events, fx.trace.len() as u64);

        server.shutdown();
        let summary = server.wait();
        let outcome = summary.tenants.get(&tenant).expect("chaos outcome");
        prop_assert!(!outcome.partial, "schedule healed, stream must complete: {:?}", outcome);
        prop_assert!(outcome.evicted.is_none(), "healing faults never evict: {:?}", outcome.evicted);
        prop_assert_eq!(&outcome.bugs, &fx.expected);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn corrupt_stream_eviction_salvages_the_buffered_prefix() {
    let fx = buggy_fixture();
    let dir = scratch_dir("salvage");
    let mut config = ServeConfig::new(fx.model.clone());
    config.incident_dir = Some(dir.join("incidents"));
    let server = Server::start(config, "127.0.0.1:0", "127.0.0.1:0").expect("start daemon");

    // Every event and the function table cross the wire intact; the
    // stream then turns to garbage where the index block should start.
    let bytes = fx.trace.encode_binary();
    let footer = &bytes[bytes.len() - 20..];
    let index_offset = u64::from_le_bytes(footer[..8].try_into().unwrap()) as usize;
    let mut stream = TcpStream::connect(server.ingest_addr()).expect("connect ingest");
    writeln!(stream, "{SERVE_PREAMBLE} mangled").expect("preamble");
    let _ = stream.write_all(&bytes[..index_offset]);
    let _ = stream.write_all(b"\xde\xad\xbe\xefnot-a-block-header");
    let _ = stream.flush();
    drop(stream);

    let fleet = server.fleet();
    assert!(
        wait_until(Duration::from_secs(30), || {
            fleet.snapshot().evictions_total >= 1
        }),
        "corrupt stream never evicted"
    );
    server.shutdown();
    let summary = server.wait();
    let outcome = summary.tenants.get("mangled").expect("mangled outcome");
    assert!(outcome.evicted.is_some(), "corruption must evict");
    assert!(outcome.partial, "the index never arrived");
    assert_eq!(
        outcome.bugs, fx.expected,
        "the salvaged prefix held every event, so the partial verdict carries the full bug list"
    );
    assert!(
        !outcome.bundle_paths.is_empty(),
        "eviction still flushes incident bundles"
    );
    for path in &outcome.bundle_paths {
        assert!(path.exists(), "bundle {} missing", path.display());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn model_dir_checks_tenants_against_their_own_override() {
    let fx = buggy_fixture();
    // The override: calibrated ranges blown wide open and the
    // normally-unstable metric list emptied, so the same trace that is
    // anomalous under the shared model is clean under the override.
    let mut override_model = fx.model.clone();
    for sm in &mut override_model.stable {
        sm.min = -1_000_000_000.0;
        sm.max = 1_000_000_000.0;
    }
    override_model.unstable.clear();
    override_model.locally_stable.clear();
    let expected_override = fx
        .trace
        .check(&override_model, &override_model.settings)
        .expect("offline check under override");
    assert_ne!(
        fx.expected, expected_override,
        "the override must actually change the verdict"
    );

    let dir = scratch_dir("modeldir");
    let models = dir.join("models");
    std::fs::create_dir_all(&models).expect("mkdir models");
    override_model
        .save(models.join("custom.hmdm"))
        .expect("save override model");

    let mut config = ServeConfig::new(fx.model.clone());
    config.model_dir = Some(models);
    let server = Server::start(config, "127.0.0.1:0", "127.0.0.1:0").expect("start daemon");
    let ingest = server.ingest_addr().to_string();
    push_trace(&ingest, "custom", &fx.trace).expect("push custom");
    push_trace(&ingest, "vanilla", &fx.trace).expect("push vanilla");

    let fleet = server.fleet();
    assert!(
        wait_until(Duration::from_secs(30), || {
            let snap = fleet.snapshot();
            snap.tenants_total == 2 && snap.connected == 0
        }),
        "daemon never drained"
    );
    server.shutdown();
    let summary = server.wait();
    let custom = summary.tenants.get("custom").expect("custom outcome");
    assert_eq!(
        custom.bugs, expected_override,
        "tenant with an override checks against <model_dir>/custom.hmdm"
    );
    let vanilla = summary.tenants.get("vanilla").expect("vanilla outcome");
    assert_eq!(
        vanilla.bugs, fx.expected,
        "tenant without an override falls back to the shared model"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Parses every `name{tenant="<tenant>",metric="<m>"} v` sample of one
/// Prometheus family out of a scrape body.
fn scrape_metric_family(body: &str, name: &str, tenant: &str) -> Vec<(String, f64)> {
    let prefix = format!("{name}{{tenant=\"{tenant}\",metric=\"");
    body.lines()
        .filter_map(|l| l.strip_prefix(&prefix))
        .filter_map(|rest| {
            let (metric, value) = rest.split_once("\"} ")?;
            Some((metric.to_string(), value.trim().parse().ok()?))
        })
        .collect()
}

/// Parses a single-valued per-tenant gauge from a scrape body.
fn scrape_tenant_gauge(body: &str, name: &str, tenant: &str) -> Option<f64> {
    let prefix = format!("{name}{{tenant=\"{tenant}\"}} ");
    body.lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .and_then(|v| v.trim().parse().ok())
}

/// Production-overhead mode end to end: a tenant streaming a sampled
/// recording must show its effective rate and confidence-widened
/// accepted bands on `/metrics` and `/fleet.jsonl`, strictly wider
/// than an exact tenant checked against the same model — and its
/// verdict must match the offline check of the sampled trace.
#[test]
fn sampled_tenant_reports_widened_bands_next_to_exact_tenant() {
    let fx = webapp_fixture();
    let config = SamplerConfig::new(64, 8);
    let sampled_trace = fx.trace.sampled(config);
    let rate = sampled_trace.sample_rate();
    assert!(
        rate > 0.0 && rate < 1.0,
        "fixture must actually decimate stores (rate {rate})"
    );
    let expected_sampled = sampled_trace
        .check(&fx.model, &fx.model.settings)
        .expect("offline check of the sampled trace");

    let server = Server::start(
        ServeConfig::new(fx.model.clone()),
        "127.0.0.1:0",
        "127.0.0.1:0",
    )
    .expect("start daemon");
    let ingest = server.ingest_addr().to_string();
    push_trace(&ingest, "exact", &fx.trace).expect("push exact");
    push_trace(&ingest, "sampled", &sampled_trace).expect("push sampled");

    let fleet = server.fleet();
    assert!(
        wait_until(Duration::from_secs(30), || {
            let snap = fleet.snapshot();
            snap.tenants_total == 2 && snap.connected == 0
        }),
        "daemon never drained"
    );

    let metrics = http_get(server.http_addr(), "/metrics");
    assert_eq!(
        scrape_tenant_gauge(&metrics, "heapmd_tenant_sample_rate", "exact"),
        Some(1.0),
        "exact tenant scrapes rate 1:\n{metrics}"
    );
    let scraped_rate = scrape_tenant_gauge(&metrics, "heapmd_tenant_sample_rate", "sampled")
        .expect("sampled tenant sample-rate gauge");
    assert!(
        (scraped_rate - rate).abs() < 1e-9,
        "scraped rate {scraped_rate} != announced rate {rate}"
    );

    let exact_bands = scrape_metric_family(&metrics, "heapmd_tenant_metric_band", "exact");
    let sampled_bands = scrape_metric_family(&metrics, "heapmd_tenant_metric_band", "sampled");
    assert!(
        !exact_bands.is_empty() && !sampled_bands.is_empty(),
        "both tenants must publish band gauges:\n{metrics}"
    );
    let mut compared = 0;
    for (metric, wide) in &sampled_bands {
        if let Some((_, narrow)) = exact_bands.iter().find(|(m, _)| m == metric) {
            assert!(
                wide > narrow,
                "{metric}: sampled band {wide} must exceed exact band {narrow}"
            );
            compared += 1;
        }
    }
    assert!(compared > 0, "tenants share no band metrics:\n{metrics}");

    // The firehose carries the same story: rate and the widened
    // per-tenant band roll into each tenant line.
    let firehose = http_get(server.http_addr(), "/fleet.jsonl");
    let tenant_line = |name: &str| {
        firehose
            .lines()
            .find(|l| l.contains("\"type\":\"tenant\"") && l.contains(&format!("\"name\":\"{name}\"")))
            .unwrap_or_else(|| panic!("no firehose line for {name}:\n{firehose}"))
            .to_string()
    };
    let exact_line = tenant_line("exact");
    let sampled_line = tenant_line("sampled");
    assert!(
        exact_line.contains("\"sample_rate\":1"),
        "exact tenant rate in firehose: {exact_line}"
    );
    let json_f64 = |line: &str, key: &str| -> f64 {
        let rest = &line[line.find(&format!("\"{key}\":")).expect(key) + key.len() + 3..];
        rest.split(|c: char| c == ',' || c == '}')
            .next()
            .and_then(|v| v.parse().ok())
            .expect("numeric field")
    };
    let firehose_rate = json_f64(&sampled_line, "sample_rate");
    assert!(
        (firehose_rate - rate).abs() < 1e-9,
        "firehose rate {firehose_rate} != {rate}"
    );
    assert!(
        json_f64(&sampled_line, "band_max") > json_f64(&exact_line, "band_max"),
        "sampled band_max must exceed exact band_max:\nexact: {exact_line}\nsampled: {sampled_line}"
    );

    server.shutdown();
    let summary = server.wait();
    let exact = summary.tenants.get("exact").expect("exact outcome");
    assert_eq!(
        exact.bugs, fx.expected,
        "exact tenant verdict matches the offline check"
    );
    let sampled = summary.tenants.get("sampled").expect("sampled outcome");
    assert_eq!(
        sampled.bugs, expected_sampled,
        "sampled tenant verdict matches the offline check of the sampled trace"
    );
}
