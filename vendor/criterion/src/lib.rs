//! Offline stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness covering the API surface this workspace's
//! `benches/` use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are deliberately simple — a fixed warm-up followed by
//! timed batches, reporting mean wall-clock time per iteration (and
//! derived throughput when declared). That is enough to compare cases
//! within one run, e.g. obs-enabled vs obs-disabled instrumentation.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;
const TARGET_BATCHES: u32 = 12;
const MIN_MEASURE_TIME: Duration = Duration::from_millis(400);

/// Declared work-per-iteration, used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name with a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`, keeping its return value
    /// alive through [`black_box`] so the work is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        // Calibrate a batch size so each timed batch is long enough
        // for Instant to resolve meaningfully.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let per_batch = (MIN_MEASURE_TIME.as_nanos() / TARGET_BATCHES as u128)
            .div_ceil(probe.as_nanos())
            .clamp(1, 1_000_000) as u64;

        for _ in 0..TARGET_BATCHES {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.total += start.elapsed();
            self.iters += per_batch;
        }
    }
}

/// A named set of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration for subsequent cases.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark case.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        self.report(&id.label, &bencher);
        self
    }

    /// Runs one benchmark case with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Finishes the group (reporting happens per-case; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, label: &str, bencher: &Bencher) {
        if bencher.iters == 0 {
            println!("{}/{label:40} (no iterations)", self.name);
            return;
        }
        let per_iter_ns = bencher.total.as_nanos() as f64 / bencher.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / per_iter_ns)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / per_iter_ns)
            }
            None => String::new(),
        };
        println!(
            "{}/{label:40} {:>14} /iter{rate}",
            self.name,
            format_ns(per_iter_ns)
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmark cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark case.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function("default", f);
        self
    }
}

/// Bundles benchmark functions under one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("case", 4), |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > WARMUP_ITERS);
    }
}
