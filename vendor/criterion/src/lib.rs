//! Offline stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness covering the API surface this workspace's
//! `benches/` use: `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are deliberately simple — a fixed warm-up followed by
//! timed batches, reporting mean and median wall-clock time per
//! iteration (and derived throughput when declared). That is enough to
//! compare cases within one run, e.g. obs-enabled vs obs-disabled
//! instrumentation.
//!
//! # Machine-readable output
//!
//! When the `HEAPMD_BENCH_JSON` environment variable names a file,
//! every finished case appends one JSON object per line to it (the
//! JSON-lines framing lets several bench binaries share one file; see
//! DESIGN.md §8 for the record schema). `HEAPMD_BENCH_PHASE` stamps a
//! free-form phase label into each record (`baseline`, `optimized`,
//! `ci`, …) so before/after trajectories live side by side.
//!
//! # Quick mode
//!
//! Setting `HEAPMD_BENCH_QUICK=1` shrinks the measurement time by
//! roughly an order of magnitude. Numbers are noisier but every case
//! still executes — this is the CI smoke configuration, which gates on
//! "no panics", not on timing.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

const WARMUP_ITERS: u64 = 3;

fn quick_mode() -> bool {
    std::env::var("HEAPMD_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn target_batches() -> u32 {
    if quick_mode() {
        5
    } else {
        12
    }
}

fn min_measure_time() -> Duration {
    if quick_mode() {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(400)
    }
}

/// Declared work-per-iteration, used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A `group/function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name with a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId {
            label: label.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    total: Duration,
    iters: u64,
    /// Per-batch mean ns/iteration samples, for the median estimate.
    batch_ns_per_iter: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `routine`, keeping its return value
    /// alive through [`black_box`] so the work is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        // Calibrate a batch size so each timed batch is long enough
        // for Instant to resolve meaningfully.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(20));
        let batches = target_batches();
        let per_batch = (min_measure_time().as_nanos() / batches as u128)
            .div_ceil(probe.as_nanos())
            .clamp(1, 1_000_000) as u64;

        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.total += elapsed;
            self.iters += per_batch;
            self.batch_ns_per_iter
                .push(elapsed.as_nanos() as f64 / per_batch as f64);
        }
    }

    /// Median of the per-batch ns/iteration samples (0 when nothing
    /// was measured).
    fn median_ns_per_iter(&self) -> f64 {
        let mut samples = self.batch_ns_per_iter.clone();
        if samples.is_empty() {
            return 0.0;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let n = samples.len();
        if n % 2 == 1 {
            samples[n / 2]
        } else {
            (samples[n / 2 - 1] + samples[n / 2]) / 2.0
        }
    }
}

/// A named set of related benchmark cases.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the work performed per iteration for subsequent cases.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark case.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
            batch_ns_per_iter: Vec::new(),
        };
        f(&mut bencher);
        self.report(&id.label, &bencher);
        self
    }

    /// Runs one benchmark case with an explicit input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
            batch_ns_per_iter: Vec::new(),
        };
        f(&mut bencher, input);
        self.report(&id.label, &bencher);
        self
    }

    /// Finishes the group (reporting happens per-case; kept for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, label: &str, bencher: &Bencher) {
        if bencher.iters == 0 {
            println!("{}/{label:40} (no iterations)", self.name);
            return;
        }
        let mean_ns = bencher.total.as_nanos() as f64 / bencher.iters as f64;
        let median_ns = bencher.median_ns_per_iter();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 * 1e9 / median_ns)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 * 1e9 / median_ns)
            }
            None => String::new(),
        };
        println!(
            "{}/{label:40} {:>14} median ({} mean) /iter{rate}",
            self.name,
            format_ns(median_ns),
            format_ns(mean_ns),
        );
        self.emit_json(label, bencher, mean_ns, median_ns);
    }

    /// Appends one JSON-lines record for the finished case when
    /// `HEAPMD_BENCH_JSON` names a sink file.
    fn emit_json(&self, label: &str, bencher: &Bencher, mean_ns: f64, median_ns: f64) {
        let Ok(path) = std::env::var("HEAPMD_BENCH_JSON") else {
            return;
        };
        if path.is_empty() {
            return;
        }
        let phase = std::env::var("HEAPMD_BENCH_PHASE").unwrap_or_else(|_| "unspecified".into());
        let mut record = String::with_capacity(256);
        record.push('{');
        record.push_str("\"schema\":\"heapmd-bench-v1\"");
        record.push_str(&format!(",\"phase\":{}", json_str(&phase)));
        record.push_str(&format!(",\"group\":{}", json_str(&self.name)));
        record.push_str(&format!(",\"bench\":{}", json_str(label)));
        record.push_str(&format!(",\"iters\":{}", bencher.iters));
        record.push_str(&format!(",\"ns_per_iter_median\":{median_ns:.2}"));
        record.push_str(&format!(",\"ns_per_iter_mean\":{mean_ns:.2}"));
        match self.throughput {
            Some(Throughput::Elements(n)) => {
                record.push_str(&format!(",\"elements_per_iter\":{n}"));
                record.push_str(&format!(
                    ",\"ns_per_event_median\":{:.3}",
                    median_ns / n as f64
                ));
                record.push_str(&format!(
                    ",\"events_per_sec\":{:.0}",
                    n as f64 * 1e9 / median_ns
                ));
            }
            Some(Throughput::Bytes(n)) => {
                record.push_str(&format!(",\"bytes_per_iter\":{n}"));
                record.push_str(&format!(
                    ",\"bytes_per_sec\":{:.0}",
                    n as f64 * 1e9 / median_ns
                ));
            }
            None => {}
        }
        record.push('}');
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{record}"));
        if let Err(e) = appended {
            eprintln!("warning: cannot append bench record to {path}: {e}");
        }
    }
}

/// Minimal JSON string escaping for bench labels and phase names.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmark cases.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark case.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function("default", f);
        self
    }
}

/// Bundles benchmark functions under one group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more `criterion_group!` runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(4));
        let mut ran = 0u64;
        group.bench_function(BenchmarkId::new("case", 4), |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > WARMUP_ITERS);
    }

    #[test]
    fn median_of_batches_is_computed() {
        let b = Bencher {
            total: Duration::from_nanos(600),
            iters: 6,
            batch_ns_per_iter: vec![300.0, 100.0, 200.0],
        };
        assert_eq!(b.median_ns_per_iter(), 200.0);
        let even = Bencher {
            total: Duration::ZERO,
            iters: 4,
            batch_ns_per_iter: vec![100.0, 400.0, 200.0, 300.0],
        };
        assert_eq!(even.median_ns_per_iter(), 250.0);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a/b"), "\"a/b\"");
        assert_eq!(json_str("q\"\\"), "\"q\\\"\\\\\"");
    }
}
