//! Offline stand-in for the [rand](https://docs.rs/rand) 0.8 API
//! surface this workspace uses: [`rngs::SmallRng`], [`SeedableRng`],
//! and the [`Rng`] extension methods `gen`, `gen_range`, and
//! `gen_bool`.
//!
//! The generator is xoshiro256++ (the algorithm behind the real
//! `SmallRng` on 64-bit targets) seeded through SplitMix64, so streams
//! are deterministic for a given seed — which is all the workloads
//! need: reproducible pseudo-random input schedules, not
//! cryptographic quality.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator from OS entropy — here, from the system
    /// clock, since the workspace only uses seeded streams for
    /// anything that must reproduce.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E3779B97F4A7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform sampler over half-open ranges.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                let span = (high - low) as u64;
                // Multiply-shift bounded sampling (Lemire); the slight
                // bias of a modulo fallback would be fine for
                // simulation workloads, but this is just as cheap.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low + hi as $t
            }
        }
    )*};
}

impl_sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_single<R: RngCore + ?Sized>(low: $t, high: $t, rng: &mut R) -> $t {
                let span = (high as i128 - low as i128) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (low as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_single<R: RngCore + ?Sized>(low: f64, high: f64, rng: &mut R) -> f64 {
        low + f64::sample(rng) * (high - low)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
///
/// Kept as one blanket impl over `Range<T>` (like the real crate) so
/// type inference can unify a literal range's element type with the
/// expected output type, e.g. `base + rng.gen_range(0..160)` where the
/// sum must be `usize`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` uniformly.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real rand does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-0.4f64..0.4);
            assert!((-0.4..0.4).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_probability_is_plausible() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
    }
}
