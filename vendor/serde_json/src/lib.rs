//! Offline stand-in for [serde_json](https://docs.rs/serde_json),
//! implementing the calls this workspace makes — [`to_string`],
//! [`to_string_pretty`], [`from_str`], and the [`Error`] type — over the
//! `serde` stand-in's [`Value`] tree.
//!
//! Output conventions match the real crate where observable: object
//! fields in serialization order, non-finite floats as `null`, integers
//! without a decimal point, and strings with standard JSON escapes.

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// A JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the value model in use; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
///
/// # Errors
///
/// Infallible for the value model in use (see [`to_string`]).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Rust's Display for f64 is the shortest representation
                // that round-trips, which is also valid JSON.
                out.push_str(&f.to_string());
            } else {
                // Matches real serde_json: NaN and infinities are null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn parse_document(mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid keyword"))
                }
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("expected number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| self.err("integer overflow"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(from_str::<u64>("3").unwrap(), 3);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn round_trips_containers() {
        let v = vec![(1.0f64, 2.0f64), (3.0, 4.5)];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<(f64, f64)>>(&s).unwrap(), v);
        let o: Option<u32> = None;
        assert_eq!(to_string(&o).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert!(from_str::<f64>("null").unwrap().is_nan());
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = vec![1u32, 2];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<u64>("3 x").is_err());
        assert!(from_str::<u64>("").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }
}
