//! Derive macros for the offline `serde` stand-in.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! item shapes this workspace uses — named-field structs, tuple/newtype
//! structs, and enums with unit, newtype, tuple, and struct variants —
//! plus the `#[serde(default)]` and `#[serde(skip)]` field attributes.
//!
//! The real serde_derive parses with syn/quote; neither is available
//! offline, so this walks the raw [`proc_macro::TokenStream`] with a
//! small cursor and emits the impl as a source string. The encoding
//! matches serde's externally-tagged defaults (unit variants as
//! strings, data variants as single-key objects, newtype structs as
//! their contents) so files written by either implementation parse
//! under the other.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    skip: bool,
    default: bool,
    /// Path named by `#[serde(default = "path")]`: the function called
    /// for the field's value when the key is absent (real serde
    /// semantics), instead of `Default::default()`.
    default_path: Option<String>,
}

#[derive(Debug)]
struct NamedField {
    name: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum Fields {
    Named(Vec<NamedField>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes any leading attributes, folding `#[serde(...)]` flags.
    fn skip_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        loop {
            match self.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    self.next();
                    if let Some(TokenTree::Group(g)) = self.next() {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(TokenTree::Ident(id)) = inner.first() {
                            if id.to_string() == "serde" {
                                if let Some(TokenTree::Group(args)) = inner.get(1) {
                                    let toks: Vec<TokenTree> =
                                        args.stream().into_iter().collect();
                                    let mut i = 0;
                                    while i < toks.len() {
                                        if let TokenTree::Ident(flag) = &toks[i] {
                                            match flag.to_string().as_str() {
                                                "skip" => attrs.skip = true,
                                                "default" => {
                                                    attrs.default = true;
                                                    // `default = "path"`
                                                    if let (
                                                        Some(TokenTree::Punct(eq)),
                                                        Some(TokenTree::Literal(lit)),
                                                    ) = (toks.get(i + 1), toks.get(i + 2))
                                                    {
                                                        if eq.as_char() == '=' {
                                                            let s = lit.to_string();
                                                            attrs.default_path = Some(
                                                                s.trim_matches('"').to_string(),
                                                            );
                                                            i += 2;
                                                        }
                                                    }
                                                }
                                                _ => {}
                                            }
                                        }
                                        i += 1;
                                    }
                                }
                            }
                        }
                    }
                }
                _ => return attrs,
            }
        }
    }

    /// Consumes `pub`, `pub(crate)`, `pub(in ...)` if present.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    /// Consumes tokens of a type expression until a top-level `,`
    /// (angle-bracket aware). The `,` itself is consumed.
    fn skip_type(&mut self) {
        let mut angle_depth: i64 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => {
                    angle_depth += 1;
                    self.next();
                }
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    self.next();
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.next();
                    return;
                }
                _ => {
                    self.next();
                }
            }
        }
    }
}

fn parse_named_fields(group: TokenStream) -> Vec<NamedField> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.skip_attrs();
        c.skip_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected field name, found {other}"),
            None => break,
        };
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        c.skip_type();
        fields.push(NamedField { name, attrs });
    }
    fields
}

fn tuple_arity(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    if c.at_end() {
        return 0;
    }
    let mut arity = 0;
    while !c.at_end() {
        c.skip_attrs();
        c.skip_visibility();
        c.skip_type();
        arity += 1;
    }
    arity
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let keyword = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("the offline serde derive does not support generic types (deriving `{name}`)");
        }
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(tuple_arity(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unsupported struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            let mut vc = Cursor::new(body);
            let mut variants = Vec::new();
            while !vc.at_end() {
                vc.skip_attrs();
                let vname = match vc.next() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    Some(other) => panic!("expected variant name in `{name}`, found {other}"),
                    None => break,
                };
                let fields = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g.stream()));
                        vc.next();
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(tuple_arity(g.stream()));
                        vc.next();
                        f
                    }
                    _ => Fields::Unit,
                };
                // Optional trailing comma (discriminants are unsupported
                // but unused in this workspace).
                if let Some(TokenTree::Punct(p)) = vc.peek() {
                    if p.as_char() == ',' {
                        vc.next();
                    }
                }
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Item::Enum { name, variants }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize_named(out: &mut String, receiver: &str, fields: &[NamedField]) {
    out.push_str("{ let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n");
    for f in fields {
        if f.attrs.skip {
            continue;
        }
        out.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({r}{n})));\n",
            n = f.name,
            r = receiver,
        ));
    }
    out.push_str("::serde::Value::Object(__fields) }");
}

fn serialize_body(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { fields, .. } => match fields {
            Fields::Named(fs) => gen_serialize_named(&mut out, "&self.", fs),
            Fields::Tuple(1) => out.push_str("::serde::Serialize::to_value(&self.0)"),
            Fields::Tuple(n) => {
                out.push_str("::serde::Value::Array(::std::vec![");
                for i in 0..*n {
                    out.push_str(&format!("::serde::Serialize::to_value(&self.{i}),"));
                }
                out.push_str("])");
            }
            Fields::Unit => out.push_str("::serde::Value::Null"),
        },
        Item::Enum { name, variants } => {
            out.push_str("match self {\n");
            for v in variants {
                match &v.fields {
                    Fields::Unit => out.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),\n",
                        v = v.name
                    )),
                    Fields::Tuple(1) => out.push_str(&format!(
                        "{name}::{v}(__f0) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(__f0))]),\n",
                        v = v.name
                    )),
                    Fields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        out.push_str(&format!(
                            "{name}::{v}({b}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Array(::std::vec![{items}]))]),\n",
                            v = v.name,
                            b = binders.join(", "),
                            items = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", "),
                        ));
                    }
                    Fields::Named(fs) => {
                        let binders: Vec<&str> =
                            fs.iter().map(|f| f.name.as_str()).collect();
                        out.push_str(&format!(
                            "{name}::{v} {{ {b} }} => {{ let __inner = ",
                            v = v.name,
                            b = binders.join(", "),
                        ));
                        gen_serialize_named(&mut out, "", fs);
                        out.push_str(&format!(
                            "; ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{v}\"), __inner)]) }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            out.push('}');
        }
    }
    out
}

fn gen_deserialize_named(ty_label: &str, src: &str, fields: &[NamedField]) -> String {
    let mut out = String::new();
    for f in fields {
        if f.attrs.skip {
            out.push_str(&format!(
                "{n}: ::std::default::Default::default(),\n",
                n = f.name
            ));
        } else if f.attrs.default {
            let fallback = match &f.attrs.default_path {
                Some(path) => format!("{path}()"),
                None => "::std::default::Default::default()".to_string(),
            };
            out.push_str(&format!(
                "{n}: match ::serde::obj_field({src}, \"{n}\") {{ \
                    ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                    ::std::option::Option::None => {fallback} }},\n",
                n = f.name
            ));
        } else {
            out.push_str(&format!(
                "{n}: match ::serde::obj_field({src}, \"{n}\") {{ \
                    ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?, \
                    ::std::option::Option::None => return ::std::result::Result::Err(::serde::DeError::missing_field(\"{n}\", \"{ty_label}\")) }},\n",
                n = f.name
            ));
        }
    }
    out
}

fn deserialize_body(item: &Item) -> String {
    let mut out = String::new();
    match item {
        Item::Struct { name, fields } => match fields {
            Fields::Named(fs) => {
                out.push_str(&format!(
                    "if __v.as_object().is_none() {{ return ::std::result::Result::Err(::serde::DeError::expected(\"object\", \"{name}\", __v)); }}\n"
                ));
                out.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
                out.push_str(&gen_deserialize_named(name, "__v", fs));
                out.push_str("})");
            }
            Fields::Tuple(1) => out.push_str(&format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
            )),
            Fields::Tuple(n) => {
                out.push_str(&format!(
                    "match __v.as_array() {{ ::std::option::Option::Some(__items) if __items.len() == {n} => ::std::result::Result::Ok({name}("
                ));
                for i in 0..*n {
                    out.push_str(&format!(
                        "::serde::Deserialize::from_value(&__items[{i}])?,"
                    ));
                }
                out.push_str(&format!(
                    ")), _ => ::std::result::Result::Err(::serde::DeError::expected(\"array of {n}\", \"{name}\", __v)) }}"
                ));
            }
            Fields::Unit => out.push_str(&format!("::std::result::Result::Ok({name})")),
        },
        Item::Enum { name, variants } => {
            // Unit variants arrive as strings; data variants as
            // single-key objects (serde's externally-tagged default).
            out.push_str("match __v {\n::serde::Value::Str(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    out.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n",
                        v = v.name
                    ));
                }
            }
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n}},\n"
            ));
            out.push_str(
                "::serde::Value::Object(__fields) if __fields.len() == 1 => {\nlet (__tag, __inner) = &__fields[0];\nmatch __tag.as_str() {\n",
            );
            for v in variants {
                let label = format!("{name}::{}", v.name);
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => out.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),\n",
                        v = v.name
                    )),
                    Fields::Tuple(n) => {
                        out.push_str(&format!(
                            "\"{v}\" => match __inner.as_array() {{ ::std::option::Option::Some(__items) if __items.len() == {n} => ::std::result::Result::Ok({name}::{v}(",
                            v = v.name
                        ));
                        for i in 0..*n {
                            out.push_str(&format!(
                                "::serde::Deserialize::from_value(&__items[{i}])?,"
                            ));
                        }
                        out.push_str(&format!(
                            ")), _ => ::std::result::Result::Err(::serde::DeError::expected(\"array of {n}\", \"{label}\", __inner)) }},\n"
                        ));
                    }
                    Fields::Named(fs) => {
                        out.push_str(&format!(
                            "\"{v}\" => {{ if __inner.as_object().is_none() {{ return ::std::result::Result::Err(::serde::DeError::expected(\"object\", \"{label}\", __inner)); }}\n::std::result::Result::Ok({name}::{v} {{\n",
                            v = v.name
                        ));
                        out.push_str(&gen_deserialize_named(&label, "__inner", fs));
                        out.push_str("}) },\n");
                    }
                }
            }
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::DeError::unknown_variant(__other, \"{name}\")),\n}}\n}},\n"
            ));
            out.push_str(&format!(
                "__other => ::std::result::Result::Err(::serde::DeError::expected(\"string or single-key object\", \"{name}\", __other)),\n}}"
            ));
        }
    }
    out
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } => name,
        Item::Enum { name, .. } => name,
    }
}

/// Derives `serde::Serialize` (value-tree form) for the annotated item.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        name = item_name(&item),
        body = serialize_body(&item),
    );
    src.parse().expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree form) for the annotated item.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n",
        name = item_name(&item),
        body = deserialize_body(&item),
    );
    src.parse().expect("generated Deserialize impl parses")
}
