//! Offline stand-in for the [proptest](https://docs.rs/proptest)
//! property-testing API surface this workspace uses: the `proptest!`,
//! `prop_oneof!`, and `prop_assert*!` macros, [`strategy::Strategy`]
//! with `prop_map`, range / tuple / collection strategies,
//! `prop::bool::ANY`, [`test_runner::ProptestConfig`], and
//! [`test_runner::TestCaseError`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its case index and
//!   message; inputs are deterministic per (test name, case index), so
//!   a failure reproduces by rerunning the test.
//! - **Deterministic seeding.** Cases derive from an FNV hash of the
//!   test's module path and name, so runs are stable across machines —
//!   better suited to a CI gate than OS entropy.

#![forbid(unsafe_code)]

/// Deterministic pseudo-randomness and test-case plumbing.
pub mod test_runner {
    use std::fmt;

    /// Per-test configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed (or rejected) test case, carrying its message.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A hard failure with the given reason.
        pub fn fail<M: fmt::Display>(message: M) -> Self {
            TestCaseError {
                message: message.to_string(),
            }
        }

        /// A rejected case (kept for API parity; treated as failure).
        pub fn reject<M: fmt::Display>(message: M) -> Self {
            Self::fail(message)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// SplitMix64 generator seeded from the test identity and case
    /// index, so every case is reproducible without a seed file.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the generator for one (test, case) pair.
        pub fn deterministic(test_name: &str, case: u64) -> Self {
            let mut h: u64 = 0xCBF29CE484222325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001B3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9E3779B97F4A7C15),
            }
        }

        /// The next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of `Self::Value` for property tests.
    ///
    /// Object-safe so heterogeneous alternatives can be boxed by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_uint_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }

    impl_uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Boxes a strategy behind `dyn Strategy` (used by `prop_oneof!`).
    pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(strategy)
    }

    /// Weighted choice among boxed alternative strategies.
    pub struct OneOf<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> OneOf<T> {
        /// Builds the choice; weights must sum to a nonzero value.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            OneOf { arms, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut r = rng.below(self.total);
            for (weight, strategy) in &self.arms {
                if r < *weight as u64 {
                    return strategy.generate(rng);
                }
                r -= *weight as u64;
            }
            unreachable!("weighted pick within total")
        }
    }
}

/// Collection strategies (`vec`, `hash_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` targeting a size in `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Hash sets of values from `element`, with size in `size`.
    ///
    /// Sampling retries on duplicates (bounded), so the final set can
    /// fall short of the drawn target when the element domain is
    /// smaller than requested — the same caveat real proptest carries.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut set = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while set.len() < target && attempts < target.saturating_mul(20) + 16 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding `true`/`false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Namespace mirror so `prop::bool::ANY` etc. work from the prelude.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
}

/// The glob-import surface: traits, config, error type, `prop`
/// namespace, and the macros.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Fails the current property (early `return Err`) when `cond` is
/// false; extra arguments format the failure message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property when `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!("assertion failed: `{:?} == {:?}`", __l, __r),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{:?} == {:?}`: {}",
                            __l,
                            __r,
                            format!($($fmt)+),
                        ),
                    ));
                }
            }
        }
    };
}

/// Chooses among alternative strategies, optionally weighted
/// (`weight => strategy`). All arms must yield the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strategy),+]
    };
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ..)`
/// expands to a normal `#[test]` looping over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(#[test] fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let __config = $config;
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body;
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("proptest case {} failed: {}", __case, e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u32..10, 2..9)) {
            prop_assert!((2..9).contains(&v.len()), "len {}", v.len());
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_mapped_variants_all_appear(
            picks in prop::collection::vec(
                prop_oneof![
                    2 => (0u64..4).prop_map(|x| x as i64),
                    1 => (10u64..14).prop_map(|x| x as i64),
                ],
                64..65,
            )
        ) {
            prop_assert!(picks.iter().all(|&p| (0..4).contains(&p) || (10..14).contains(&p)));
        }

        #[test]
        fn bools_and_sets_generate(
            flags in prop::collection::vec(prop::bool::ANY, 8..32),
            set in prop::collection::hash_set(0u64..1000, 1..30)
        ) {
            prop_assert!(!flags.is_empty());
            prop_assert!(!set.is_empty());
            prop_assert_eq!(set.len(), set.len());
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
