//! Std-only stand-in for the `rustc-hash`/`fxhash` crates: the FxHash
//! multiply-and-rotate hash used throughout rustc, exposed through the
//! familiar [`FxHashMap`]/[`FxHashSet`] aliases.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed and
//! HashDoS-resistant, but costs tens of nanoseconds per lookup even for
//! integer keys. The heap-graph's hot path hashes `ObjectId`s (opaque
//! `u64`s handed out by the simulator, not attacker-controlled), where
//! FxHash's two-instruction mix is 5–10× cheaper and collision quality
//! is more than adequate. Nothing in this workspace hashes untrusted
//! input through these maps.
//!
//! # Example
//!
//! ```
//! use fxhash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(7, "seven");
//! assert_eq!(m.get(&7), Some(&"seven"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (the golden-ratio constant rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash streaming hasher: for each machine word, rotate-left,
/// xor, and multiply by a golden-ratio constant. Not cryptographic and
/// not DoS-resistant — use only for internal, trusted keys.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (stateless, so `Default` everywhere).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_eq!(hash_of("hello"), hash_of("hello"));
    }

    #[test]
    fn distinct_inputs_differ() {
        assert_ne!(hash_of(1u64), hash_of(2u64));
        assert_ne!(hash_of((1u64, 8u64)), hash_of((1u64, 16u64)));
    }

    #[test]
    fn sequential_u64_keys_spread_across_buckets() {
        // The graph's dominant key shape: small sequential ids. The low
        // bits (what HashMap uses for bucketing) must not collapse.
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1024u64 {
            low_bits.insert(hash_of(i) & 0x3ff);
        }
        assert!(low_bits.len() > 512, "only {} distinct", low_bits.len());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m[&21], 42);
        let s: FxHashSet<u64> = (0..50).collect();
        assert!(s.contains(&49));
    }

    #[test]
    fn unaligned_byte_tails_hash() {
        assert_ne!(hash_of("abcdefghi"), hash_of("abcdefgh"));
        assert_ne!(hash_of([1u8, 2, 3]), hash_of([1u8, 2, 4]));
    }
}
