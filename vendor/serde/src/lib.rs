//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build environment for this workspace resolves **path
//! dependencies only**, so the real serde cannot be fetched. This crate
//! supplies the subset the workspace uses, with the same surface
//! syntax: `use serde::{Deserialize, Serialize}` imports both the
//! traits and the derive macros, `#[serde(default)]` and
//! `#[serde(skip)]` are honored, and the JSON representation produced
//! through the companion `serde_json` stand-in follows the real
//! library's externally-tagged conventions (unit variants as strings,
//! struct variants as single-key objects, newtype structs as their
//! contents, …) so persisted models remain readable if the real crates
//! are ever restored.
//!
//! Internally the design is deliberately simpler than real serde:
//! instead of the serializer/visitor double dispatch, everything funnels
//! through an owned [`Value`] tree.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned (de)serialization tree — the meeting point between
/// [`Serialize`], [`Deserialize`], and the `serde_json` stand-in.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer (wide enough for `u64` and `i64` exactly).
    Int(i128),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered key-value map (insertion order preserved so output is
    /// deterministic).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field lookup for object values.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object's fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array's items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `u64`, if this is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if this is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => i64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen), if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// `value["field"]` lookup, panicking on missing keys or non-objects
/// (mirrors `serde_json::Value` indexing semantics closely enough for
/// tests; real serde_json returns `Null` instead of panicking).
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` lookup into arrays; out-of-range yields `Null`.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// A deserialization failure: what was expected, what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A free-form error.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// "expected X while deserializing Y, found Z".
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        DeError {
            msg: format!("expected {what} for {ty}, found {}", found.kind()),
        }
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError {
            msg: format!("missing field `{field}` for {ty}"),
        }
    }

    /// An enum tag matched no variant.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        DeError {
            msg: format!("unknown variant `{tag}` for {ty}"),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::custom(format!(
                            "integer {i} out of range for {}", stringify!($t)))),
                    // Whole-valued floats (e.g. written by another tool).
                    Value::Float(f) if f.fract() == 0.0 && f.is_finite() => {
                        <$t>::try_from(*f as i128).map_err(|_| DeError::custom(format!(
                            "float {f} out of range for {}", stringify!($t))))
                    }
                    other => Err(DeError::expected("integer", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    // Real serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected("number", stringify!($t), other)),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", "bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", "String", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", "char", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", "Vec", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_value).collect();
                parsed?
                    .try_into()
                    .map_err(|_| DeError::custom("array length changed during parse"))
            }
            Value::Array(items) => Err(DeError::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            ))),
            other => Err(DeError::expected("array", "fixed-size array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", "tuple", other)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys: JSON objects key on strings, so map keys round-trip
/// through their string form (matching real `serde_json`).
pub trait JsonKey: Sized {
    /// Renders the key for use in a JSON object.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the string does not parse.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_string())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| {
                    DeError::custom(format!("invalid {} map key: {s:?}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_json_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Serialize-only keys for newtype ids over strings (e.g. fault ids):
/// any key whose [`Value`] form is a string or integer works.
fn key_from_value(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        Value::Int(i) => Some(i.to_string()),
        _ => None,
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_from_value(&k.to_value())
                    .expect("map keys must serialize to strings or integers");
                (key, v.to_value())
            })
            .collect();
        // HashMap iteration order is unstable; sort for deterministic output.
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: JsonKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", "HashMap", other)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| {
                    let key = key_from_value(&k.to_value())
                        .expect("map keys must serialize to strings or integers");
                    (key, v.to_value())
                })
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", "BTreeMap", other)),
        }
    }
}

impl<T: Serialize + std::hash::Hash + Eq, S> Serialize for std::collections::HashSet<T, S> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::hash::Hash + Eq> Deserialize for std::collections::HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", "HashSet", other)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Helpers the derive macro leans on
// ---------------------------------------------------------------------

/// Derive support: field lookup that distinguishes "absent" from
/// "present but null".
pub fn obj_field<'v>(v: &'v Value, name: &str) -> Option<&'v Value> {
    v.get(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(3u64).to_value(), Value::Int(3));
    }

    #[test]
    fn int_range_checked() {
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert_eq!(u8::from_value(&Value::Int(255)).unwrap(), 255);
    }

    #[test]
    fn float_accepts_int_and_null() {
        assert_eq!(f64::from_value(&Value::Int(2)).unwrap(), 2.0);
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn map_keys_round_trip_via_strings() {
        let mut m = BTreeMap::new();
        m.insert(7u64, vec![1u64, 2]);
        let v = m.to_value();
        assert_eq!(
            v.get("7").unwrap(),
            &Value::Array(vec![Value::Int(1), Value::Int(2)])
        );
        let back: BTreeMap<u64, Vec<u64>> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn fixed_arrays_check_length() {
        let a = [1.0f64, 2.0];
        let v = a.to_value();
        let back: [f64; 2] = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, a);
        assert!(<[f64; 3]>::from_value(&v).is_err());
    }
}
