//! Splits the graph_update bench cost between the simulated heap and
//! the heap-graph, so optimization effort goes where the time is —
//! plus a codec section showing what block-decode buffer reuse saves
//! on the replay hot path, and a shard-scaling section that reports
//! where the sharded replay driver's worker threads spend their time
//! (per-shard busy-ns from the obs stage counters).
//!
//! Run: `cargo run --release -p heapmd-bench --example profile_hotpath`

use heap_graph::HeapGraph;
use heapmd::{BinaryTraceImage, Process, Settings};
use sim_heap::{Addr, AllocSite, SimHeap};
use std::time::Instant;

const N: usize = 10_000;
const REPS: usize = 50;

/// Like [`time`] but reports per-event cost and throughput for a
/// routine that processes `events` events per call.
fn time_events(label: &str, events: u64, f: &mut dyn FnMut()) {
    f();
    let mut best = u128::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    println!(
        "{label:<28} {:>10.1} µs  ({:>6.1} ns/event, {:.1}M events/s)",
        best as f64 / 1e3,
        best as f64 / events as f64,
        events as f64 * 1e3 / best as f64
    );
}

fn time(label: &str, mut f: impl FnMut()) {
    // Warm up once, then report the best of REPS (least-noise floor).
    f();
    let mut best = u128::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    println!(
        "{label:<28} {:>10.1} µs  ({:>6.1} ns/node)",
        best as f64 / 1e3,
        best as f64 / N as f64
    );
}

fn main() {
    time("heap only: chain", || {
        let mut heap = SimHeap::new();
        let mut addrs: Vec<Addr> = Vec::with_capacity(N);
        for _ in 0..N {
            addrs.push(heap.alloc(32, AllocSite(0)).unwrap().addr);
        }
        for w in addrs.windows(2) {
            heap.write_ptr(w[0].offset(8), w[1]).unwrap();
        }
    });

    time("heap+graph: chain", || {
        let mut heap = SimHeap::new();
        let mut graph = HeapGraph::new();
        let mut addrs: Vec<Addr> = Vec::with_capacity(N);
        for _ in 0..N {
            let eff = heap.alloc(32, AllocSite(0)).unwrap();
            graph.on_alloc(eff.id, eff.addr, eff.size);
            addrs.push(eff.addr);
        }
        for w in addrs.windows(2) {
            let eff = heap.write_ptr(w[0].offset(8), w[1]).unwrap();
            graph.on_ptr_write(eff.src, eff.offset, w[1]);
        }
    });

    let (mut heap, mut graph) = {
        let mut heap = SimHeap::new();
        let mut graph = HeapGraph::new();
        let mut addrs: Vec<Addr> = Vec::with_capacity(N);
        for _ in 0..N {
            let eff = heap.alloc(32, AllocSite(0)).unwrap();
            graph.on_alloc(eff.id, eff.addr, eff.size);
            addrs.push(eff.addr);
        }
        for w in addrs.windows(2) {
            let eff = heap.write_ptr(w[0].offset(8), w[1]).unwrap();
            graph.on_ptr_write(eff.src, eff.offset, w[1]);
        }
        (heap, graph)
    };

    time("heap only: alloc/free", || {
        for _ in 0..N {
            let eff = heap.alloc(32, AllocSite(1)).unwrap();
            heap.free(eff.addr).unwrap();
        }
    });

    time("heap+graph: alloc/free", || {
        for _ in 0..N {
            let eff = heap.alloc(32, AllocSite(1)).unwrap();
            graph.on_alloc(eff.id, eff.addr, eff.size);
            let freed = heap.free(eff.addr).unwrap();
            graph.on_free(freed.id);
        }
    });

    // Codec hot path: decoding the same multi-block binary trace with
    // one reused event buffer vs. a fresh allocation per block. The
    // pipelined replay engine recycles buffers through a return
    // channel, so the "reused buffer" line is the shipping behavior.
    let image = {
        let settings = Settings::builder().frq(100).build().unwrap();
        let mut p = Process::new(settings);
        p.enable_trace();
        let mut prev = None;
        for _ in 0..N {
            p.enter("build");
            let a = p.malloc(24, "node").unwrap();
            if let Some(prev) = prev {
                p.write_ptr(a, prev).unwrap();
            }
            prev = Some(a);
            p.leave();
        }
        let trace = p.take_trace().unwrap();
        BinaryTraceImage::open(trace.encode_binary()).unwrap()
    };

    time("codec: fresh buffer/block", || {
        for entry in image.event_blocks() {
            let mut events = Vec::new();
            image.decode_block_into(entry, &mut events).unwrap();
            std::hint::black_box(&events);
        }
    });

    let mut events = Vec::new();
    time("codec: reused buffer", || {
        for entry in image.event_blocks() {
            image.decode_block_into(entry, &mut events).unwrap();
            std::hint::black_box(&events);
        }
    });

    // Sharded replay: wall-clock per engine, then a per-shard busy-ns
    // breakdown from the obs stage counters the driver records
    // (`shard_worker_{w}_busy_ns_total`). On a single core the workers
    // serialize, so busy-ns ≈ the degree-counting work each shard
    // owns — the breakdown shows load balance, not parallel speedup.
    let settings = Settings::builder().frq(100).build().unwrap();
    let replay_events = image.index().total_events;
    println!("\nreplay engines ({replay_events} events):");
    time_events("replay: pipelined", replay_events, &mut || {
        heapmd::replay_binary(&image, &settings, "prof").unwrap();
    });
    time_events("replay: fused", replay_events, &mut || {
        heapmd::replay_binary_fused(&image, &settings, "prof").unwrap();
    });
    for shards in [2usize, 4, 8] {
        time_events(
            &format!("replay: {shards} shards"),
            replay_events,
            &mut || {
                heapmd::replay_binary_sharded(&image, &settings, "prof", shards).unwrap();
            },
        );
    }

    // One instrumented run per shard count: counter deltas isolate
    // this run's contribution from anything recorded earlier.
    heapmd_obs::set_enabled(true);
    for shards in [2usize, 4, 8] {
        let reg = heapmd_obs::registry();
        let before: Vec<(u64, u64)> = (0..shards)
            .map(|w| {
                (
                    reg.counter(&format!("shard_worker_{w}_busy_ns_total"))
                        .get(),
                    reg.counter(&format!("shard_worker_{w}_events_total")).get(),
                )
            })
            .collect();
        heapmd::replay_binary_sharded(&image, &settings, "prof", shards).unwrap();
        println!("shard busy-ns breakdown ({shards} shards):");
        for (w, (busy0, ev0)) in before.into_iter().enumerate() {
            let busy = reg
                .counter(&format!("shard_worker_{w}_busy_ns_total"))
                .get()
                .saturating_sub(busy0);
            let ev = reg
                .counter(&format!("shard_worker_{w}_events_total"))
                .get()
                .saturating_sub(ev0);
            println!(
                "  shard {w}: {:>10.1} µs busy, {ev:>7} degree ops ({:>5.1} ns/op)",
                busy as f64 / 1e3,
                if ev == 0 {
                    0.0
                } else {
                    busy as f64 / ev as f64
                }
            );
        }
    }
    heapmd_obs::set_enabled(false);
}
