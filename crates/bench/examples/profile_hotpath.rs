//! Splits the graph_update bench cost between the simulated heap and
//! the heap-graph, so optimization effort goes where the time is.
//!
//! Run: `cargo run --release -p heapmd-bench --example profile_hotpath`

use heap_graph::HeapGraph;
use sim_heap::{Addr, AllocSite, SimHeap};
use std::time::Instant;

const N: usize = 10_000;
const REPS: usize = 50;

fn time(label: &str, mut f: impl FnMut()) {
    // Warm up once, then report the best of REPS (least-noise floor).
    f();
    let mut best = u128::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos());
    }
    println!(
        "{label:<28} {:>10.1} µs  ({:>6.1} ns/node)",
        best as f64 / 1e3,
        best as f64 / N as f64
    );
}

fn main() {
    time("heap only: chain", || {
        let mut heap = SimHeap::new();
        let mut addrs: Vec<Addr> = Vec::with_capacity(N);
        for _ in 0..N {
            addrs.push(heap.alloc(32, AllocSite(0)).unwrap().addr);
        }
        for w in addrs.windows(2) {
            heap.write_ptr(w[0].offset(8), w[1]).unwrap();
        }
    });

    time("heap+graph: chain", || {
        let mut heap = SimHeap::new();
        let mut graph = HeapGraph::new();
        let mut addrs: Vec<Addr> = Vec::with_capacity(N);
        for _ in 0..N {
            let eff = heap.alloc(32, AllocSite(0)).unwrap();
            graph.on_alloc(eff.id, eff.addr, eff.size);
            addrs.push(eff.addr);
        }
        for w in addrs.windows(2) {
            let eff = heap.write_ptr(w[0].offset(8), w[1]).unwrap();
            graph.on_ptr_write(eff.src, eff.offset, w[1]);
        }
    });

    let (mut heap, mut graph) = {
        let mut heap = SimHeap::new();
        let mut graph = HeapGraph::new();
        let mut addrs: Vec<Addr> = Vec::with_capacity(N);
        for _ in 0..N {
            let eff = heap.alloc(32, AllocSite(0)).unwrap();
            graph.on_alloc(eff.id, eff.addr, eff.size);
            addrs.push(eff.addr);
        }
        for w in addrs.windows(2) {
            let eff = heap.write_ptr(w[0].offset(8), w[1]).unwrap();
            graph.on_ptr_write(eff.src, eff.offset, w[1]);
        }
        (heap, graph)
    };

    time("heap only: alloc/free", || {
        for _ in 0..N {
            let eff = heap.alloc(32, AllocSite(1)).unwrap();
            heap.free(eff.addr).unwrap();
        }
    });

    time("heap+graph: alloc/free", || {
        for _ in 0..N {
            let eff = heap.alloc(32, AllocSite(1)).unwrap();
            graph.on_alloc(eff.id, eff.addr, eff.size);
            let freed = heap.free(eff.addr).unwrap();
            graph.on_free(freed.id);
        }
    });
}
