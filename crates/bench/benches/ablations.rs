//! Ablations called out in DESIGN.md: sampling frequency (`frq`) vs
//! logging cost, and address reuse on/off (reuse is what makes
//! dangling-pointer bugs visible — and costs free-list work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heap_graph::{FieldGraph, HeapGraph};
use heapmd::{Process, Settings};
use sim_heap::{AllocSite, AllocatorConfig, HeapConfig, SimHeap};

fn churn_process(settings: &Settings) {
    let mut p = Process::new(settings.clone());
    let mut prev = None;
    for _ in 0..2_000 {
        p.enter("work");
        let a = p.malloc(24, "node").unwrap();
        if let Some(prev) = prev {
            p.write_ptr(a.offset(8), prev).unwrap();
        }
        prev = Some(a);
        p.leave();
    }
}

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    // frq sweep: how much does sampling cost at each frequency?
    for &frq in &[10u64, 100, 1_000] {
        let settings = Settings::builder().frq(frq).build().unwrap();
        group.bench_with_input(BenchmarkId::new("frq", frq), &settings, |b, s| {
            b.iter(|| churn_process(s));
        });
    }
    // Address reuse on/off at the allocator level.
    for &reuse in &[true, false] {
        group.bench_with_input(
            BenchmarkId::new("address_reuse", reuse),
            &reuse,
            |b, &reuse| {
                b.iter(|| {
                    let mut heap = SimHeap::with_config(HeapConfig {
                        allocator: AllocatorConfig {
                            reuse_addresses: reuse,
                            ..AllocatorConfig::default()
                        },
                        capacity: None,
                    });
                    for _ in 0..2_000 {
                        let a = heap.alloc(32, sim_heap::AllocSite(0)).unwrap().addr;
                        heap.free(a).unwrap();
                    }
                })
            },
        );
    }
    // Object vs field granularity (paper Figure 3): the rejected
    // field-level graph pays one vertex per 8-byte slot.
    group.bench_function("granularity_object", |b| {
        b.iter(|| {
            let mut heap = SimHeap::new();
            let mut g = HeapGraph::new();
            let mut prev: Option<sim_heap::Addr> = None;
            for _ in 0..1_000 {
                let eff = heap.alloc(32, AllocSite(0)).unwrap();
                g.on_alloc(eff.id, eff.addr, eff.size);
                if let Some(prev) = prev {
                    let w = heap.write_ptr(eff.addr.offset(8), prev).unwrap();
                    g.on_ptr_write(w.src, w.offset, prev);
                }
                prev = Some(eff.addr);
            }
            g.metrics()
        })
    });
    group.bench_function("granularity_field", |b| {
        b.iter(|| {
            let mut heap = SimHeap::new();
            let mut g = FieldGraph::new();
            let mut prev: Option<sim_heap::Addr> = None;
            for _ in 0..1_000 {
                let eff = heap.alloc(32, AllocSite(0)).unwrap();
                g.on_alloc(eff.id, eff.addr, eff.size);
                if let Some(prev) = prev {
                    let w = heap.write_ptr(eff.addr.offset(8), prev).unwrap();
                    g.on_ptr_write(w.src, w.offset, prev);
                }
                prev = Some(eff.addr);
            }
            g.metrics()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
