//! Heap-graph maintenance throughput: the per-event cost of the
//! execution logger's image updates (paper §2.1 — the design must keep
//! per-store work tiny for the 2–3× online slowdown to hold).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use heap_graph::HeapGraph;
use sim_heap::{Addr, AllocSite, HeapEvent, SimHeap};

/// Records the event stream of building an `n`-node chain and then
/// freeing every node — the shape a trace replay feeds `apply_batch`.
fn recorded_stream(n: usize) -> Vec<HeapEvent> {
    let mut heap = SimHeap::new();
    let mut addrs: Vec<Addr> = Vec::with_capacity(n);
    let mut events = Vec::with_capacity(3 * n);
    for _ in 0..n {
        let eff = heap.alloc(32, AllocSite(0)).unwrap();
        events.push(HeapEvent::Alloc {
            obj: eff.id,
            addr: eff.addr,
            size: eff.size,
            site: AllocSite(0),
        });
        addrs.push(eff.addr);
    }
    for w in addrs.windows(2) {
        let eff = heap.write_ptr(w[0].offset(8), w[1]).unwrap();
        events.push(HeapEvent::PtrWrite {
            src: eff.src,
            offset: eff.offset,
            value: w[1],
            old_value: eff.old_value,
        });
    }
    for addr in addrs {
        let eff = heap.free(addr).unwrap();
        events.push(HeapEvent::Free {
            obj: eff.id,
            addr: eff.addr,
            size: eff.size,
        });
    }
    events
}

/// Builds a linked structure of `n` nodes, then churns it.
fn churn(n: usize) -> (SimHeap, HeapGraph) {
    let mut heap = SimHeap::new();
    let mut graph = HeapGraph::new();
    let mut addrs: Vec<Addr> = Vec::with_capacity(n);
    for _ in 0..n {
        let eff = heap.alloc(32, AllocSite(0)).unwrap();
        graph.on_alloc(eff.id, eff.addr, eff.size);
        addrs.push(eff.addr);
    }
    for w in addrs.windows(2) {
        let eff = heap.write_ptr(w[0].offset(8), w[1]).unwrap();
        graph.on_ptr_write(eff.src, eff.offset, w[1]);
    }
    (heap, graph)
}

fn bench_graph_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_update");
    for &n in &[1_000usize, 10_000] {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("build_chain", n), &n, |b, &n| {
            b.iter(|| churn(n));
        });
        group.bench_with_input(BenchmarkId::new("alloc_free_cycle", n), &n, |b, &n| {
            let (mut heap, mut graph) = churn(n);
            b.iter(|| {
                // Free + realloc one node per element: exercises edge
                // drop, dangling tracking, and re-binding.
                for _ in 0..n {
                    let eff = heap.alloc(32, AllocSite(1)).unwrap();
                    graph.on_alloc(eff.id, eff.addr, eff.size);
                    let freed = heap.free(eff.addr).unwrap();
                    graph.on_free(freed.id);
                }
            });
        });

        // Replay of a recorded stream through the batch entry point
        // (the offline checker's hot loop). Throughput counts actual
        // events, not nodes: ~3n (alloc + link + free).
        let events = recorded_stream(n);
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("apply_batch_replay", n),
            &events,
            |b, events| {
                b.iter(|| {
                    let mut graph = HeapGraph::new();
                    graph.apply_batch(events);
                    graph
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graph_update);
criterion_main!(benches);
