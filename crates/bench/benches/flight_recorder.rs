//! Overhead of the anomaly flight recorder (PR 4). The recorder
//! captures every metric plus alloc/free/store rates at each
//! computation point into bounded downsampled series; the acceptance
//! bar is that `recorder_on` stays within 5% of `recorder_off` on
//! events/s — the capture cost is per computation point (one every
//! `frq` function entries), not per heap event.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use heapmd::{Process, Settings};
use sim_heap::{Addr, NULL};

const OPS: usize = 4_000;
const RECORDER_POINTS: usize = 512;

/// The same list-churn mutator loop as `instrumentation_overhead`, so
/// the two groups are directly comparable.
fn instrumented_loop(p: &mut Process) {
    let mut head = NULL;
    let mut live: Vec<Addr> = Vec::new();
    for i in 0..OPS {
        p.enter("loop_body");
        let a = p.malloc(24, "node").unwrap();
        if !head.is_null() {
            p.write_ptr(a.offset(8), head).unwrap();
        }
        head = a;
        live.push(a);
        if i % 4 == 3 {
            let victim = live.swap_remove(i % live.len());
            if victim != head {
                p.free(victim).unwrap();
            }
        }
        p.leave();
    }
}

fn bench_flight_recorder(c: &mut Criterion) {
    let settings = Settings::builder().frq(100).build().unwrap();
    let mut group = c.benchmark_group("flight_recorder");
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("recorder_off", |b| {
        b.iter(|| {
            let mut p = Process::new(settings.clone());
            instrumented_loop(&mut p);
        })
    });
    group.bench_function("recorder_on", |b| {
        b.iter(|| {
            let mut p = Process::new(settings.clone());
            p.enable_flight_recorder(RECORDER_POINTS);
            instrumented_loop(&mut p);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_flight_recorder);
criterion_main!(benches);
