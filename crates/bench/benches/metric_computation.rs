//! Metric computation point cost: the incremental histogram makes the
//! seven paper metrics O(1) per sample — the ablation compares against
//! the naive full recount a non-incremental design would pay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use heap_graph::{DegreeHistogram, HeapGraph};
use sim_heap::{Addr, AllocSite, SimHeap};

fn build(n: usize) -> HeapGraph {
    let mut heap = SimHeap::new();
    let mut graph = HeapGraph::new();
    let mut addrs: Vec<Addr> = Vec::with_capacity(n);
    for i in 0..n {
        let eff = heap.alloc(32, AllocSite(0)).unwrap();
        graph.on_alloc(eff.id, eff.addr, eff.size);
        addrs.push(eff.addr);
        if i > 0 {
            let eff = heap.write_ptr(addrs[i - 1].offset(8), addrs[i]).unwrap();
            graph.on_ptr_write(eff.src, eff.offset, addrs[i]);
        }
    }
    graph
}

/// The naive alternative: recount every vertex degree from the edge set.
fn full_recount(graph: &HeapGraph) -> heap_graph::MetricVector {
    use std::collections::HashMap;
    let mut indeg: HashMap<sim_heap::ObjectId, u32> = HashMap::new();
    let mut outdeg: HashMap<sim_heap::ObjectId, u32> = HashMap::new();
    for (src, _, dst) in graph.edges() {
        *outdeg.entry(src).or_default() += 1;
        *indeg.entry(dst).or_default() += 1;
    }
    let mut h = DegreeHistogram::new();
    for id in graph.node_ids() {
        h.add_node();
        h.change_degrees(
            0,
            indeg.get(&id).copied().unwrap_or(0),
            0,
            outdeg.get(&id).copied().unwrap_or(0),
        );
    }
    heap_graph::MetricVector::from_histogram(&h)
}

fn bench_metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("metric_computation");
    for &n in &[1_000usize, 20_000] {
        let graph = build(n);
        group.bench_with_input(BenchmarkId::new("incremental_o1", n), &graph, |b, g| {
            b.iter(|| g.metrics());
        });
        group.bench_with_input(BenchmarkId::new("full_recount", n), &graph, |b, g| {
            b.iter(|| full_recount(g));
        });
        group.bench_with_input(
            BenchmarkId::new("components_union_find", n),
            &graph,
            |b, g| {
                b.iter(|| g.components());
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
