//! Analysis-side costs: summarizing runs into a model, and checking a
//! finished report against it (the offline, post-mortem mode).

use criterion::{criterion_group, criterion_main, Criterion};
use faults::FaultPlan;
use heapmd::{AnomalyDetector, ModelBuilder};
use workloads::harness::{run_once, settings_for, train};
use workloads::{spec::Gzip, Input};

fn bench_model_and_detector(c: &mut Criterion) {
    let w = Gzip;
    let settings = settings_for(&w);
    let reports: Vec<_> = Input::set(6)
        .iter()
        .map(|i| run_once(&w, i, &mut FaultPlan::new(), &settings))
        .collect();
    let model = train(&w, &Input::set(4)).model;

    let mut group = c.benchmark_group("model_and_detector");
    group.bench_function("model_build_6_runs", |b| {
        b.iter(|| {
            let mut builder = ModelBuilder::new(settings.clone());
            for r in &reports {
                builder.add_run(r);
            }
            builder.build()
        })
    });
    group.bench_function("check_report_offline", |b| {
        b.iter(|| AnomalyDetector::check_report(&model, &settings, &reports[5]))
    });
    group.finish();
}

criterion_group!(benches, bench_model_and_detector);
criterion_main!(benches);
