//! Production-overhead mode (PR 10): monitoring cost with the SWAT
//! adaptive store sampler in the hot path.
//!
//! The headline claim is that at the default sampling config
//! (`hot_threshold = 512`, `decimation = 32`) the monitored replay
//! engine stays within 10% of *unmonitored replay* — decoding the
//! same recorded stream and re-executing every event against a bare
//! simulated heap, i.e. what running the program without any
//! monitoring costs the replay plane — where exact (unsampled)
//! monitoring costs a multiple of it. On this store-heavy trace the
//! sampler drops most hot-site store work entirely, so sampled
//! monitoring typically lands *under* the unmonitored baseline. The
//! live path is measured the same way: a sampling-enabled [`Process`]
//! against a plain one.
//!
//! CI's `sampling-smoke` job greps these names out of the
//! `heapmd-bench-v1` JSON and enforces a relaxed 25% smoke bar (shared
//! runners are noisy; the 10% claim is asserted on quiet hardware in
//! EXPERIMENTS.md §PR 10).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use heapmd::{BinaryTraceImage, Process, SamplerConfig, Settings, Trace};
use sim_heap::{Addr, HeapEvent, SimHeap, NULL};

/// Mutator ops behind the bench trace: pointer-store-heavy list churn
/// (two stores per op) so the sampler has stores to decimate, matching
/// the production workloads' store:alloc ratio more closely than the
/// codec benches' loop.
const OPS: usize = 6_000;

fn churn(p: &mut Process) {
    let mut head = NULL;
    let mut live: Vec<Addr> = Vec::new();
    for i in 0..OPS {
        p.enter("loop_body");
        let a = p.malloc(48, "node").unwrap();
        if !head.is_null() {
            p.write_ptr(a.offset(8), head).unwrap();
            p.write_ptr(a.offset(16), live[i % live.len()]).unwrap();
        }
        p.write_scalar(a.offset(24)).unwrap();
        head = a;
        live.push(a);
        if i % 4 == 3 {
            let victim = live.swap_remove(i % live.len());
            if victim != head {
                p.free(victim).unwrap();
            }
        }
        p.leave();
    }
}

fn churn_trace(settings: &Settings) -> Trace {
    let mut p = Process::new(settings.clone());
    p.enable_trace();
    churn(&mut p);
    let mut trace = p.take_trace().unwrap();
    trace.set_functions(vec!["loop_body".into()]);
    trace
}

fn bench_sampling_overhead(c: &mut Criterion) {
    let settings = Settings::builder().frq(100).build().unwrap();
    let trace = churn_trace(&settings);
    let events = trace.len() as u64;
    let image = BinaryTraceImage::open(trace.encode_binary()).unwrap();
    let default_config = SamplerConfig::default();

    let mut group = c.benchmark_group("sampling_overhead");
    group.throughput(Throughput::Elements(events));

    // The denominator of the overhead claim: decode every event and
    // re-execute it against a bare simulated heap — the cost of
    // running the recorded program with no monitoring at all. The
    // deterministic allocator reproduces the recorded addresses, so a
    // dense `ObjectId -> Addr` map is all the state it needs.
    group.bench_function("unmonitored_replay", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            let mut heap = SimHeap::new();
            let mut base: Vec<Addr> = Vec::new();
            let mut live_events = 0u64;
            for entry in image.event_blocks() {
                image.decode_block_into(entry, &mut buf).unwrap();
                live_events += buf.len() as u64;
                for ev in buf.iter() {
                    match *ev {
                        HeapEvent::Alloc { obj, size, site, .. } => {
                            let a = heap.alloc(size, site).unwrap().addr;
                            let idx = obj.0 as usize;
                            if base.len() <= idx {
                                base.resize(idx + 1, NULL);
                            }
                            base[idx] = a;
                        }
                        HeapEvent::Free { obj, .. } => {
                            heap.free(base[obj.0 as usize]).unwrap();
                        }
                        HeapEvent::PtrWrite { src, offset, value, .. } => {
                            let _ = heap.write_ptr(base[src.0 as usize].offset(offset), value);
                        }
                        HeapEvent::ScalarWrite { src, offset, .. } => {
                            let _ = heap.write_scalar(base[src.0 as usize].offset(offset));
                        }
                        _ => {}
                    }
                }
            }
            assert_eq!(live_events, events);
            live_events
        })
    });

    // Secondary floor: decode alone, no execution. Bounds how much of
    // the baseline is codec work.
    group.bench_function("decode_floor", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            let mut live_events = 0u64;
            for entry in image.event_blocks() {
                image.decode_block_into(entry, &mut buf).unwrap();
                live_events += buf.len() as u64;
            }
            live_events
        })
    });

    // Exact monitoring: every store feeds the heap graph.
    group.bench_function("monitored_exact", |b| {
        b.iter(|| heapmd::replay_binary_fused(&image, &settings, "bench").unwrap())
    });

    // Production mode: the adaptive sampler gates stores per
    // allocation site; alloc/free stay exact.
    group.bench_function("monitored_sampled_default", |b| {
        b.iter(|| {
            heapmd::replay_binary_fused_sampled(&image, &settings, "bench", default_config).unwrap()
        })
    });
    for decimation in [8u64, 128] {
        group.bench_function(BenchmarkId::new("monitored_sampled_decim", decimation), |b| {
            let config = SamplerConfig::new(default_config.hot_threshold, decimation);
            b.iter(|| {
                heapmd::replay_binary_fused_sampled(&image, &settings, "bench", config).unwrap()
            })
        });
    }

    // The live (online) path, same story: a sampling-enabled process
    // against a plain one.
    group.bench_function("live_exact", |b| {
        b.iter(|| {
            let mut p = Process::new(settings.clone());
            churn(&mut p);
        })
    });
    group.bench_function("live_sampled_default", |b| {
        b.iter(|| {
            let mut p = Process::new(settings.clone());
            p.enable_sampling(default_config);
            churn(&mut p);
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sampling_overhead);
criterion_main!(benches);
