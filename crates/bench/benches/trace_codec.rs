//! Trace codec throughput (PR 5): the block-based binary format vs.
//! the CRC-framed JSONL stream, end to end — encode, decode, replay
//! (binary goes through the pipelined decoder → ingest engine), and
//! the offline multi-trace `check --jobs N` pool.
//!
//! The acceptance bar is ≥5× replay events/s for binary over JSONL and
//! ≥3× end-to-end `check` throughput (see BENCH_PR5.json). Every bench
//! name carries its format (`*_jsonl` / `*_binary`) so before/after
//! phases can be assembled from one run per format.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use heapmd::{
    BinaryTraceImage, BinaryTraceReader, ModelBuilder, Process, Settings, Trace, TraceReader,
};
use sim_heap::{Addr, NULL};
use std::path::PathBuf;

/// Mutator ops behind the bench trace; ~4.3 heap events each, so the
/// trace spans several 4096-event blocks.
const OPS: usize = 6_000;
/// Traces fanned out to the offline check pool.
const POOL_TRACES: usize = 8;

/// The same list-churn mutator loop as `instrumentation_overhead`, so
/// codec numbers are comparable with the rest of the suite.
fn churn_trace() -> Trace {
    let settings = Settings::builder().frq(100).build().unwrap();
    let mut p = Process::new(settings);
    p.enable_trace();
    let mut head = NULL;
    let mut live: Vec<Addr> = Vec::new();
    for i in 0..OPS {
        p.enter("loop_body");
        let a = p.malloc(24, "node").unwrap();
        if !head.is_null() {
            p.write_ptr(a.offset(8), head).unwrap();
        }
        head = a;
        live.push(a);
        if i % 4 == 3 {
            let victim = live.swap_remove(i % live.len());
            if victim != head {
                p.free(victim).unwrap();
            }
        }
        p.leave();
    }
    let mut trace = p.take_trace().unwrap();
    trace.set_functions(vec!["loop_body".into()]);
    trace
}

/// Streams `trace` through the framed-JSONL writer into memory.
fn jsonl_bytes(trace: &Trace) -> Vec<u8> {
    let mut w = heapmd::TraceWriter::new(Vec::new()).unwrap();
    for ev in trace.events() {
        w.write_event(ev).unwrap();
    }
    w.write_functions(trace.functions()).unwrap();
    w.finish().unwrap()
}

/// Writes `n` copies of the trace under `tmp`, returning the paths.
fn pool_files(trace: &Trace, format: heapmd::StreamFormat, n: usize) -> Vec<PathBuf> {
    let dir = std::env::temp_dir().join("heapmd-codec-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let ext = match format {
        heapmd::StreamFormat::Binary => "bin.hmdt",
        heapmd::StreamFormat::Jsonl => "jsonl.hmdt",
    };
    (0..n)
        .map(|i| {
            let path = dir.join(format!("pool-{i}.{ext}"));
            trace.save_format(&path, format).unwrap();
            path
        })
        .collect()
}

fn bench_trace_codec(c: &mut Criterion) {
    let trace = churn_trace();
    let events = trace.len() as u64;
    let jsonl = jsonl_bytes(&trace);
    let binary = trace.encode_binary();
    let settings = Settings::builder().frq(100).build().unwrap();
    let mut builder = ModelBuilder::new(settings.clone());
    builder.add_run(&trace.replay(&settings, "train").unwrap());
    let model = builder.build().model;
    let jsonl_pool = pool_files(&trace, heapmd::StreamFormat::Jsonl, POOL_TRACES);
    let binary_pool = pool_files(&trace, heapmd::StreamFormat::Binary, POOL_TRACES);

    let mut group = c.benchmark_group("trace_codec");
    group.throughput(Throughput::Elements(events));

    group.bench_function("encode_jsonl", |b| b.iter(|| jsonl_bytes(&trace)));
    group.bench_function("encode_binary", |b| b.iter(|| trace.encode_binary()));
    group.bench_function("decode_jsonl", |b| {
        b.iter(|| TraceReader::strict(&jsonl[..]).unwrap())
    });
    group.bench_function("decode_binary", |b| {
        b.iter(|| BinaryTraceReader::strict(&binary[..]).unwrap())
    });

    // End-to-end replay from bytes to a metric report: parse + graph
    // ingest + sampling. The binary path decodes blocks on a pipeline
    // thread while ingestion consumes them.
    group.bench_function("replay_jsonl", |b| {
        b.iter(|| {
            let t = TraceReader::strict(&jsonl[..]).unwrap();
            t.replay(&settings, "bench").unwrap()
        })
    });
    group.bench_function("replay_binary", |b| {
        b.iter(|| {
            let image = BinaryTraceImage::open(binary.clone()).unwrap();
            heapmd::replay_binary(&image, &settings, "bench").unwrap()
        })
    });

    // Offline `check --jobs N` over a pool of trace files, end to end
    // (open + decode + detector replay), merged in input order.
    group.throughput(Throughput::Elements(events * POOL_TRACES as u64));
    for jobs in [1usize, 2, 8] {
        group.bench_function(BenchmarkId::new("check_jsonl_jobs", jobs), |b| {
            b.iter(|| {
                heapmd::check_paths_parallel(&jsonl_pool, &model, &settings, jobs, false)
                    .into_iter()
                    .map(|r| r.unwrap().len())
                    .sum::<usize>()
            })
        });
        group.bench_function(BenchmarkId::new("check_binary_jobs", jobs), |b| {
            b.iter(|| {
                heapmd::check_paths_parallel(&binary_pool, &model, &settings, jobs, false)
                    .into_iter()
                    .map(|r| r.unwrap().len())
                    .sum::<usize>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_codec);
criterion_main!(benches);
