//! Fleet daemon ingest throughput (PR 6): N concurrent tenants
//! streaming binary traces into `heapmd::Server`, measured over the
//! full lifecycle — accept, preamble, wire decode, shard ingest with
//! live gauges, graceful shutdown, and the authoritative per-tenant
//! verdict. Throughput is total events across the fan-out, so the
//! `tenants/N` series shows how the sharded registry scales with
//! concurrent streams (see BENCH_PR6.json).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use heapmd::serve::push_trace;
use heapmd::{ModelBuilder, Process, ServeConfig, Server, Settings, Trace};
use sim_heap::{Addr, NULL};
use std::time::Duration;

/// Mutator ops behind the bench trace; the same list-churn loop as the
/// codec bench so events/s is comparable across the suite.
const OPS: usize = 2_000;

fn churn_trace() -> Trace {
    let settings = Settings::builder().frq(100).build().unwrap();
    let mut p = Process::new(settings);
    p.enable_trace();
    let mut head = NULL;
    let mut live: Vec<Addr> = Vec::new();
    for i in 0..OPS {
        p.enter("loop_body");
        let a = p.malloc(24, "node").unwrap();
        if !head.is_null() {
            p.write_ptr(a.offset(8), head).unwrap();
        }
        head = a;
        live.push(a);
        if i % 4 == 3 {
            let victim = live.swap_remove(i % live.len());
            if victim != head {
                p.free(victim).unwrap();
            }
        }
        p.leave();
    }
    let mut trace = p.take_trace().unwrap();
    trace.set_functions(vec!["loop_body".into()]);
    trace
}

/// One full daemon round: start, stream the trace from `tenants`
/// concurrent connections, wait for every stream to finalize, shut
/// down. Returns the summary so the verdict work cannot be elided.
fn fleet_round(
    trace: &Trace,
    settings: &Settings,
    model: &heapmd::HeapModel,
    tenants: usize,
) -> usize {
    let mut config = ServeConfig::new(model.clone());
    config.shards = 4;
    let server = Server::start(config, "127.0.0.1:0", "127.0.0.1:0").expect("start daemon");
    let ingest = server.ingest_addr().to_string();
    std::thread::scope(|scope| {
        for i in 0..tenants {
            let ingest = ingest.clone();
            scope.spawn(move || {
                push_trace(&ingest, &format!("bench-{i}"), trace).expect("push");
            });
        }
    });
    let fleet = server.fleet();
    loop {
        // `connected == 0` alone is trivially true before the first
        // preamble lands; require full registration first.
        let snap = fleet.snapshot();
        if snap.tenants_total as usize >= tenants && snap.connected == 0 {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    server.shutdown();
    let summary = server.wait();
    let _ = settings;
    summary.tenants.len()
}

fn bench_fleet_ingest(c: &mut Criterion) {
    let trace = churn_trace();
    let events = trace.len() as u64;
    let settings = Settings::builder().frq(100).build().unwrap();
    let mut builder = ModelBuilder::new(settings.clone());
    builder.add_run(&trace.replay(&settings, "train").unwrap());
    let model = builder.build().model;

    let mut group = c.benchmark_group("fleet_ingest");
    for tenants in [1usize, 4, 16] {
        group.throughput(Throughput::Elements(events * tenants as u64));
        group.bench_function(BenchmarkId::new("tenants", tenants), |b| {
            b.iter(|| {
                let n = fleet_round(&trace, &settings, &model, tenants);
                assert_eq!(n, tenants);
                n
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fleet_ingest);
criterion_main!(benches);
