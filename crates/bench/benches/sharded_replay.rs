//! Sharded single-trace ingestion (PR 8): the fused decode→ingest
//! engine, the address-partitioned shard driver at 2/4/8 worker
//! shards, and the mmap zero-copy open path, all against the PR 5
//! pipelined engine (`replay_pipelined`, the `before` phase in
//! BENCH_PR8.json).
//!
//! The acceptance bar is ≥3× the PR 5 `replay_binary` baseline
//! (7.43M events/s → ≥22.3M) for the best single-trace engine. On a
//! single-core host that is the fused path; the shard driver's worker
//! threads only pay off with real cores, so its numbers here document
//! coordination overhead, not scaling (see DESIGN.md §13).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use heapmd::{BinaryTraceImage, Process, Settings, Trace};
use sim_heap::{Addr, NULL};

/// Mutator ops behind the bench trace; ~4.3 heap events each, the same
/// list-churn loop as `trace_codec` so numbers are comparable.
const OPS: usize = 6_000;

fn churn_trace() -> Trace {
    let settings = Settings::builder().frq(100).build().unwrap();
    let mut p = Process::new(settings);
    p.enable_trace();
    let mut head = NULL;
    let mut live: Vec<Addr> = Vec::new();
    for i in 0..OPS {
        p.enter("loop_body");
        let a = p.malloc(24, "node").unwrap();
        if !head.is_null() {
            p.write_ptr(a.offset(8), head).unwrap();
        }
        head = a;
        live.push(a);
        if i % 4 == 3 {
            let victim = live.swap_remove(i % live.len());
            if victim != head {
                p.free(victim).unwrap();
            }
        }
        p.leave();
    }
    let mut trace = p.take_trace().unwrap();
    trace.set_functions(vec!["loop_body".into()]);
    trace
}

fn bench_sharded_replay(c: &mut Criterion) {
    let trace = churn_trace();
    let events = trace.len() as u64;
    let binary = trace.encode_binary();
    let settings = Settings::builder().frq(100).build().unwrap();
    let image = BinaryTraceImage::open(binary.clone()).unwrap();

    let dir = std::env::temp_dir().join("heapmd-sharded-bench");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("churn.hmdt");
    trace.save_binary(&path).unwrap();

    let mut group = c.benchmark_group("sharded_replay");
    group.throughput(Throughput::Elements(events));

    // The PR 5 pipelined engine — the `before` baseline.
    group.bench_function("replay_pipelined", |b| {
        b.iter(|| heapmd::replay_binary(&image, &settings, "bench").unwrap())
    });

    // The fused single-thread decode→ingest engine (`--shards 1`).
    group.bench_function("replay_fused", |b| {
        b.iter(|| heapmd::replay_binary_fused(&image, &settings, "bench").unwrap())
    });

    // The shard driver: router decodes and routes, N workers own the
    // degree-counting state, barrier merge at every sample point.
    for shards in [2usize, 4, 8] {
        group.bench_function(BenchmarkId::new("replay_shards", shards), |b| {
            b.iter(|| heapmd::replay_binary_sharded(&image, &settings, "bench", shards).unwrap())
        });
    }

    // File-to-report, open included: mmap zero-copy vs buffered read.
    group.bench_function("replay_mmap", |b| {
        b.iter(|| {
            let image = BinaryTraceImage::open_path(&path).unwrap();
            assert!(image.is_mapped());
            heapmd::replay_binary_fused(&image, &settings, "bench").unwrap()
        })
    });
    group.bench_function("replay_buffered", |b| {
        b.iter(|| {
            let image = BinaryTraceImage::open_path_buffered(&path).unwrap();
            heapmd::replay_binary_fused(&image, &settings, "bench").unwrap()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_sharded_replay);
criterion_main!(benches);
