//! Columnar run-store throughput (PR 9): append and scan rates over a
//! realistic cross-version corpus — 1,200 recorded runs across five
//! versions, each carrying the full 20-candidate metric family. The
//! `scan_*` and `drift` cases are the hot path behind `heapmd query`:
//! a regression matrix answered purely by columnar scan (see
//! BENCH_PR9.json for the committed rows/s figures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use heapmd::CandidateKind;
use heapmd_runstore::{drift_by_version, MetricStats, RowFilter, RowKind, RunRow, RunStore};
use std::path::PathBuf;

/// Recorded runs in the corpus: 5 versions x 240 runs each.
const VERSIONS: u64 = 5;
const RUNS_PER_VERSION: u64 = 240;
const ROWS: u64 = VERSIONS * RUNS_PER_VERSION;

/// Rows per append batch — the segment granularity a nightly training
/// sweep would produce.
const BATCH: usize = 100;

/// A deterministic corpus: every row carries all 20 candidate metrics,
/// with a mild per-version drift on the paper metrics so the drift
/// aggregation has real structure to find.
fn corpus() -> Vec<RunRow> {
    let ids: Vec<String> = CandidateKind::ALL
        .iter()
        .map(|k| k.id().to_string())
        .collect();
    let mut rows = Vec::with_capacity(ROWS as usize);
    for version in 1..=VERSIONS {
        for run in 0..RUNS_PER_VERSION {
            let jitter = (run % 17) as f64 / 10.0;
            let metrics = ids
                .iter()
                .enumerate()
                .map(|(i, id)| {
                    let base = 5.0 + i as f64 * 4.0;
                    (id.clone(), base + version as f64 * 0.3 + jitter)
                })
                .collect();
            rows.push(RunRow {
                workload: "multimedia".into(),
                version,
                run: format!("input-{run}"),
                tenant: String::new(),
                kind: RowKind::Check,
                time: 1_700_000_000 + version * 86_400 + run,
                seq: run,
                fn_entries: 10_000 + run,
                nodes: 4_000 + run,
                edges: 3_900 + run,
                dangling: 0,
                metrics,
            });
        }
    }
    rows
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("heapmd-bench-rs-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn bench_run_store(c: &mut Criterion) {
    let rows = corpus();

    let mut group = c.benchmark_group("run_store");
    group.throughput(Throughput::Elements(ROWS));

    // Full write path: open, append in segment-sized batches, fsync'd
    // atomic renames included. A fresh directory every iteration so no
    // run reuses the previous one's segments.
    group.bench_function(BenchmarkId::new("append", ROWS), |b| {
        let dir = fresh_dir("append");
        b.iter(|| {
            std::fs::remove_dir_all(&dir).ok();
            let store = RunStore::open(&dir).expect("open");
            for batch in rows.chunks(BATCH) {
                store.append(batch).expect("append");
            }
            store.segments().expect("segments").len()
        });
        std::fs::remove_dir_all(&dir).ok();
    });

    // A persisted corpus for the read-side cases.
    let dir = fresh_dir("scan");
    let store = RunStore::open(&dir).expect("open");
    for batch in rows.chunks(BATCH) {
        store.append(batch).expect("append");
    }

    // Full-table scan, every column decoded.
    group.bench_function(BenchmarkId::new("scan_full", ROWS), |b| {
        b.iter(|| {
            let out = store.scan(&RowFilter::default(), None).expect("scan");
            assert_eq!(out.rows.len(), ROWS as usize);
            out.rows.len()
        })
    });

    // Projected scan: one metric column, one version — the shape of a
    // `heapmd query --version V --metric M` call. Throughput is still
    // the full corpus: the scan must consider every row to filter.
    group.bench_function(BenchmarkId::new("scan_projected", ROWS), |b| {
        let filter = RowFilter {
            version: Some(3),
            ..RowFilter::default()
        };
        let cols = ["paper.roots".to_string()];
        b.iter(|| {
            let out = store.scan(&filter, Some(&cols)).expect("scan");
            assert_eq!(out.rows.len(), RUNS_PER_VERSION as usize);
            out.rows.len()
        })
    });

    // The cross-version regression matrix: scan + per-version stats +
    // version-over-version drift, i.e. `heapmd query --agg drift`.
    group.bench_function(BenchmarkId::new("drift", ROWS), |b| {
        let cols = ["paper.indeg1".to_string()];
        b.iter(|| {
            let out = store
                .scan(&RowFilter::default(), Some(&cols))
                .expect("scan");
            let drift = drift_by_version(&out.rows, "paper.indeg1");
            assert_eq!(drift.len(), VERSIONS as usize);
            assert!(drift[1].drift_pct.is_some());
            drift.len()
        })
    });

    // Per-metric summary stats over the full corpus, the
    // `--agg stats` path.
    group.bench_function(BenchmarkId::new("stats", ROWS), |b| {
        b.iter(|| {
            let out = store.scan(&RowFilter::default(), None).expect("scan");
            let mut computed = 0usize;
            for kind in CandidateKind::ALL {
                let vals: Vec<f64> = out
                    .rows
                    .iter()
                    .flat_map(|r| r.metrics.iter())
                    .filter(|(id, _)| id == kind.id())
                    .map(|(_, v)| *v)
                    .collect();
                if MetricStats::compute(&vals).is_some() {
                    computed += 1;
                }
            }
            assert_eq!(computed, CandidateKind::ALL.len());
            computed
        })
    });

    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_run_store);
criterion_main!(benches);
