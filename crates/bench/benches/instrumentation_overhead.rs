//! The paper's §2 claim: the online prototype costs a 2–3× slowdown.
//! The analogue here: the same mutator loop against (a) the bare
//! simulated heap, (b) the full execution logger (heap-graph image +
//! sampling), and (c) the logger with the anomaly detector attached.
//!
//! Two further cases measure the observability layer itself: the
//! execution-logger loop with obs disabled (the default — every probe
//! is a single relaxed atomic load) and with obs enabled (counters,
//! gauges, and latency histograms recording; no sink attached). The
//! acceptance bar is that the disabled case stays within noise of
//! `execution_logger`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use heapmd::{AnomalyDetector, HeapModel, Monitor, Process, SamplerConfig, Settings};
use sim_heap::{Addr, AllocSite, SimHeap, NULL};
use swat::AdaptiveSampler;
use std::cell::RefCell;
use std::rc::Rc;

const OPS: usize = 4_000;

/// The mutator loop: list churn with allocation, linking, and frees.
fn raw_heap_loop() {
    let mut heap = SimHeap::new();
    let mut head = NULL;
    let mut live: Vec<Addr> = Vec::new();
    for i in 0..OPS {
        let a = heap.alloc(24, AllocSite(0)).unwrap().addr;
        if !head.is_null() {
            heap.write_ptr(a.offset(8), head).unwrap();
        }
        head = a;
        live.push(a);
        if i % 4 == 3 {
            let victim = live.swap_remove(i % live.len());
            if victim != head {
                heap.free(victim).unwrap();
            }
        }
    }
}

fn instrumented_loop(p: &mut Process) {
    let mut head = NULL;
    let mut live: Vec<Addr> = Vec::new();
    for i in 0..OPS {
        p.enter("loop_body");
        let a = p.malloc(24, "node").unwrap();
        if !head.is_null() {
            p.write_ptr(a.offset(8), head).unwrap();
        }
        head = a;
        live.push(a);
        if i % 4 == 3 {
            let victim = live.swap_remove(i % live.len());
            if victim != head {
                p.free(victim).unwrap();
            }
        }
        p.leave();
    }
}

fn bench_overhead(c: &mut Criterion) {
    let settings = Settings::builder().frq(100).build().unwrap();
    let model = HeapModel {
        version: heapmd::MODEL_FORMAT_VERSION,
        program: "bench".into(),
        settings: settings.clone(),
        stable: vec![],
        unstable: vec![],
        locally_stable: vec![],
        candidate_stable: vec![],
        candidate_unstable: vec![],
        sample_rate: 1.0,
        training_runs: 0,
    };
    let mut group = c.benchmark_group("instrumentation_overhead");
    group.throughput(Throughput::Elements(OPS as u64));
    group.bench_function("bare_heap", |b| b.iter(raw_heap_loop));
    group.bench_function("execution_logger", |b| {
        b.iter(|| {
            let mut p = Process::new(settings.clone());
            instrumented_loop(&mut p);
        })
    });
    group.bench_function("execution_logger_obs_disabled", |b| {
        heapmd_obs::set_enabled(false);
        b.iter(|| {
            let mut p = Process::new(settings.clone());
            instrumented_loop(&mut p);
        })
    });
    group.bench_function("execution_logger_obs_enabled", |b| {
        heapmd_obs::set_enabled(true);
        b.iter(|| {
            let mut p = Process::new(settings.clone());
            instrumented_loop(&mut p);
        });
        heapmd_obs::set_enabled(false);
    });
    group.bench_function("execution_logger_sampled", |b| {
        b.iter(|| {
            let mut p = Process::new(settings.clone());
            p.enable_sampling(SamplerConfig::default());
            instrumented_loop(&mut p);
        })
    });
    // The sampler's own bookkeeping, isolated: one `record` per store
    // against a dense site-indexed table (16 sites, the hot/cold split
    // at the default threshold). This is the marginal cost `--sample`
    // adds to every store before any work is saved.
    group.bench_function("adaptive_sampler_record", |b| {
        let d = SamplerConfig::default();
        b.iter(|| {
            let mut sampler = AdaptiveSampler::new(d.hot_threshold, d.decimation);
            let mut kept = 0u64;
            for i in 0..OPS {
                kept += u64::from(sampler.record(AllocSite((i % 16) as u32)));
            }
            kept
        })
    });
    group.bench_function("logger_plus_detector", |b| {
        b.iter(|| {
            let mut p = Process::new(settings.clone());
            let det = Rc::new(RefCell::new(AnomalyDetector::new(
                model.clone(),
                settings.clone(),
            )));
            p.attach(det as Rc<RefCell<dyn Monitor>>);
            instrumented_loop(&mut p);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
