//! Regenerates Figures 8 and 9 as executable exemplars: one detected
//! bug per taxonomy class, with implicated functions.

use heapmd_bench::Effort;

fn main() {
    let effort = Effort::from_args();
    println!("{}", heapmd_bench::experiments::fig8_9(effort));
}
