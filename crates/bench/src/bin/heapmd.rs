//! `heapmd` — command-line front end for the reproduction.
//!
//! ```text
//! heapmd list                                   # programs and catalogued bugs
//! heapmd run <program> [--input K] [--version V] [--bug FAULT]
//! heapmd train <program> [--inputs N] [--version V] [--out FILE] [--local]
//! heapmd check <program> --model FILE [--input K] [--version V] [--bug FAULT]
//! heapmd record <program> --trace FILE [--input K] [--version V] [--bug FAULT]
//! heapmd replay --model FILE --trace FILE       # post-mortem trace checking
//! ```
//!
//! Global flags (any subcommand):
//!
//! - `--log-level off|error|warn|info|debug|trace` — stderr verbosity
//!   (defaults to the `HEAPMD_LOG` environment variable, then `warn`);
//! - `--obs-out FILE.jsonl` — enable instrumentation and stream
//!   structured events (heartbeats, anomalies, logs, final counter
//!   totals) as JSON lines;
//! - `--obs-prom FILE` — enable instrumentation and dump all metrics in
//!   Prometheus text exposition format on exit.
//!
//! Models are the JSON "summarized metric reports" of the paper's
//! Figure 2; traces are recorded with [`heapmd::Process::enable_trace`].

use faults::FaultPlan;
use heapmd::{FuncId, HeapModel, ModelBuilder, Process, Trace};
use heapmd_obs::{debug, error, info};
use std::path::Path;
use workloads::bugs::{CATALOG, SWAT_ONLY};
use workloads::harness::{check, run_once, settings_for};
use workloads::{commercial_at_version, registry, Input, Workload, WorkloadKind};

fn find_program(name: &str, version: u8) -> Option<Box<dyn Workload>> {
    let w = registry().into_iter().find(|w| w.name() == name)?;
    Some(if w.kind() == WorkloadKind::Commercial && version != 1 {
        commercial_at_version(name, version)
    } else {
        w
    })
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Removes `flag` and its value from `args`, returning the value.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  heapmd list\n  heapmd run <program> [--input K] [--version V] [--bug FAULT_ID]\n  heapmd train <program> [--inputs N] [--version V] [--out FILE] [--local]\n  heapmd check <program> --model FILE [--input K] [--version V] [--bug FAULT_ID]\n  heapmd record <program> --trace FILE [--input K] [--version V] [--bug FAULT_ID]\n  heapmd replay --model FILE --trace FILE\nglobal flags: [--log-level LEVEL] [--obs-out FILE.jsonl] [--obs-prom FILE]"
    );
    std::process::exit(2);
}

fn cmd_list() -> i32 {
    println!("programs:");
    for w in registry() {
        let kind = match w.kind() {
            WorkloadKind::Spec => "spec",
            WorkloadKind::Commercial => "commercial (versions 1-5)",
        };
        println!("  {:<14} {kind}", w.name());
    }
    println!("\ncatalogued bugs (enable with `check --bug <fault>`):");
    for b in &CATALOG {
        println!(
            "  {:<44} {:<24} {}",
            b.fault.0,
            b.category.to_string(),
            b.description
        );
    }
    println!("\nSWAT-only leak scenarios:");
    for l in &SWAT_ONLY {
        println!(
            "  {:<44} {:<24} {}",
            l.fault.0,
            l.detection.to_string(),
            l.description
        );
    }
    0
}

fn cmd_run(args: &[String]) -> i32 {
    let Some(program) = args.first() else { usage() };
    let input_id: u32 = arg_value(args, "--input")
        .map(|v| v.parse().expect("--input takes a number"))
        .unwrap_or(1000);
    let version: u8 = arg_value(args, "--version")
        .map(|v| v.parse().expect("--version takes 1-5"))
        .unwrap_or(1);
    let Some(w) = find_program(program, version) else {
        error!("unknown program {program} (see `heapmd list`)");
        return 1;
    };
    let settings = settings_for(w.as_ref());
    let mut plan = fault_plan_for(args);
    info!(
        "running {program} v{version} on input {input_id} (frq {})",
        settings.frq
    );
    let mut p = Process::new(settings);
    w.run(&mut p, &mut plan, &Input::new(input_id))
        .expect("workload run");
    let stats = *p.heap().stats();
    let live = p.heap().live_objects();
    let report = p.finish(format!("{program}:{input_id}"));
    println!(
        "{} metric computation points over {} allocs / {} frees / {} ptr stores ({} objects live at exit)",
        report.samples.len(),
        stats.allocs,
        stats.frees,
        stats.ptr_writes,
        live,
    );
    if let Some(last) = report.samples.last() {
        println!(
            "final graph: {} nodes, {} edges, {} dangling slots",
            last.nodes, last.edges, last.dangling
        );
    }
    0
}

fn cmd_train(args: &[String]) -> i32 {
    let Some(program) = args.first() else { usage() };
    let inputs: usize = arg_value(args, "--inputs")
        .map(|v| v.parse().expect("--inputs takes a number"))
        .unwrap_or(10);
    let version: u8 = arg_value(args, "--version")
        .map(|v| v.parse().expect("--version takes 1-5"))
        .unwrap_or(1);
    let out = arg_value(args, "--out").unwrap_or_else(|| format!("{program}.heapmd.json"));
    let local = args.iter().any(|a| a == "--local");

    let Some(w) = find_program(program, version) else {
        error!("unknown program {program} (see `heapmd list`)");
        return 1;
    };
    let settings = settings_for(w.as_ref());
    info!(
        "training {program} v{version} on {inputs} inputs (frq {})",
        settings.frq
    );
    let mut builder = ModelBuilder::new(settings.clone())
        .program(w.name())
        .locally_stable(local);
    for input in Input::set(inputs) {
        let report = run_once(w.as_ref(), &input, &mut FaultPlan::new(), &settings);
        debug!(
            "training input {} contributed {} samples",
            input.id,
            report.samples.len()
        );
        builder.add_run(&report);
    }
    let outcome = builder.build();
    for sm in outcome.model.stable_metrics() {
        println!(
            "stable {:<9} [{:6.2}, {:6.2}]  avg chg {:+.2}%  σ {:.2}  ({}/{} runs)",
            sm.kind.to_string(),
            sm.min,
            sm.max,
            sm.avg_change,
            sm.std_change,
            sm.stable_runs,
            sm.total_runs
        );
    }
    for lm in &outcome.model.locally_stable {
        println!(
            "locally stable {:<9} bands {:?}",
            lm.kind.to_string(),
            lm.ranges
        );
    }
    if !outcome.flagged_runs.is_empty() {
        println!("suspect training inputs: {:?}", outcome.flagged_runs);
    }
    outcome.model.save(&out).expect("write model");
    println!("model written to {out}");
    0
}

fn cmd_check(args: &[String]) -> i32 {
    let Some(program) = args.first() else { usage() };
    let Some(model_path) = arg_value(args, "--model") else {
        usage()
    };
    let input_id: u32 = arg_value(args, "--input")
        .map(|v| v.parse().expect("--input takes a number"))
        .unwrap_or(1000);
    let version: u8 = arg_value(args, "--version")
        .map(|v| v.parse().expect("--version takes 1-5"))
        .unwrap_or(1);
    let Some(w) = find_program(program, version) else {
        error!("unknown program {program} (see `heapmd list`)");
        return 1;
    };
    let model = HeapModel::load(&model_path).expect("read model");
    let mut plan = fault_plan_for(args);
    let bugs = check(w.as_ref(), &model, &Input::new(input_id), &mut plan);
    if bugs.is_empty() {
        println!("no anomalies on input {input_id}");
        0
    } else {
        println!("{} anomaly report(s):", bugs.len());
        for b in &bugs {
            println!("  {b}");
            let funcs = b.implicated_functions();
            if !funcs.is_empty() {
                println!("    implicated: {}", funcs.join(", "));
            }
        }
        3
    }
}

fn fault_plan_for(args: &[String]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    if let Some(fault) = arg_value(args, "--bug") {
        let spec = CATALOG.iter().find(|b| b.fault.0 == fault);
        let swat_only = SWAT_ONLY.iter().find(|l| l.fault.0 == fault);
        match (spec, swat_only) {
            (Some(b), _) => plan = b.plan(),
            (None, Some(l)) => plan = l.plan(),
            (None, None) => {
                error!("unknown bug {fault} (see `heapmd list`)");
                std::process::exit(1);
            }
        }
        info!("injecting {fault}");
    }
    plan
}

fn cmd_record(args: &[String]) -> i32 {
    let Some(program) = args.first() else { usage() };
    let Some(trace_path) = arg_value(args, "--trace") else {
        usage()
    };
    let input_id: u32 = arg_value(args, "--input")
        .map(|v| v.parse().expect("--input takes a number"))
        .unwrap_or(1000);
    let version: u8 = arg_value(args, "--version")
        .map(|v| v.parse().expect("--version takes 1-5"))
        .unwrap_or(1);
    let Some(w) = find_program(program, version) else {
        error!("unknown program {program} (see `heapmd list`)");
        return 1;
    };
    let settings = settings_for(w.as_ref());
    let mut plan = fault_plan_for(args);
    let mut p = Process::new(settings);
    p.enable_trace();
    w.run(&mut p, &mut plan, &Input::new(input_id))
        .expect("workload run");
    let mut trace = p.take_trace().expect("tracing enabled");
    let names: Vec<String> = (0..p.functions().len())
        .map(|i| p.functions().name(FuncId(i as u32)).to_string())
        .collect();
    trace.set_functions(names);
    let n = trace.len();
    trace.save(&trace_path).expect("write trace");
    let _ = p.finish("record");
    println!("{n} events written to {trace_path}");
    0
}

fn cmd_replay(args: &[String]) -> i32 {
    let Some(model_path) = arg_value(args, "--model") else {
        usage()
    };
    let Some(trace_path) = arg_value(args, "--trace") else {
        usage()
    };
    let model = HeapModel::load(&model_path).expect("read model");
    let trace = Trace::load(&trace_path).expect("read trace");
    let settings = model.settings.clone();
    info!("replaying {} events", trace.len());
    let bugs = trace.check(&model, &settings);
    if bugs.is_empty() {
        println!("no anomalies in trace");
        0
    } else {
        println!("{} anomaly report(s):", bugs.len());
        for b in &bugs {
            println!("  {b}");
        }
        3
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();

    if let Some(level) = take_flag_value(&mut args, "--log-level") {
        match heapmd_obs::Level::parse(&level) {
            Ok(parsed) => heapmd_obs::set_log_level(parsed),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
    let obs_out = take_flag_value(&mut args, "--obs-out");
    let obs_prom = take_flag_value(&mut args, "--obs-prom");
    if let Some(path) = &obs_out {
        heapmd_obs::set_enabled(true);
        if let Err(e) = heapmd_obs::export::set_sink_file(Path::new(path)) {
            eprintln!("cannot open --obs-out {path}: {e}");
            std::process::exit(2);
        }
        debug!("streaming obs events to {path}");
    }
    if obs_prom.is_some() {
        heapmd_obs::set_enabled(true);
    }

    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => usage(),
    };

    if heapmd_obs::export::sink_active() {
        heapmd_obs::export::emit_counters_event();
        heapmd_obs::export::clear_sink();
    }
    if let Some(path) = &obs_prom {
        if let Err(e) = heapmd_obs::export::write_prometheus_file(Path::new(path)) {
            error!("cannot write --obs-prom {path}: {e}");
        }
    }
    std::process::exit(code);
}
