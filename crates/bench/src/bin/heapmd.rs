//! `heapmd` — command-line front end for the reproduction.
//!
//! ```text
//! heapmd list                                   # programs and catalogued bugs
//! heapmd train <program> [--inputs N] [--version V] [--out FILE] [--local]
//! heapmd check <program> --model FILE [--input K] [--version V] [--bug FAULT]
//! heapmd record <program> --trace FILE [--input K] [--version V] [--bug FAULT]
//! heapmd replay --model FILE --trace FILE       # post-mortem trace checking
//! ```
//!
//! Models are the JSON "summarized metric reports" of the paper's
//! Figure 2; traces are recorded with [`heapmd::Process::enable_trace`].

use faults::FaultPlan;
use heapmd::{FuncId, HeapModel, ModelBuilder, Process, Trace};
use workloads::bugs::{CATALOG, SWAT_ONLY};
use workloads::harness::{check, run_once, settings_for};
use workloads::{commercial_at_version, registry, Input, Workload, WorkloadKind};

fn find_program(name: &str, version: u8) -> Option<Box<dyn Workload>> {
    let w = registry().into_iter().find(|w| w.name() == name)?;
    Some(if w.kind() == WorkloadKind::Commercial && version != 1 {
        commercial_at_version(name, version)
    } else {
        w
    })
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  heapmd list\n  heapmd train <program> [--inputs N] [--version V] [--out FILE] [--local]\n  heapmd check <program> --model FILE [--input K] [--version V] [--bug FAULT_ID]\n  heapmd record <program> --trace FILE [--input K] [--version V] [--bug FAULT_ID]\n  heapmd replay --model FILE --trace FILE"
    );
    std::process::exit(2);
}

fn cmd_list() {
    println!("programs:");
    for w in registry() {
        let kind = match w.kind() {
            WorkloadKind::Spec => "spec",
            WorkloadKind::Commercial => "commercial (versions 1-5)",
        };
        println!("  {:<14} {kind}", w.name());
    }
    println!("\ncatalogued bugs (enable with `check --bug <fault>`):");
    for b in &CATALOG {
        println!(
            "  {:<44} {:<24} {}",
            b.fault.0,
            b.category.to_string(),
            b.description
        );
    }
    println!("\nSWAT-only leak scenarios:");
    for l in &SWAT_ONLY {
        println!(
            "  {:<44} {:<24} {}",
            l.fault.0,
            l.detection.to_string(),
            l.description
        );
    }
}

fn cmd_train(args: &[String]) {
    let Some(program) = args.first() else { usage() };
    let inputs: usize = arg_value(args, "--inputs")
        .map(|v| v.parse().expect("--inputs takes a number"))
        .unwrap_or(10);
    let version: u8 = arg_value(args, "--version")
        .map(|v| v.parse().expect("--version takes 1-5"))
        .unwrap_or(1);
    let out = arg_value(args, "--out").unwrap_or_else(|| format!("{program}.heapmd.json"));
    let local = args.iter().any(|a| a == "--local");

    let Some(w) = find_program(program, version) else {
        eprintln!("unknown program {program} (see `heapmd list`)");
        std::process::exit(1);
    };
    let settings = settings_for(w.as_ref());
    eprintln!(
        "training {program} v{version} on {inputs} inputs (frq {})…",
        settings.frq
    );
    let mut builder = ModelBuilder::new(settings.clone())
        .program(w.name())
        .locally_stable(local);
    for input in Input::set(inputs) {
        let report = run_once(w.as_ref(), &input, &mut FaultPlan::new(), &settings);
        builder.add_run(&report);
        eprint!(".");
    }
    eprintln!();
    let outcome = builder.build();
    for sm in outcome.model.stable_metrics() {
        println!(
            "stable {:<9} [{:6.2}, {:6.2}]  avg chg {:+.2}%  σ {:.2}  ({}/{} runs)",
            sm.kind.to_string(),
            sm.min,
            sm.max,
            sm.avg_change,
            sm.std_change,
            sm.stable_runs,
            sm.total_runs
        );
    }
    for lm in &outcome.model.locally_stable {
        println!(
            "locally stable {:<9} bands {:?}",
            lm.kind.to_string(),
            lm.ranges
        );
    }
    if !outcome.flagged_runs.is_empty() {
        println!("suspect training inputs: {:?}", outcome.flagged_runs);
    }
    outcome.model.save(&out).expect("write model");
    println!("model written to {out}");
}

fn cmd_check(args: &[String]) {
    let Some(program) = args.first() else { usage() };
    let Some(model_path) = arg_value(args, "--model") else {
        usage()
    };
    let input_id: u32 = arg_value(args, "--input")
        .map(|v| v.parse().expect("--input takes a number"))
        .unwrap_or(1000);
    let version: u8 = arg_value(args, "--version")
        .map(|v| v.parse().expect("--version takes 1-5"))
        .unwrap_or(1);
    let Some(w) = find_program(program, version) else {
        eprintln!("unknown program {program}");
        std::process::exit(1);
    };
    let model = HeapModel::load(&model_path).expect("read model");
    let mut plan = fault_plan_for(args);
    let bugs = check(w.as_ref(), &model, &Input::new(input_id), &mut plan);
    if bugs.is_empty() {
        println!("no anomalies on input {input_id}");
    } else {
        println!("{} anomaly report(s):", bugs.len());
        for b in &bugs {
            println!("  {b}");
            let funcs = b.implicated_functions();
            if !funcs.is_empty() {
                println!("    implicated: {}", funcs.join(", "));
            }
        }
        std::process::exit(3);
    }
}

fn fault_plan_for(args: &[String]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    if let Some(fault) = arg_value(args, "--bug") {
        let spec = CATALOG.iter().find(|b| b.fault.0 == fault);
        let swat_only = SWAT_ONLY.iter().find(|l| l.fault.0 == fault);
        match (spec, swat_only) {
            (Some(b), _) => plan = b.plan(),
            (None, Some(l)) => plan = l.plan(),
            (None, None) => {
                eprintln!("unknown bug {fault} (see `heapmd list`)");
                std::process::exit(1);
            }
        }
        eprintln!("injecting {fault}");
    }
    plan
}

fn cmd_record(args: &[String]) {
    let Some(program) = args.first() else { usage() };
    let Some(trace_path) = arg_value(args, "--trace") else {
        usage()
    };
    let input_id: u32 = arg_value(args, "--input")
        .map(|v| v.parse().expect("--input takes a number"))
        .unwrap_or(1000);
    let version: u8 = arg_value(args, "--version")
        .map(|v| v.parse().expect("--version takes 1-5"))
        .unwrap_or(1);
    let Some(w) = find_program(program, version) else {
        eprintln!("unknown program {program}");
        std::process::exit(1);
    };
    let settings = settings_for(w.as_ref());
    let mut plan = fault_plan_for(args);
    let mut p = Process::new(settings);
    p.enable_trace();
    w.run(&mut p, &mut plan, &Input::new(input_id))
        .expect("workload run");
    let mut trace = p.take_trace().expect("tracing enabled");
    let names: Vec<String> = (0..p.functions().len())
        .map(|i| p.functions().name(FuncId(i as u32)).to_string())
        .collect();
    trace.set_functions(names);
    let n = trace.len();
    trace.save(&trace_path).expect("write trace");
    let _ = p.finish("record");
    println!("{n} events written to {trace_path}");
}

fn cmd_replay(args: &[String]) {
    let Some(model_path) = arg_value(args, "--model") else {
        usage()
    };
    let Some(trace_path) = arg_value(args, "--trace") else {
        usage()
    };
    let model = HeapModel::load(&model_path).expect("read model");
    let trace = Trace::load(&trace_path).expect("read trace");
    let settings = model.settings.clone();
    eprintln!("replaying {} events…", trace.len());
    let bugs = trace.check(&model, &settings);
    if bugs.is_empty() {
        println!("no anomalies in trace");
    } else {
        println!("{} anomaly report(s):", bugs.len());
        for b in &bugs {
            println!("  {b}");
        }
        std::process::exit(3);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("train") => cmd_train(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        _ => usage(),
    }
}
