//! `heapmd` — command-line front end for the reproduction.
//!
//! ```text
//! heapmd list                                   # programs and catalogued bugs
//! heapmd run <program> [--input K] [--version V] [--bug FAULT] [--shards N]
//!                      [--trace-out FILE] [--sample] [--sample-hot-threshold N]
//!                      [--sample-decimation N]
//!                      [--format binary|jsonl] [--model FILE] [--incidents DIR]
//! heapmd train <program> [--inputs N] [--version V] [--out FILE] [--local]
//!                        [--checkpoint-every N] [--resume] [--threads N]
//!                        [--format binary|jsonl]
//! heapmd check <program> --model FILE [--input K] [--version V] [--bug FAULT]
//!                        [--shards N] [--incidents DIR] [--sample]
//! heapmd check --model FILE --trace FILE [--trace FILE …] [--jobs N] [--shards N]
//!              [--salvage] [--sample]
//! heapmd record <program> --trace FILE [--input K] [--version V] [--bug FAULT]
//!                         [--format binary|jsonl] [--stream]
//! heapmd replay --model FILE --trace FILE [--salvage] [--shards N] [--format binary|jsonl]
//! heapmd inspect <artifact> [--salvage]         # bundle or trace, by magic
//! heapmd serve --model FILE [--listen ADDR] [--http ADDR] [--shards N]
//!              [--queue-events N] [--incidents DIR] [--prom-dump FILE]
//!              [--journal-dir DIR] [--model-dir DIR] [--session-timeout-ms N]
//!              [--sample] [--sample-hot-threshold N] [--sample-decimation N]
//! heapmd query --store DIR [--workload NAME] [--version V] [--kind K]
//!              [--metric ID …] [--agg stats|drift] [--format tsv|jsonl]
//! heapmd top --connect ADDR [--once] [--interval-ms N]
//! heapmd push --to ADDR --tenant NAME --trace FILE [--salvage] [--sample] [--sample-hot-threshold N] [--sample-decimation N]
//!             [--session ID] [--retry N] [--backoff-ms N] [--no-resume]
//! ```
//!
//! Robustness features:
//!
//! - `run --trace-out FILE` streams the heap-event trace incrementally
//!   in a crash-safe format: framed JSONL ([`heapmd::TraceWriter`]) or,
//!   with `--format binary`, the block-based binary codec
//!   ([`heapmd::BinaryTraceWriter`]) whose completed blocks salvage at
//!   block granularity; if the run dies mid-way, `replay --salvage`
//!   recovers what was flushed.
//! - `train --checkpoint-every N` writes an atomic resume checkpoint
//!   (`<out>.ckpt`) after every N training inputs (`--format binary`
//!   wraps it in the CRC-protected container); `train --resume`
//!   auto-detects either and produces the same model an uninterrupted
//!   run would have.
//! - `replay` / `check --trace` auto-detect binary vs. framed JSONL vs.
//!   JSON traces by magic bytes; `--salvage` accepts damaged inputs and
//!   reports what was lost. Binary traces replay through the pipelined
//!   decoder → detector engine.
//! - `check --trace A --trace B … --jobs N` fans offline trace checks
//!   across a scoped thread pool with deterministic input-order output.
//! - `run --model FILE` / `check … --incidents DIR` attach the anomaly
//!   detector with the flight recorder enabled: every surviving range
//!   violation is written as a CRC-framed incident bundle, which
//!   `inspect` renders as ASCII charts with the calibrated bounds,
//!   implicated functions, and the armed-window stack digest
//!   (`inspect --salvage` recovers damaged bundles).
//! - `serve` runs the fleet daemon ([`heapmd::Server`]): concurrent
//!   binary trace streams over TCP or `unix:` sockets, per-tenant
//!   verdicts bit-identical to `check`, Prometheus `/metrics` plus
//!   `/fleet.tsv` / `/fleet.jsonl` rollups over HTTP, graceful
//!   shutdown via `GET /shutdown`. `run --serve ADDR --tenant NAME`
//!   streams a live run into the daemon; `push` replays a recorded
//!   trace into it; `top` renders a live dashboard from the rollups.
//! - `push` and `run --serve` speak the resumable v2 session protocol
//!   by default: bounded retry with jittered exponential backoff
//!   (`--retry`, `--backoff-ms`), a local spill buffer of unacked
//!   blocks, and transparent resume from the last daemon-acked block
//!   after a disconnect (`--no-resume` falls back to the one-shot v1
//!   stream). With `serve --journal-dir DIR` the daemon journals every
//!   acked block, so sessions even survive a daemon crash/restart;
//!   `serve --model-dir DIR` checks each tenant against
//!   `DIR/<tenant>.hmdm` when present, falling back to the shared
//!   `--model`.
//! - `--run-store DIR` (on `run` / `train` / `check` / `serve`) appends
//!   one columnar row per metric computation point to an append-only
//!   run store ([`heapmd_runstore`]); `query` then answers cross-run
//!   and cross-version questions (filters, metric projections,
//!   percentile stats, drift matrices) by columnar scan alone —
//!   damaged segments degrade instead of failing the scan.
//!
//! Global flags (any subcommand):
//!
//! - `--log-level off|error|warn|info|debug|trace` — stderr verbosity
//!   (defaults to the `HEAPMD_LOG` environment variable, then `warn`);
//! - `--obs-out FILE.jsonl` — enable instrumentation and stream
//!   structured events (heartbeats, anomalies, logs, final counter
//!   totals) as JSON lines;
//! - `--obs-prom FILE` — enable instrumentation and dump all metrics in
//!   Prometheus text exposition format on exit;
//! - `--trace-events FILE` — collect span timings and write a Chrome
//!   trace-event JSON on exit (openable in about:tracing / Perfetto).
//!
//! Models are the JSON "summarized metric reports" of the paper's
//! Figure 2; traces are recorded with [`heapmd::Process::enable_trace`].

use faults::FaultPlan;
use heapmd::plot::{chart, RefLine};
use heapmd::run_rows::{rows_from_samples, unix_time_now, RowSource};
use heapmd::{
    AnomalyDetector, ArtifactKind, BinaryTraceImage, FuncId, HeapModel, IncidentBundle,
    IncidentLog, LogPhase, ModelBuilder, Process, SalvageStats, StreamFormat, Trace,
    TrainCheckpoint,
};
use heapmd_obs::{debug, error, info};
use heapmd_runstore::{
    drift_by_version, MetricStats, RowFilter, RowKind, RunRow, RunStore, ENCODING_NAMES,
};
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use workloads::bugs::{CATALOG, SWAT_ONLY};
use workloads::harness::{
    check, check_with_incidents, run_many, run_once, settings_for, FLIGHT_RECORDER_POINTS,
};
use workloads::{commercial_at_version, registry, Input, Workload, WorkloadKind};

fn find_program(name: &str, version: u8) -> Option<Box<dyn Workload>> {
    let w = registry().into_iter().find(|w| w.name() == name)?;
    Some(if w.kind() == WorkloadKind::Commercial && version != 1 {
        commercial_at_version(name, version)
    } else {
        w
    })
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parses `flag`'s value, exiting with a usage error (code 2) instead of
/// panicking when it is not a valid number.
fn num_flag<T: std::str::FromStr>(args: &[String], flag: &str, what: &str, default: T) -> T {
    match arg_value(args, flag) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("{flag} takes {what}, got {v:?}");
            std::process::exit(2);
        }),
    }
}

/// Collects every value of a repeatable flag, in order.
fn arg_values(args: &[String], flag: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == flag {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses the optional `--format binary|jsonl` flag, exiting with a
/// usage error (code 2) on an unrecognized value.
fn format_flag(args: &[String]) -> Option<StreamFormat> {
    arg_value(args, "--format").map(|v| {
        StreamFormat::parse(&v).unwrap_or_else(|msg| {
            eprintln!("{msg}");
            std::process::exit(2);
        })
    })
}

/// The `--shards N` heap-graph shard count for `run`/`check`/`replay`:
/// defaults to the core count (1 on single-core hosts — the legacy
/// single-slab layout). Observables are bit-identical at every value.
fn shards_flag(args: &[String]) -> usize {
    match arg_value(args, "--shards") {
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("--shards expects a number, got {v:?}");
            std::process::exit(2);
        }),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// The production-overhead sampling flags shared by `run`, `check`,
/// `serve`, and `push`: `--sample` turns the adaptive store sampler on
/// at the production default; `--sample-hot-threshold N` and
/// `--sample-decimation N` tune it (either implies `--sample`).
fn sampler_flag(args: &[String]) -> Option<heapmd::SamplerConfig> {
    let tuned = arg_value(args, "--sample-hot-threshold").is_some()
        || arg_value(args, "--sample-decimation").is_some();
    if !tuned && !args.iter().any(|a| a == "--sample") {
        return None;
    }
    let d = heapmd::SamplerConfig::default();
    let decimation: u64 = num_flag(args, "--sample-decimation", "a number", d.decimation);
    if decimation == 0 {
        eprintln!("--sample-decimation must be positive (1 = exact passthrough)");
        std::process::exit(2);
    }
    Some(heapmd::SamplerConfig::new(
        num_flag(args, "--sample-hot-threshold", "a number", d.hot_threshold),
        decimation,
    ))
}

/// Removes `flag` and its value from `args`, returning the value.
fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let value = args.remove(i + 1);
    args.remove(i);
    Some(value)
}

/// Opens the `--run-store DIR` store when the flag is present. An
/// unopenable directory fails fast (exit 1) before any work runs.
fn run_store_flag(args: &[String]) -> Option<RunStore> {
    let dir = arg_value(args, "--run-store")?;
    match RunStore::open(&dir) {
        Ok(s) => Some(s),
        Err(e) => {
            error!("cannot open run store {dir}: {e}");
            std::process::exit(1);
        }
    }
}

/// Appends rows to the run store, degrading to a logged error: the run
/// itself already succeeded, so a dead store must not fail the command.
fn append_rows(store: &RunStore, rows: &[RunRow]) {
    match store.append(rows) {
        Ok(path) => info!(
            "{} run-store row(s) appended to {}",
            rows.len(),
            path.display()
        ),
        Err(e) => error!("run-store append to {} failed: {e}", store.dir().display()),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  heapmd list\n  heapmd run <program> [--input K] [--version V] [--bug FAULT_ID] [--shards N] [--sample] [--sample-hot-threshold N] [--sample-decimation N] [--trace-out FILE] [--format binary|jsonl] [--model FILE] [--incidents DIR] [--run-store DIR] [--serve ADDR [--tenant NAME] [--session ID] [--retry N] [--backoff-ms N] [--no-resume]]\n  heapmd train <program> [--inputs N] [--version V] [--out FILE] [--local] [--metrics paper|candidates] [--checkpoint-every N] [--resume] [--threads N] [--format binary|jsonl] [--run-store DIR]\n  heapmd check <program> --model FILE [--input K] [--version V] [--bug FAULT_ID] [--shards N] [--sample] [--sample-hot-threshold N] [--sample-decimation N] [--incidents DIR] [--run-store DIR]\n  heapmd check --model FILE --trace FILE [--trace FILE ...] [--jobs N] [--shards N] [--salvage] [--sample] [--sample-hot-threshold N] [--sample-decimation N] [--run-store DIR] [--version V]\n  heapmd record <program> --trace FILE [--input K] [--version V] [--bug FAULT_ID] [--format binary|jsonl] [--stream]\n  heapmd replay --model FILE --trace FILE [--salvage] [--shards N] [--format binary|jsonl]\n  heapmd inspect <artifact> [--salvage]\n  heapmd serve --model FILE [--listen ADDR] [--http ADDR] [--shards N] [--queue-events N] [--incidents DIR] [--prom-dump FILE] [--journal-dir DIR] [--model-dir DIR] [--session-timeout-ms N] [--sample] [--sample-hot-threshold N] [--sample-decimation N] [--run-store DIR]\n  heapmd query --store DIR [--workload NAME] [--version V] [--run ID] [--tenant NAME] [--kind train|run|check|serve] [--since T] [--until T] [--metric ID ...] [--agg stats|drift] [--format tsv|jsonl] [--limit N] [--describe]\n  heapmd top --connect ADDR [--once] [--interval-ms N]\n  heapmd push --to ADDR --tenant NAME --trace FILE [--salvage] [--sample] [--sample-hot-threshold N] [--sample-decimation N] [--session ID] [--retry N] [--backoff-ms N] [--no-resume]\nglobal flags: [--log-level LEVEL] [--obs-out FILE.jsonl] [--obs-prom FILE] [--trace-events FILE]"
    );
    std::process::exit(2);
}

fn cmd_list() -> i32 {
    println!("programs:");
    for w in registry() {
        let kind = match w.kind() {
            WorkloadKind::Spec => "spec",
            WorkloadKind::Commercial => "commercial (versions 1-5)",
        };
        println!("  {:<14} {kind}", w.name());
    }
    println!("\ncatalogued bugs (enable with `check --bug <fault>`):");
    for b in &CATALOG {
        println!(
            "  {:<44} {:<24} {}",
            b.fault.0,
            b.category.to_string(),
            b.description
        );
    }
    println!("\nSWAT-only leak scenarios:");
    for l in &SWAT_ONLY {
        println!(
            "  {:<44} {:<24} {}",
            l.fault.0,
            l.detection.to_string(),
            l.description
        );
    }
    0
}

fn cmd_run(args: &[String]) -> i32 {
    let Some(program) = args.first() else { usage() };
    let input_id: u32 = num_flag(args, "--input", "a number", 1000u32);
    let version: u8 = num_flag(args, "--version", "1-5", 1u8);
    let trace_out = arg_value(args, "--trace-out");
    let model_path = arg_value(args, "--model");
    let incident_dir = arg_value(args, "--incidents");
    let Some(w) = find_program(program, version) else {
        error!("unknown program {program} (see `heapmd list`)");
        return 1;
    };
    let settings = settings_for(w.as_ref());
    let mut plan = fault_plan_for(args);
    let shards = shards_flag(args);
    workloads::harness::set_default_shards(shards);
    let run_store = run_store_flag(args);
    info!(
        "running {program} v{version} on input {input_id} (frq {}, {shards} graph shard(s))",
        settings.frq
    );
    let mut p = Process::with_shards(settings.clone(), shards);
    if let Some(config) = sampler_flag(args) {
        info!(
            "store sampling on: full fidelity for a site's first {} stores, 1/{} after",
            config.hot_threshold, config.decimation
        );
        p.enable_sampling(config);
    }
    // With a model, the run doubles as a flight-recorded check: the
    // detector rides along and emits incident bundles when it fires.
    let detector = match &model_path {
        Some(path) => match HeapModel::load(path) {
            Ok(model) => {
                let det = Rc::new(RefCell::new(AnomalyDetector::new(model, settings)));
                if let Some(dir) = &incident_dir {
                    det.borrow_mut()
                        .log_incidents_to(IncidentLog::new(dir, w.name()));
                }
                p.enable_flight_recorder(FLIGHT_RECORDER_POINTS);
                p.attach(det.clone());
                Some(det)
            }
            Err(e) => {
                error!("cannot load model {path}: {e}");
                return 1;
            }
        },
        None => {
            if incident_dir.is_some() {
                eprintln!("--incidents requires --model (nothing detects without one)");
                return 2;
            }
            None
        }
    };
    let serve_addr = arg_value(args, "--serve");
    if let Some(path) = &trace_out {
        if serve_addr.is_some() {
            eprintln!("--serve and --trace-out are mutually exclusive (one stream sink per run)");
            return 2;
        }
        let file = match std::fs::File::create(path) {
            Ok(f) => f,
            Err(e) => {
                error!("cannot open --trace-out {path}: {e}");
                return 1;
            }
        };
        let format = format_flag(args).unwrap_or_default();
        if let Err(e) = p.stream_trace_to_format(Box::new(std::io::BufWriter::new(file)), format) {
            error!("cannot start trace stream: {e}");
            return 1;
        }
    } else if let Some(addr) = &serve_addr {
        // Live fleet streaming: the daemon speaks the binary codec, so
        // the run streams exactly what `--trace-out --format binary`
        // would have written to disk.
        let tenant = arg_value(args, "--tenant").unwrap_or_else(|| format!("{program}-{input_id}"));
        let sink: Box<dyn std::io::Write> = if args.iter().any(|a| a == "--no-resume") {
            // Legacy v1 stream: no session, no reconnect.
            match heapmd::serve::connect_stream(addr, &tenant) {
                Ok(s) => Box::new(s),
                Err(e) => {
                    error!("cannot connect to fleet daemon {addr}: {e}");
                    return 1;
                }
            }
        } else {
            match heapmd::connect_session(addr, &tenant, session_options(args)) {
                Ok(s) => Box::new(s),
                Err(e) => {
                    error!("cannot connect to fleet daemon {addr}: {e}");
                    return 1;
                }
            }
        };
        info!("streaming live trace to {addr} as tenant {tenant}");
        if let Err(e) = p.stream_trace_to_format(
            Box::new(std::io::BufWriter::new(sink)),
            StreamFormat::Binary,
        ) {
            error!("cannot start serve stream: {e}");
            return 1;
        }
    } else if format_flag(args).is_some() {
        eprintln!("--format only applies with --trace-out");
        return 2;
    }
    if let Err(e) = w.run(&mut p, &mut plan, &Input::new(input_id)) {
        error!("workload run failed: {e}");
        return 1;
    }
    if trace_out.is_some() || serve_addr.is_some() {
        let sink_name = trace_out.as_deref().or(serve_addr.as_deref()).unwrap_or("");
        match p.finish_stream() {
            Ok(events) => println!("{events} events streamed to {sink_name}"),
            Err(e) => {
                // The run itself succeeded; a dead trace sink is a
                // degraded outcome, not a failed one.
                error!("trace stream to {sink_name} failed: {e}");
            }
        }
    }
    let stats = *p.heap().stats();
    let live = p.heap().live_objects();
    let sampling = p.sampling_info();
    let report = p.finish(format!("{program}:{input_id}"));
    println!(
        "{} metric computation points over {} allocs / {} frees / {} ptr stores ({} objects live at exit)",
        report.samples.len(),
        stats.allocs,
        stats.frees,
        stats.ptr_writes,
        live,
    );
    if let Some(info) = sampling {
        println!(
            "store sampling: {} of {} stores kept (effective rate {:.4})",
            info.kept_stores,
            info.total_stores,
            info.rate()
        );
    }
    if let Some(last) = report.samples.last() {
        println!(
            "final graph: {} nodes, {} edges, {} dangling slots",
            last.nodes, last.edges, last.dangling
        );
    }
    if let Some(store) = &run_store {
        let src = RowSource {
            workload: program.clone(),
            version: u64::from(version),
            run: format!("input-{input_id}"),
            tenant: String::new(),
            kind: RowKind::Run,
            time: unix_time_now(),
            sample_rate: report.sample_rate,
        };
        append_rows(store, &rows_from_samples(&src, &report.samples));
    }
    if let Some(det) = detector {
        let mut d = det.borrow_mut();
        let bugs = d.take_bugs();
        for path in d.incident_log().map(|l| l.paths()).unwrap_or_default() {
            println!("incident bundle written to {}", path.display());
        }
        if !bugs.is_empty() {
            println!("{} anomaly report(s):", bugs.len());
            for b in &bugs {
                println!("  {b}");
            }
            return 3;
        }
        println!("no anomalies against {}", model_path.unwrap_or_default());
    }
    0
}

fn cmd_train(args: &[String]) -> i32 {
    let Some(program) = args.first() else { usage() };
    let inputs: usize = num_flag(args, "--inputs", "a number", 10usize);
    let version: u8 = num_flag(args, "--version", "1-5", 1u8);
    let out = arg_value(args, "--out").unwrap_or_else(|| format!("{program}.heapmd.json"));
    let local = args.iter().any(|a| a == "--local");
    // `--metrics candidates` widens model construction to the full
    // candidate family; the default (`paper`) keeps the classic seven
    // and produces bit-identical models to builds before the family.
    let candidates = match arg_value(args, "--metrics").as_deref() {
        None | Some("paper") => false,
        Some("candidates") => true,
        Some(v) => {
            eprintln!("--metrics takes paper|candidates, got {v:?}");
            return 2;
        }
    };
    let checkpoint_every: u64 = num_flag(args, "--checkpoint-every", "a number", 0u64);
    let threads: usize = num_flag(args, "--threads", "a number", 1usize);
    let resume = args.iter().any(|a| a == "--resume");
    let ckpt_path = arg_value(args, "--checkpoint").unwrap_or_else(|| format!("{out}.ckpt"));
    // Checkpoint serialization: `--format binary` wraps the JSON state
    // in the CRC-protected container. `--resume` auto-detects either.
    let ckpt_format = format_flag(args).unwrap_or_default();
    // Test hook: slow training down so the chaos suite can SIGKILL the
    // process mid-run deterministically.
    let throttle_ms: u64 = std::env::var("HEAPMD_TRAIN_THROTTLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let Some(w) = find_program(program, version) else {
        error!("unknown program {program} (see `heapmd list`)");
        return 1;
    };
    let settings = settings_for(w.as_ref());
    info!(
        "training {program} v{version} on {inputs} inputs (frq {})",
        settings.frq
    );
    let run_store = run_store_flag(args);
    let (mut builder, start) = if resume && Path::new(&ckpt_path).exists() {
        match TrainCheckpoint::load(&ckpt_path).and_then(ModelBuilder::from_checkpoint) {
            Ok((b, next)) => {
                // The checkpoint's metric mode wins on resume: mixing
                // modes mid-train would corrupt the stability stats.
                println!("resuming from {ckpt_path}: {next} of {inputs} inputs already done");
                (b, next)
            }
            Err(e) => {
                error!("cannot resume from {ckpt_path}: {e}");
                return 1;
            }
        }
    } else {
        if resume {
            info!("no checkpoint at {ckpt_path}; training from scratch");
        }
        (
            ModelBuilder::new(settings.clone())
                .program(w.name())
                .locally_stable(local)
                .candidate_metrics(candidates),
            0,
        )
    };
    let all_inputs = Input::set(inputs);
    let pending = &all_inputs[(start as usize).min(all_inputs.len())..];
    // With --threads > 1 the pending runs execute on worker threads and
    // are merged in input order, so the model (and every checkpoint) is
    // bit-identical to the sequential path.
    let reports = if threads > 1 {
        run_many(w.as_ref(), pending, &settings, threads)
    } else {
        Vec::new()
    };
    let mut store_rows: Vec<RunRow> = Vec::new();
    for (i, input) in pending.iter().enumerate() {
        let report = if threads > 1 {
            reports[i].clone()
        } else {
            run_once(w.as_ref(), input, &mut FaultPlan::new(), &settings)
        };
        debug!(
            "training input {} contributed {} samples",
            input.id,
            report.samples.len()
        );
        if run_store.is_some() {
            let src = RowSource {
                workload: w.name().to_string(),
                version: u64::from(version),
                run: format!("input-{}", input.id),
                tenant: String::new(),
                kind: RowKind::Train,
                time: unix_time_now(),
                // Training always runs exact: calibration at full
                // fidelity, rate recorded in the model artifact.
                sample_rate: 1.0,
            };
            store_rows.extend(rows_from_samples(&src, &report.samples));
        }
        builder.add_run(&report);
        let done = start + i as u64 + 1;
        if checkpoint_every > 0 && done.is_multiple_of(checkpoint_every) {
            if let Err(e) = builder
                .checkpoint(done)
                .save_format(&ckpt_path, ckpt_format)
            {
                error!("checkpoint write to {ckpt_path} failed: {e}");
                return 1;
            }
            debug!("checkpointed {done}/{inputs} inputs to {ckpt_path}");
        }
        if throttle_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(throttle_ms));
        }
    }
    let outcome = builder.build();
    for sm in outcome.model.stable_metrics() {
        println!(
            "stable {:<9} [{:6.2}, {:6.2}]  avg chg {:+.2}%  σ {:.2}  ({}/{} runs)",
            sm.kind.to_string(),
            sm.min,
            sm.max,
            sm.avg_change,
            sm.std_change,
            sm.stable_runs,
            sm.total_runs
        );
    }
    for lm in &outcome.model.locally_stable {
        println!(
            "locally stable {:<9} bands {:?}",
            lm.kind.to_string(),
            lm.ranges
        );
    }
    for cm in &outcome.model.candidate_stable {
        println!(
            "candidate stable {:<24} [{:8.3}, {:8.3}]  avg chg {:+.2}%  ({}/{} runs)",
            cm.id, cm.min, cm.max, cm.avg_change, cm.stable_runs, cm.total_runs
        );
    }
    if !outcome.model.candidate_unstable.is_empty() {
        println!(
            "candidate unstable: {}",
            outcome.model.candidate_unstable.join(", ")
        );
    }
    if !outcome.flagged_runs.is_empty() {
        println!("suspect training inputs: {:?}", outcome.flagged_runs);
    }
    if let Err(e) = outcome.model.save(&out) {
        error!("cannot write model to {out}: {e}");
        return 1;
    }
    if checkpoint_every > 0 || resume {
        // The model is safely on disk; the checkpoint has served its
        // purpose. A resumed run consumes its checkpoint even when it
        // no longer writes new ones, so a later `--resume` cannot pick
        // up a stale state.
        std::fs::remove_file(&ckpt_path).ok();
    }
    if let Some(store) = &run_store {
        append_rows(store, &store_rows);
    }
    println!("model written to {out}");
    0
}

fn cmd_check(args: &[String]) -> i32 {
    // Offline mode: with `--trace` flags the check runs against
    // recorded trace files instead of a live program.
    let trace_paths = arg_values(args, "--trace");
    if !trace_paths.is_empty() {
        return cmd_check_offline(args, &trace_paths);
    }
    let Some(program) = args.first() else { usage() };
    let Some(model_path) = arg_value(args, "--model") else {
        usage()
    };
    let input_id: u32 = num_flag(args, "--input", "a number", 1000u32);
    let version: u8 = num_flag(args, "--version", "1-5", 1u8);
    let Some(w) = find_program(program, version) else {
        error!("unknown program {program} (see `heapmd list`)");
        return 1;
    };
    let model = match HeapModel::load(&model_path) {
        Ok(m) => m,
        Err(e) => {
            error!("cannot load model {model_path}: {e}");
            return 1;
        }
    };
    let mut plan = fault_plan_for(args);
    // The harness builds the process; route the shard count and the
    // sampling config through its process factory (verdicts are
    // shard-invariant; sampling widens ranges by the measured rate).
    workloads::harness::set_default_shards(shards_flag(args));
    workloads::harness::set_default_sampler(sampler_flag(args));
    let run_store = run_store_flag(args);
    let incident_dir = arg_value(args, "--incidents");
    // A run-store append needs the checked run's sampled report, so it
    // rides the flight-recorded path even without an incident dir.
    let bugs = if incident_dir.is_some() || run_store.is_some() {
        let outcome = check_with_incidents(
            w.as_ref(),
            &model,
            &Input::new(input_id),
            &mut plan,
            incident_dir.as_deref().map(Path::new),
        );
        for path in &outcome.bundle_paths {
            println!("incident bundle written to {}", path.display());
        }
        if let Some(store) = &run_store {
            let src = RowSource {
                workload: program.clone(),
                version: u64::from(version),
                run: format!("input-{input_id}"),
                tenant: String::new(),
                kind: RowKind::Check,
                time: unix_time_now(),
                sample_rate: outcome.report.sample_rate,
            };
            append_rows(store, &rows_from_samples(&src, &outcome.report.samples));
        }
        outcome.bugs
    } else {
        check(w.as_ref(), &model, &Input::new(input_id), &mut plan)
    };
    if bugs.is_empty() {
        println!("no anomalies on input {input_id}");
        0
    } else {
        println!("{} anomaly report(s):", bugs.len());
        for b in &bugs {
            println!("  {b}");
            let funcs = b.implicated_functions();
            if !funcs.is_empty() {
                println!("    implicated: {}", funcs.join(", "));
            }
        }
        3
    }
}

/// `check --model FILE --trace A [--trace B …] [--jobs N] [--salvage]`:
/// fans the trace checks across a scoped thread pool (binary traces go
/// through the pipelined decoder → detector engine) and prints per-trace
/// verdicts **in input order** regardless of worker scheduling.
fn cmd_check_offline(args: &[String], trace_paths: &[String]) -> i32 {
    let Some(model_path) = arg_value(args, "--model") else {
        usage()
    };
    let jobs: usize = num_flag(args, "--jobs", "a number", 1usize);
    let salvage = args.iter().any(|a| a == "--salvage");
    // Explicit `--shards N` forces that many intra-trace shards per
    // binary check; without it the pool splits idle capacity itself
    // (jobs > traces), so pass 0 = auto.
    let shards = match arg_value(args, "--shards") {
        Some(_) => shards_flag(args),
        None => 0,
    };
    let model = match HeapModel::load(&model_path) {
        Ok(m) => m,
        Err(e) => {
            error!("cannot load model {model_path}: {e}");
            return 1;
        }
    };
    let settings = model.settings.clone();
    // `--sample` re-samples full-fidelity recordings through the
    // adaptive filter before checking (already-sampled traces keep
    // their recorded schedule — re-decimating would double-drop).
    let sampler = sampler_flag(args);
    // Recording rows needs the per-sample series, which only the
    // sequential in-memory checker exposes; the parallel sharded
    // engine returns verdicts alone. Traces check one at a time here.
    if let Some(store) = run_store_flag(args) {
        if jobs > 1 {
            info!("--run-store records per-sample rows; checking sequentially (--jobs {jobs} ignored)");
        }
        let version: u64 = num_flag(args, "--version", "a number", 0u64);
        let (mut failed, mut anomalies) = (false, false);
        for path in trace_paths {
            let outcome = heapmd::load_trace_auto(path, salvage).and_then(|(trace, stats)| {
                if let Some(stats) = &stats {
                    report_salvage(path, stats);
                }
                let trace = match sampler {
                    Some(config) if trace.sampling().is_none() => trace.sampled(config),
                    _ => trace,
                };
                let rate = trace.sample_rate();
                trace.check_logged(&model, &settings, None).map(|o| (o, rate))
            });
            match outcome {
                Ok((out, rate)) => {
                    let src = RowSource {
                        workload: model.program.clone(),
                        version,
                        run: path.clone(),
                        tenant: String::new(),
                        kind: RowKind::Check,
                        time: unix_time_now(),
                        sample_rate: rate,
                    };
                    append_rows(&store, &rows_from_samples(&src, &out.samples));
                    if out.bugs.is_empty() {
                        println!("{path}: no anomalies");
                    } else {
                        anomalies = true;
                        println!("{path}: {} anomaly report(s):", out.bugs.len());
                        for b in &out.bugs {
                            println!("  {b}");
                            let funcs = b.implicated_functions();
                            if !funcs.is_empty() {
                                println!("    implicated: {}", funcs.join(", "));
                            }
                        }
                    }
                }
                Err(e) => {
                    failed = true;
                    error!("{path}: {e}");
                    if !salvage {
                        eprintln!("hint: `--salvage` recovers what a damaged trace still holds");
                    }
                }
            }
        }
        return if failed {
            1
        } else if anomalies {
            3
        } else {
            0
        };
    }
    if let Some(config) = sampler {
        // Production-overhead verdicts: binary recordings stream through
        // the sharded engine with the live filter in front; JSONL (and
        // salvaged) traces re-sample in memory.
        let (mut failed, mut anomalies) = (false, false);
        for path in trace_paths {
            let checked = if !salvage
                && heapmd::sniff_file(path).is_ok_and(|k| k == ArtifactKind::BinaryTrace)
            {
                BinaryTraceImage::open_path(path).and_then(|image| {
                    match image.sampling()? {
                        // Recorded sampled: keep the recorded schedule
                        // (re-decimating would double-drop stores).
                        Some(info) => {
                            heapmd::check_binary_sharded(&image, &model, &settings, shards.max(1))
                                .map(|bugs| (bugs, info))
                        }
                        None => heapmd::check_binary_sharded_sampled(
                            &image,
                            &model,
                            &settings,
                            shards.max(1),
                            config,
                        ),
                    }
                })
            } else {
                heapmd::load_trace_auto(path, salvage).and_then(|(trace, stats)| {
                    if let Some(stats) = &stats {
                        report_salvage(path, stats);
                    }
                    let trace = match trace.sampling() {
                        None => trace.sampled(config),
                        Some(_) => trace,
                    };
                    let info = trace.sampling().expect("sampled above or recorded");
                    trace.check(&model, &settings).map(|bugs| (bugs, info))
                })
            };
            match checked {
                Ok((bugs, info)) if bugs.is_empty() => {
                    println!("{path}: no anomalies (sampled at {:.4})", info.rate());
                }
                Ok((bugs, info)) => {
                    anomalies = true;
                    println!(
                        "{path}: {} anomaly report(s) (sampled at {:.4}):",
                        bugs.len(),
                        info.rate()
                    );
                    for b in &bugs {
                        println!("  {b}");
                        let funcs = b.implicated_functions();
                        if !funcs.is_empty() {
                            println!("    implicated: {}", funcs.join(", "));
                        }
                    }
                }
                Err(e) => {
                    failed = true;
                    error!("{path}: {e}");
                    if !salvage {
                        eprintln!("hint: `--salvage` recovers what a damaged trace still holds");
                    }
                }
            }
        }
        return if failed {
            1
        } else if anomalies {
            3
        } else {
            0
        };
    }
    let paths: Vec<PathBuf> = trace_paths.iter().map(PathBuf::from).collect();
    info!("checking {} trace(s) with {jobs} job(s)", paths.len());
    let results =
        heapmd::check_paths_parallel_sharded(&paths, &model, &settings, jobs, salvage, shards);
    let (mut failed, mut anomalies) = (false, false);
    for (path, result) in trace_paths.iter().zip(results) {
        match result {
            Ok(bugs) if bugs.is_empty() => println!("{path}: no anomalies"),
            Ok(bugs) => {
                anomalies = true;
                println!("{path}: {} anomaly report(s):", bugs.len());
                for b in &bugs {
                    println!("  {b}");
                    let funcs = b.implicated_functions();
                    if !funcs.is_empty() {
                        println!("    implicated: {}", funcs.join(", "));
                    }
                }
            }
            Err(e) => {
                failed = true;
                error!("{path}: {e}");
                if !salvage {
                    eprintln!("hint: `--salvage` recovers what a damaged trace still holds");
                }
            }
        }
    }
    if failed {
        1
    } else if anomalies {
        3
    } else {
        0
    }
}

/// Chart geometry for `inspect`.
const CHART_WIDTH: usize = 64;
const CHART_HEIGHT: usize = 10;

/// Renders an incident bundle: metadata, per-series charts (the
/// offending metric gets its calibrated bounds as reference lines),
/// the degree histogram, implicated functions, and the stack digest.
fn render_bundle(bundle: &IncidentBundle) -> String {
    let m = &bundle.meta;
    let mut out = String::new();
    out.push_str(&format!(
        "source   {}\nmetric   {} — {}\nvalue    {:.3} outside calibrated [{:.3}, {:.3}], slope {:+.3}\n",
        m.source, m.metric, m.kind, m.value, m.range.0, m.range.1, m.slope
    ));
    out.push_str(&format!(
        "where    sample #{} ({} fn entries), {} samples seen",
        m.sample_seq, m.fn_entries, m.samples_seen
    ));
    match m.armed_at_seq {
        Some(at) => out.push_str(&format!(", armed since sample #{at}\n")),
        None => out.push('\n'),
    }

    let offending = format!("metric.{}", m.metric.short_name());
    if bundle.series.is_empty() {
        out.push_str("\n(no flight-recorder series captured)\n");
    }
    for s in &bundle.series {
        let ys: Vec<f64> = s.points.iter().map(|&(_, y)| y).collect();
        let refs: &[RefLine] = if s.name == offending {
            &[
                RefLine {
                    value: m.range.0,
                    glyph: '-',
                    label: "min",
                },
                RefLine {
                    value: m.range.1,
                    glyph: '=',
                    label: "max",
                },
            ]
        } else {
            &[]
        };
        let title = format!(
            "\n{} (stride {}, {} of {} points)",
            s.name,
            s.stride,
            ys.len(),
            s.seen
        );
        out.push_str(&chart(&title, &ys, CHART_WIDTH, CHART_HEIGHT, refs));
    }

    if let Some(d) = &bundle.degrees {
        out.push_str(&format!(
            "\nheap-graph degree histogram ({} nodes, {} with indeg == outdeg):\n",
            d.nodes, d.in_eq_out
        ));
        let fmt_row = |label: &str, buckets: &[u64]| -> String {
            let cells: Vec<String> = buckets
                .iter()
                .enumerate()
                .map(|(i, &n)| {
                    if i + 1 == buckets.len() {
                        format!("{}+:{n}", i)
                    } else {
                        format!("{i}:{n}")
                    }
                })
                .collect();
            format!("  {label:<7} {}\n", cells.join("  "))
        };
        out.push_str(&fmt_row("indeg", &d.indeg));
        out.push_str(&fmt_row("outdeg", &d.outdeg));
        // v2 bundles carry the sparse full-resolution distributions; v1
        // bundles only have the bucketed view above.
        let full_row = |label: &str, pairs: &[(u32, u64)]| -> String {
            let cells: Vec<String> = pairs.iter().map(|&(d, n)| format!("{d}:{n}")).collect();
            format!("  {label:<11} {}\n", cells.join("  "))
        };
        let shape = |pairs: &[(u32, u64)]| -> String {
            let dist = heapmd::DegreeDistribution::from_counts(
                &heapmd::DegreeSnapshot::dense_counts(pairs),
            );
            format!(
                "entropy {:.3} bits, tail(>={}) {:.3}, top-2 share {:.3}, max degree {}",
                dist.entropy(),
                heapmd::TAIL_MIN_DEGREE,
                dist.tail_mass(heapmd::TAIL_MIN_DEGREE),
                dist.top_share(2),
                dist.max_degree()
            )
        };
        if !d.indeg_full.is_empty() || !d.outdeg_full.is_empty() {
            out.push_str("\nfull degree distribution (degree:count, no overflow bucket):\n");
            out.push_str(&full_row("indeg full", &d.indeg_full));
            out.push_str(&full_row("outdeg full", &d.outdeg_full));
            out.push_str(&format!("  in  shape   {}\n", shape(&d.indeg_full)));
            out.push_str(&format!("  out shape   {}\n", shape(&d.outdeg_full)));
        }
    }

    let funcs = bundle.implicated_functions();
    if !funcs.is_empty() {
        out.push_str(&format!("\nimplicated functions: {}\n", funcs.join(", ")));
    }
    if !bundle.stacks.is_empty() {
        out.push_str(&format!(
            "\narmed-window stack digest ({} entries):\n",
            bundle.stacks.len()
        ));
        for entry in &bundle.stacks {
            let phase = match entry.phase {
                LogPhase::Before => "before",
                LogPhase::During => "DURING",
                LogPhase::After => "after",
            };
            let stack = if entry.stack.is_empty() {
                "(no stack)".to_string()
            } else {
                entry.stack.join(" > ")
            };
            out.push_str(&format!(
                "  [{phase:<6}] tick {:<8} {:<32} {stack}\n",
                entry.tick, entry.event
            ));
        }
    }
    out
}

fn cmd_inspect(args: &[String]) -> i32 {
    let Some(path) = args.first() else { usage() };
    let salvage = args.iter().any(|a| a == "--salvage");
    // The magic bytes pick the renderer; the extension is advisory
    // only, so a mis-named artifact still inspects correctly and an
    // unrecognized one gets a typed error instead of a parse panic.
    let kind = match heapmd::sniff_file(path) {
        Ok(k) => k,
        Err(e) => {
            error!("cannot read {path}: {e}");
            return 1;
        }
    };
    match kind {
        ArtifactKind::IncidentBundle => inspect_bundle(path, salvage),
        ArtifactKind::BinaryTrace => inspect_binary_trace(path, salvage),
        ArtifactKind::JsonlTrace | ArtifactKind::JsonTrace => inspect_trace(path, kind, salvage),
        ArtifactKind::Unknown => {
            error!(
                "{path}: unrecognized artifact — magic bytes match neither a trace (binary or JSONL), a JSON document, nor an incident bundle"
            );
            1
        }
    }
}

/// `inspect` on a binary `.hmdt` trace: block/index summary instead of
/// charts. Salvage mode reports what an incomplete file still holds.
fn inspect_binary_trace(path: &str, salvage: bool) -> i32 {
    if salvage {
        let (trace, stats) = match Trace::salvage_binary(path) {
            Ok(r) => r,
            Err(e) => {
                error!("cannot salvage {path}: {e}");
                return 1;
            }
        };
        report_salvage(path, &stats);
        println!("binary trace {path} (salvaged)");
        println!(
            "  {} events, {} functions",
            trace.len(),
            trace.functions().len()
        );
        return 0;
    }
    let image = match std::fs::read(path)
        .map_err(heapmd::HeapMdError::from)
        .and_then(BinaryTraceImage::open)
    {
        Ok(i) => i,
        Err(e) => {
            error!("cannot open {path}: {e}");
            eprintln!("hint: `--salvage` recovers what a damaged trace still holds");
            return 1;
        }
    };
    let index = image.index();
    let event_blocks = image.event_blocks().count();
    println!("binary trace {path}");
    println!(
        "  {} events in {} block(s) ({} total incl. tables/index), {} fn entries",
        index.total_events,
        event_blocks,
        index.blocks.len(),
        index.total_fn_enters
    );
    match image.functions() {
        Ok(names) if names.is_empty() => println!("  no function table"),
        Ok(names) => println!("  {} function(s): {}", names.len(), names.join(", ")),
        Err(e) => {
            error!("  function table unreadable: {e}");
            return 1;
        }
    }
    0
}

/// `inspect` on a JSONL-streamed or plain-JSON trace: event summary.
fn inspect_trace(path: &str, kind: ArtifactKind, salvage: bool) -> i32 {
    match heapmd::load_trace_auto(path, salvage) {
        Ok((trace, stats)) => {
            if let Some(stats) = &stats {
                report_salvage(path, stats);
            }
            println!("{kind} {path}");
            println!(
                "  {} events, {} functions",
                trace.len(),
                trace.functions().len()
            );
            0
        }
        Err(e) => {
            error!("cannot load trace {path}: {e}");
            if !salvage {
                eprintln!("hint: `--salvage` recovers what a damaged trace still holds");
            }
            1
        }
    }
}

fn inspect_bundle(path: &str, salvage: bool) -> i32 {
    let bundle = if salvage {
        match IncidentBundle::salvage(path) {
            Ok((Some(bundle), stats)) => {
                if !stats.complete {
                    let (offset, reason) = stats
                        .corruption
                        .unwrap_or((stats.total_bytes, "truncated".to_string()));
                    println!(
                        "salvaged {} record(s), lost {} ({} bytes total); damage at byte {offset}: {reason}",
                        stats.records, stats.skipped, stats.total_bytes
                    );
                }
                bundle
            }
            Ok((None, stats)) => {
                error!(
                    "nothing salvageable in {path}: no intact metadata record in {} bytes",
                    stats.total_bytes
                );
                return 1;
            }
            Err(e) => {
                error!("cannot read bundle {path}: {e}");
                return 1;
            }
        }
    } else {
        match IncidentBundle::load(path) {
            Ok(b) => b,
            Err(e) => {
                error!("cannot load bundle {path}: {e}");
                eprintln!("hint: `--salvage` recovers what a damaged bundle still holds");
                return 1;
            }
        }
    };
    println!("incident bundle {path}");
    print!("{}", render_bundle(&bundle));
    0
}

fn fault_plan_for(args: &[String]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    if let Some(fault) = arg_value(args, "--bug") {
        let spec = CATALOG.iter().find(|b| b.fault.0 == fault);
        let swat_only = SWAT_ONLY.iter().find(|l| l.fault.0 == fault);
        match (spec, swat_only) {
            (Some(b), _) => plan = b.plan(),
            (None, Some(l)) => plan = l.plan(),
            (None, None) => {
                error!("unknown bug {fault} (see `heapmd list`)");
                std::process::exit(1);
            }
        }
        info!("injecting {fault}");
    }
    plan
}

fn cmd_record(args: &[String]) -> i32 {
    let Some(program) = args.first() else { usage() };
    let Some(trace_path) = arg_value(args, "--trace") else {
        usage()
    };
    let input_id: u32 = num_flag(args, "--input", "a number", 1000u32);
    let version: u8 = num_flag(args, "--version", "1-5", 1u8);
    let stream = args.iter().any(|a| a == "--stream");
    let Some(w) = find_program(program, version) else {
        error!("unknown program {program} (see `heapmd list`)");
        return 1;
    };
    let settings = settings_for(w.as_ref());
    let mut plan = fault_plan_for(args);
    let mut p = Process::new(settings);
    p.enable_trace();
    if let Err(e) = w.run(&mut p, &mut plan, &Input::new(input_id)) {
        error!("workload run failed: {e}");
        return 1;
    }
    let mut trace = p.take_trace().expect("tracing enabled");
    let names: Vec<String> = (0..p.functions().len())
        .map(|i| p.functions().name(FuncId(i as u32)).to_string())
        .collect();
    trace.set_functions(names);
    let n = trace.len();
    // `--format` picks the on-disk codec; bare `--stream` keeps its
    // historical meaning (framed JSONL); neither means plain JSON.
    let written = match format_flag(args) {
        Some(format) => trace.save_format(&trace_path, format),
        None if stream => trace.save_stream(&trace_path),
        None => trace.save(&trace_path),
    };
    if let Err(e) = written {
        error!("cannot write trace to {trace_path}: {e}");
        return 1;
    }
    let _ = p.finish("record");
    println!("{n} events written to {trace_path}");
    0
}

/// Prints what salvage recovered from `path` (and where the damage
/// was) when the artifact turned out to be incomplete.
fn report_salvage(path: &str, stats: &SalvageStats) {
    if stats.complete {
        info!("{path} is complete ({} events)", stats.events);
    } else {
        let (offset, reason) = stats
            .corruption
            .clone()
            .unwrap_or((stats.valid_bytes, "truncated".to_string()));
        println!(
            "salvaged {} of {} bytes ({} events) from {path}; damage at byte {offset}: {reason}",
            stats.valid_bytes, stats.total_bytes, stats.events
        );
    }
}

fn cmd_replay(args: &[String]) -> i32 {
    let Some(model_path) = arg_value(args, "--model") else {
        usage()
    };
    let Some(trace_path) = arg_value(args, "--trace") else {
        usage()
    };
    let salvage = args.iter().any(|a| a == "--salvage");
    let model = match HeapModel::load(&model_path) {
        Ok(m) => m,
        Err(e) => {
            error!("cannot load model {model_path}: {e}");
            return 1;
        }
    };
    let settings = model.settings.clone();
    // `--format` forces the parse; otherwise the magic bytes decide.
    let kind = match format_flag(args) {
        Some(StreamFormat::Binary) => ArtifactKind::BinaryTrace,
        Some(StreamFormat::Jsonl) => ArtifactKind::JsonlTrace,
        None => match heapmd::sniff_file(&trace_path) {
            Ok(k) => k,
            Err(e) => {
                error!("cannot read trace {trace_path}: {e}");
                return 1;
            }
        },
    };
    // Strict binary replay memory-maps the file (zero-copy block
    // decode; falls back to a buffered read where mmap is unavailable)
    // and ingests through the sharded graph image — without
    // materializing an in-memory `Trace`.
    let checked = if kind == ArtifactKind::BinaryTrace && !salvage {
        let shards = shards_flag(args);
        BinaryTraceImage::open_path(&trace_path).and_then(|image| {
            info!(
                "replaying {} events ({} blocks, {}, {shards} graph shard(s))",
                image.index().total_events,
                image.index().blocks.len(),
                if image.is_mapped() {
                    "mmap"
                } else {
                    "buffered"
                },
            );
            heapmd::check_binary_sharded(&image, &model, &settings, shards)
        })
    } else {
        let loaded = match kind {
            ArtifactKind::BinaryTrace => {
                Trace::salvage_binary(&trace_path).map(|(t, s)| (t, Some(s)))
            }
            ArtifactKind::JsonlTrace if salvage => {
                Trace::salvage_stream(&trace_path).map(|(t, s)| (t, Some(s)))
            }
            ArtifactKind::JsonlTrace => Trace::load_stream(&trace_path).map(|t| (t, None)),
            _ => heapmd::load_trace_auto(&trace_path, salvage),
        };
        loaded.and_then(|(trace, stats)| {
            if let Some(stats) = &stats {
                report_salvage(&trace_path, stats);
            }
            info!("replaying {} events", trace.len());
            trace.check(&model, &settings)
        })
    };
    let bugs = match checked {
        Ok(b) => b,
        Err(e) => {
            error!("cannot replay trace {trace_path}: {e}");
            if !salvage {
                eprintln!("hint: `--salvage` recovers what a damaged trace still holds");
            }
            return 1;
        }
    };
    if bugs.is_empty() {
        println!("no anomalies in trace");
        0
    } else {
        println!("{} anomaly report(s):", bugs.len());
        for b in &bugs {
            println!("  {b}");
        }
        3
    }
}

/// Parses the client-side reliability flags shared by `push` and
/// `run --serve`: `--retry N`, `--backoff-ms N`, `--session ID`.
fn session_options(args: &[String]) -> heapmd::SessionOptions {
    let mut opts = heapmd::SessionOptions::default();
    opts.retry.max_attempts = num_flag(args, "--retry", "a number", opts.retry.max_attempts);
    opts.retry.base_delay = std::time::Duration::from_millis(num_flag(
        args,
        "--backoff-ms",
        "milliseconds",
        opts.retry.base_delay.as_millis() as u64,
    ));
    opts.session = arg_value(args, "--session");
    opts
}

fn cmd_serve(args: &[String]) -> i32 {
    let Some(model_path) = arg_value(args, "--model") else {
        usage()
    };
    let listen = arg_value(args, "--listen").unwrap_or_else(|| "127.0.0.1:7700".to_string());
    let http = arg_value(args, "--http").unwrap_or_else(|| "127.0.0.1:7701".to_string());
    let model = match HeapModel::load(&model_path) {
        Ok(m) => m,
        Err(e) => {
            error!("cannot load model {model_path}: {e}");
            return 1;
        }
    };
    let mut config = heapmd::ServeConfig::new(model);
    config.shards = num_flag(args, "--shards", "a number", config.shards);
    config.queue_events = num_flag(args, "--queue-events", "a number", config.queue_events);
    config.incident_dir = arg_value(args, "--incidents").map(PathBuf::from);
    config.prom_dump = arg_value(args, "--prom-dump").map(PathBuf::from);
    config.journal_dir = arg_value(args, "--journal-dir").map(PathBuf::from);
    config.model_dir = arg_value(args, "--model-dir").map(PathBuf::from);
    config.run_store = arg_value(args, "--run-store").map(PathBuf::from);
    config.sampler = sampler_flag(args);
    config.session_timeout = std::time::Duration::from_millis(num_flag(
        args,
        "--session-timeout-ms",
        "milliseconds",
        config.session_timeout.as_millis() as u64,
    ));
    // The daemon *is* an observability plane; its own instrumentation
    // (stage throughput, build info, uptime) is always on.
    heapmd_obs::set_enabled(true);
    let server = match heapmd::Server::start(config, &listen, &http) {
        Ok(s) => s,
        Err(e) => {
            error!("cannot start fleet daemon: {e}");
            return 1;
        }
    };
    println!(
        "fleet daemon up: ingest {} http {}",
        server.ingest_addr(),
        server.http_addr()
    );
    println!(
        "scrape http://{0}/metrics ; watch with `heapmd top --connect {0}` ; stop with GET http://{0}/shutdown",
        server.http_addr()
    );
    let summary = server.wait();
    let mut anomalies = false;
    for (tenant, o) in &summary.tenants {
        let state = match (&o.evicted, &o.error, o.partial) {
            (Some(reason), _, _) => format!("evicted ({reason})"),
            (_, Some(err), _) => format!("error ({err})"),
            (_, _, true) => "partial".to_string(),
            _ => "complete".to_string(),
        };
        println!(
            "tenant {tenant}: {} events, {} bug(s), {} bundle(s), {state}",
            o.events,
            o.bugs.len(),
            o.bundle_paths.len()
        );
        for b in &o.bugs {
            println!("  {b}");
        }
        anomalies |= !o.bugs.is_empty();
    }
    if let Some(err) = &summary.prom_dump_error {
        eprintln!("heapmd: warning[obs-prom-dropped]: final Prometheus dump failed: {err}");
        return 4;
    }
    if anomalies {
        3
    } else {
        0
    }
}

/// Minimal HTTP/1.0 GET against the daemon's control endpoint,
/// returning the response body.
fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.0\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default())
}

/// Renders one `heapmd top` frame from a `/fleet.tsv` dump, appending
/// the fleet events/s reading to `history` for the rate chart.
fn render_top(addr: &str, tsv: &str, history: &mut Vec<f64>) -> String {
    let mut out = String::new();
    let mut tenant_rows = Vec::new();
    let mut rollups = Vec::new();
    for line in tsv.lines() {
        let cols: Vec<&str> = line.split('\t').collect();
        match cols.first().copied() {
            Some("fleet") if cols.len() >= 9 => {
                history.push(cols[6].parse().unwrap_or(0.0));
                out.push_str(&format!(
                    "heapmd top — {addr}  up {}s  tenants {} ({} live, {} anomalous)  events {}  incidents {}  evictions {}\n",
                    cols[1], cols[4], cols[2], cols[3], cols[5], cols[7], cols[8]
                ));
            }
            Some("metric") if cols.len() >= 5 => {
                rollups.push(format!(
                    "  {:<10} p50 {:>10}  p95 {:>10}  max {:>10}",
                    cols[1], cols[2], cols[3], cols[4]
                ));
            }
            Some("tenant") if cols.len() >= 12 => {
                tenant_rows.push(format!(
                    "  {:<24} {:>10} {:>10}/s {:>7} {:>6} {:>5} {:>5}  {:<7} {:<9} {}",
                    cols[1],
                    cols[2],
                    cols[3],
                    cols[4],
                    cols[5],
                    cols[6],
                    cols[7],
                    cols[8],
                    cols[10],
                    cols[11]
                ));
            }
            _ => {}
        }
    }
    if history.len() > 120 {
        let drop = history.len() - 120;
        history.drain(..drop);
    }
    out.push('\n');
    out.push_str(&chart("fleet events/s", history, 72, 8, &[]));
    if !rollups.is_empty() {
        out.push_str("\ndistance from calibrated range (fleet percentiles):\n");
        for r in rollups {
            out.push_str(&r);
            out.push('\n');
        }
    }
    out.push_str(&format!(
        "\n  {:<24} {:>10} {:>12} {:>7} {:>6} {:>5} {:>5}  {:<7} {:<9} {}\n",
        "TENANT",
        "EVENTS",
        "RATE",
        "SAMPLES",
        "CROSS",
        "INCID",
        "BUGS",
        "STATE",
        "METRICS",
        "LAST ANOMALY"
    ));
    if tenant_rows.is_empty() {
        out.push_str("  (no tenants yet)\n");
    }
    for row in tenant_rows {
        out.push_str(&row);
        out.push('\n');
    }
    out
}

fn cmd_top(args: &[String]) -> i32 {
    let Some(addr) = arg_value(args, "--connect") else {
        usage()
    };
    let once = args.iter().any(|a| a == "--once");
    let interval_ms: u64 = num_flag(args, "--interval-ms", "milliseconds", 1000u64);
    let mut history = Vec::new();
    loop {
        let tsv = match http_get(&addr, "/fleet.tsv") {
            Ok(body) => body,
            Err(e) => {
                error!("cannot poll fleet daemon {addr}: {e}");
                return 1;
            }
        };
        let frame = render_top(&addr, &tsv, &mut history);
        if once {
            print!("{frame}");
            return 0;
        }
        // Clear + home between frames so the dashboard repaints in
        // place, like top(1).
        print!("\x1b[2J\x1b[H{frame}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        std::thread::sleep(std::time::Duration::from_millis(interval_ms.max(100)));
    }
}

/// `heapmd query --store DIR …`: answers cross-run and cross-version
/// questions over the columnar run store by scan alone — no replay, no
/// models. Filters are conjunctive; `--metric` both projects columns
/// (only those blocks are read) and picks the aggregation targets.
fn cmd_query(args: &[String]) -> i32 {
    let Some(store_dir) = arg_value(args, "--store") else {
        usage()
    };
    let store = match RunStore::open(&store_dir) {
        Ok(s) => s,
        Err(e) => {
            error!("cannot open run store {store_dir}: {e}");
            return 1;
        }
    };
    if args.iter().any(|a| a == "--describe") {
        let segments = match store.segments() {
            Ok(s) => s,
            Err(e) => {
                error!("cannot list {store_dir}: {e}");
                return 1;
            }
        };
        let ids = store.metric_ids().unwrap_or_default();
        println!("run store {}", store.dir().display());
        println!("  {} segment(s)", segments.len());
        println!("  column encodings: {}", ENCODING_NAMES.join(", "));
        println!("  {} metric column(s): {}", ids.len(), ids.join(", "));
        return 0;
    }
    let opt_num = |flag: &str| -> Option<u64> {
        arg_value(args, flag).map(|v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got {v:?}");
                std::process::exit(2);
            })
        })
    };
    let kind = match arg_value(args, "--kind") {
        None => None,
        Some(v) => match RowKind::from_str(&v) {
            Some(k) => Some(k),
            None => {
                eprintln!("--kind takes train|run|check|serve, got {v:?}");
                return 2;
            }
        },
    };
    let filter = RowFilter {
        workload: arg_value(args, "--workload"),
        version: opt_num("--version"),
        run: arg_value(args, "--run"),
        tenant: arg_value(args, "--tenant"),
        kind,
        since: opt_num("--since"),
        until: opt_num("--until"),
    };
    let metrics = arg_values(args, "--metric");
    let outcome = match store.scan(&filter, (!metrics.is_empty()).then_some(metrics.as_slice())) {
        Ok(o) => o,
        Err(e) => {
            error!("scan of {store_dir} failed: {e}");
            return 1;
        }
    };
    if outcome.segments_skipped > 0 || outcome.segments_salvaged > 0 || outcome.damaged_blocks > 0 {
        eprintln!(
            "warning: degraded scan — {} segment(s) skipped, {} salvaged, {} damaged block(s)",
            outcome.segments_skipped, outcome.segments_salvaged, outcome.damaged_blocks
        );
    }
    // Metric column order: the projection order when given, otherwise
    // the sorted union of ids present in the matching rows.
    let metric_cols: Vec<String> = if metrics.is_empty() {
        let mut set = std::collections::BTreeSet::new();
        for r in &outcome.rows {
            for (n, _) in &r.metrics {
                set.insert(n.clone());
            }
        }
        set.into_iter().collect()
    } else {
        metrics.clone()
    };
    match arg_value(args, "--agg").as_deref() {
        None => {
            let limit = opt_num("--limit").map_or(usize::MAX, |n| n as usize);
            let jsonl = match arg_value(args, "--format").as_deref() {
                None | Some("tsv") => false,
                Some("jsonl") => true,
                Some(v) => {
                    eprintln!("--format takes tsv|jsonl, got {v:?}");
                    return 2;
                }
            };
            if jsonl {
                for r in outcome.rows.iter().take(limit) {
                    let mut m = heapmd_obs::json::JsonObject::new();
                    for id in &metric_cols {
                        if let Some(v) = r.metric(id) {
                            m.field_f64(id, v);
                        }
                    }
                    let mut o = heapmd_obs::json::JsonObject::new();
                    o.field_str("workload", &r.workload)
                        .field_u64("version", r.version)
                        .field_str("run", &r.run)
                        .field_str("tenant", &r.tenant)
                        .field_str("kind", r.kind.as_str())
                        .field_u64("time", r.time)
                        .field_u64("seq", r.seq)
                        .field_u64("fn_entries", r.fn_entries)
                        .field_u64("nodes", r.nodes)
                        .field_u64("edges", r.edges)
                        .field_u64("dangling", r.dangling)
                        .field_raw("metrics", &m.finish());
                    println!("{}", o.finish());
                }
            } else {
                println!(
                    "workload\tversion\trun\ttenant\tkind\ttime\tseq\tfn_entries\tnodes\tedges\tdangling\t{}",
                    metric_cols.join("\t")
                );
                for r in outcome.rows.iter().take(limit) {
                    let vals: Vec<String> = metric_cols
                        .iter()
                        .map(|id| r.metric(id).map(|v| format!("{v}")).unwrap_or_default())
                        .collect();
                    println!(
                        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                        r.workload,
                        r.version,
                        r.run,
                        r.tenant,
                        r.kind,
                        r.time,
                        r.seq,
                        r.fn_entries,
                        r.nodes,
                        r.edges,
                        r.dangling,
                        vals.join("\t")
                    );
                }
            }
            info!("{} row(s) matched", outcome.rows.len());
        }
        Some("stats") => {
            println!("metric\tcount\tmin\tmax\tmean\tp50\tp95");
            for id in &metric_cols {
                let values: Vec<f64> = outcome.rows.iter().filter_map(|r| r.metric(id)).collect();
                if let Some(s) = MetricStats::compute(&values) {
                    println!(
                        "{id}\t{}\t{:.4}\t{:.4}\t{:.4}\t{:.4}\t{:.4}",
                        s.count, s.min, s.max, s.mean, s.p50, s.p95
                    );
                }
            }
        }
        Some("drift") => {
            let [metric] = metrics.as_slice() else {
                eprintln!("--agg drift needs exactly one --metric ID");
                return 2;
            };
            println!("version\tcount\tmean\tp50\tp95\tdrift_pct");
            for d in drift_by_version(&outcome.rows, metric) {
                let drift = d.drift_pct.map(|p| format!("{p:+.2}")).unwrap_or_default();
                println!(
                    "{}\t{}\t{:.4}\t{:.4}\t{:.4}\t{drift}",
                    d.version, d.stats.count, d.stats.mean, d.stats.p50, d.stats.p95
                );
            }
        }
        Some(v) => {
            eprintln!("--agg takes stats|drift, got {v:?}");
            return 2;
        }
    }
    0
}

fn cmd_push(args: &[String]) -> i32 {
    let Some(addr) = arg_value(args, "--to") else {
        usage()
    };
    let Some(tenant) = arg_value(args, "--tenant") else {
        usage()
    };
    let Some(trace_path) = arg_value(args, "--trace") else {
        usage()
    };
    let salvage = args.iter().any(|a| a == "--salvage");
    let (trace, stats) = match heapmd::load_trace_auto(&trace_path, salvage) {
        Ok(loaded) => loaded,
        Err(e) => {
            error!("cannot load trace {trace_path}: {e}");
            return 1;
        }
    };
    if let Some(stats) = &stats {
        report_salvage(&trace_path, stats);
    }
    // `--sample` thins a full-fidelity recording client-side before it
    // crosses the wire: fewer bytes pushed, and the daemon checks with
    // confidence-widened ranges (already-sampled traces push as-is).
    let trace = match sampler_flag(args) {
        Some(config) if trace.sampling().is_none() => {
            let sampled = trace.sampled(config);
            println!(
                "client-side sampling: {} of {} events pushed (effective store rate {:.4})",
                sampled.len(),
                trace.len(),
                sampled.sample_rate()
            );
            sampled
        }
        _ => trace,
    };
    if args.iter().any(|a| a == "--no-resume") {
        // Legacy one-shot push: no session, no retry, v1 preamble.
        return match heapmd::serve::push_trace(&addr, &tenant, &trace) {
            Ok(n) => {
                println!("{n} events pushed to {addr} as tenant {tenant}");
                0
            }
            Err(e) => {
                error!("cannot push trace to {addr}: {e}");
                1
            }
        };
    }
    match heapmd::push_trace_resumable(&addr, &tenant, &trace, session_options(args)) {
        Ok((n, reconnects)) => {
            if reconnects > 0 {
                println!(
                    "{n} events pushed to {addr} as tenant {tenant} ({reconnects} reconnect(s))"
                );
            } else {
                println!("{n} events pushed to {addr} as tenant {tenant}");
            }
            0
        }
        Err(e) => {
            error!("cannot push trace to {addr}: {e}");
            1
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // Stamp process start first so `heapmd_uptime_seconds` covers the
    // whole run in every Prometheus dump.
    heapmd_obs::export::mark_process_start();

    if let Some(level) = take_flag_value(&mut args, "--log-level") {
        match heapmd_obs::Level::parse(&level) {
            Ok(parsed) => heapmd_obs::set_log_level(parsed),
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }
    let obs_out = take_flag_value(&mut args, "--obs-out");
    let obs_prom = take_flag_value(&mut args, "--obs-prom");
    let trace_events = take_flag_value(&mut args, "--trace-events");
    if trace_events.is_some() {
        heapmd_obs::set_enabled(true);
        heapmd_obs::trace_event::set_collecting(true);
    }
    if let Some(path) = &obs_out {
        heapmd_obs::set_enabled(true);
        if let Err(e) = heapmd_obs::export::set_sink_file(Path::new(path)) {
            eprintln!("cannot open --obs-out {path}: {e}");
            std::process::exit(2);
        }
        debug!("streaming obs events to {path}");
    }
    if obs_prom.is_some() {
        heapmd_obs::set_enabled(true);
    }

    let code = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("check") => cmd_check(&args[1..]),
        Some("record") => cmd_record(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("push") => cmd_push(&args[1..]),
        _ => usage(),
    };

    if heapmd_obs::export::sink_active() {
        heapmd_obs::export::emit_counters_event();
        heapmd_obs::export::clear_sink();
    }
    let mut code = code;
    if let Some(path) = &obs_prom {
        if let Err(e) = heapmd_obs::export::write_prometheus_file(Path::new(path)) {
            // A lost metrics dump must not masquerade as a clean exit:
            // typed warning on stderr plus a distinct exit code (unless
            // the run already failed for a stronger reason).
            eprintln!("heapmd: warning[obs-prom-dropped]: metrics dump to {path} failed: {e}");
            if code == 0 {
                code = 4;
            }
        }
    }
    if let Some(path) = &trace_events {
        match heapmd_obs::trace_event::write_chrome_trace(Path::new(path)) {
            Ok(()) => debug!(
                "{} span event(s) written to {path}",
                heapmd_obs::trace_event::event_count()
            ),
            Err(e) => error!("cannot write --trace-events {path}: {e}"),
        }
    }
    std::process::exit(code);
}
