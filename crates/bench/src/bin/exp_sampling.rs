//! Regenerates the PR 10 production-overhead sweep: catalogued-bug
//! detection × sampling config × monitoring overhead over the five
//! commercial programs.
//!
//! With `HEAPMD_BENCH_JSON=<path>` set, appends one
//! `heapmd-sweep-v1` JSON line per (program, config) cell — the rows
//! committed as `BENCH_PR10.json` alongside the `sampling_overhead`
//! criterion lines.

use heapmd_bench::Effort;

fn main() {
    let effort = Effort::from_args();
    let (rows, rendered) = heapmd_bench::experiments::sampling_sweep(effort);
    println!("{rendered}");
    if let Ok(path) = std::env::var("HEAPMD_BENCH_JSON") {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .expect("open bench json sink");
        for r in &rows {
            writeln!(
                f,
                concat!(
                    "{{\"schema\":\"heapmd-sweep-v1\",\"phase\":\"pr10\",",
                    "\"group\":\"sampling_sweep\",\"program\":\"{}\",",
                    "\"config\":\"{}\",\"detected\":{},\"catalogued\":{},",
                    "\"false_positives\":{},\"effective_rate\":{:.6},",
                    "\"ns_per_event_monitored\":{:.3},",
                    "\"ns_per_event_unmonitored\":{:.3},",
                    "\"overhead_pct\":{:.2}}}"
                ),
                r.program,
                r.config,
                r.detected,
                r.catalogued,
                r.false_positives,
                r.effective_rate,
                r.ns_per_event_monitored,
                r.ns_per_event_unmonitored,
                r.overhead_pct(),
            )
            .expect("write bench json line");
        }
    }
}
