//! Regenerates Figure 7(A): globally stable metrics for all 13
//! programs. Pass `--quick` for a reduced input count.

use heapmd_bench::Effort;

fn main() {
    let effort = Effort::from_args();
    let (_, rendered) = heapmd_bench::experiments::fig7a(effort);
    println!("{rendered}");
}
