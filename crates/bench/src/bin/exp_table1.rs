//! Regenerates Table 1: SWAT vs HeapMD on synthesized leak inputs.

use heapmd_bench::Effort;

fn main() {
    let effort = Effort::from_args();
    let (rows, rendered) = heapmd_bench::experiments::table1(effort);
    println!("{rendered}");
    println!("Per-scenario detail (fault id | SWAT | HeapMD):");
    for row in &rows {
        for (id, swat, hm) in &row.detail {
            println!(
                "  {id:<42} {}  {}",
                if *swat { "SWAT+" } else { "SWAT-" },
                if *hm { "HMD+" } else { "HMD-" }
            );
        }
    }
}
