//! Regenerates Table 2: the 40-bug detection campaign across the five
//! commercial programs.

use heapmd_bench::Effort;

fn main() {
    let effort = Effort::from_args();
    let (_, rendered) = heapmd_bench::experiments::table2(effort);
    println!("{rendered}");
}
