//! Regenerates Figure 10: the indegree = 1 range violation on the PC
//! Game (action) program with the scene-tree parent-pointer bug.

use heapmd_bench::Effort;

fn main() {
    let effort = Effort::from_args();
    let result = heapmd_bench::experiments::fig10(effort);
    println!("{}", result.rendered);
    if result.indeg1_violated {
        println!("Indeg=1 violated its calibrated range, as in the paper.");
    } else {
        println!("WARNING: Indeg=1 did not violate its calibrated range.");
    }
}
