//! Regenerates the §4.2 validation: artificially injected bugs in SPEC
//! programs.

use heapmd_bench::Effort;

fn main() {
    let effort = Effort::from_args();
    let (_, rendered) = heapmd_bench::experiments::injection(effort);
    println!("{rendered}");
}
