//! Regenerates Figures 4, 5, and 6: vpr metric series on two inputs,
//! their fluctuation, and the stability statistics.

fn main() {
    let result = heapmd_bench::experiments::fig4_5_6();
    println!("{}", result.rendered);
}
