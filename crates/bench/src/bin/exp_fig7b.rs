//! Regenerates Figure 7(B): stable metrics across five development
//! versions of each commercial program. Pass `--quick` to reduce work.

use heapmd_bench::Effort;

fn main() {
    let effort = Effort::from_args();
    let (_, rendered) = heapmd_bench::experiments::fig7b(effort);
    println!("{rendered}");
}
