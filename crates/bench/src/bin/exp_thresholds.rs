//! Regenerates the §3 threshold-sensitivity claim: moderate increases
//! of the stability thresholds add few or no stable metrics; decreases
//! remove them.

use heapmd_bench::Effort;

fn main() {
    let effort = Effort::from_args();
    let (rows, rendered) = heapmd_bench::experiments::threshold_sensitivity(effort);
    println!("{rendered}");
    let at = |s: f64| {
        rows.iter()
            .find(|(sc, _)| *sc == s)
            .map(|&(_, n)| n)
            .unwrap_or(0)
    };
    if at(0.25) <= at(1.0) && at(1.0) <= at(4.0) {
        println!("monotone in the thresholds, as §3 describes");
    }
    let ratio = at(2.0) as f64 / at(1.0).max(1) as f64;
    println!(
        "2x thresholds add {:.0}% more stable metrics (paper: 'moderate increases add none')",
        (ratio - 1.0) * 100.0
    );
}
