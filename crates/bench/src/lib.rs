//! # heapmd-bench — experiment harness for the HeapMD reproduction
//!
//! One function per paper artifact (Figures 4–10, Tables 1–2), shared
//! by the `exp_*` binaries and the integration tests. Each function
//! returns a structured result and can render itself as text matching
//! the paper's presentation.
//!
//! Every experiment accepts an [`Effort`] so CI can run the same code
//! paths at a fraction of the paper's input counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod swat_baseline;
pub mod table;

/// How many inputs to spend per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// A few inputs per program — minutes of wall-clock, same code
    /// paths. Used by integration tests and `--quick`.
    Quick,
    /// The paper's input counts (Figure 7A: 3–100 inputs per program,
    /// ≥ 25 for calibration).
    Full,
}

impl Effort {
    /// Parses process arguments: any `--quick` selects [`Effort::Quick`].
    pub fn from_args() -> Effort {
        if std::env::args().any(|a| a == "--quick") {
            Effort::Quick
        } else {
            Effort::Full
        }
    }

    /// Scales a paper input count to this effort level.
    pub fn inputs(self, paper: usize) -> usize {
        match self {
            Effort::Full => paper,
            Effort::Quick => paper.clamp(2, 4),
        }
    }

    /// Training inputs for model calibration (paper: minimum 25).
    pub fn training_inputs(self) -> usize {
        match self {
            Effort::Full => 25,
            Effort::Quick => 5,
        }
    }

    /// Checking inputs per scenario.
    pub fn check_inputs(self) -> usize {
        match self {
            Effort::Full => 3,
            Effort::Quick => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effort_scaling() {
        assert_eq!(Effort::Full.inputs(100), 100);
        assert_eq!(Effort::Quick.inputs(100), 4);
        assert_eq!(Effort::Quick.inputs(3), 3);
        assert_eq!(Effort::Quick.inputs(1), 2);
        assert!(Effort::Full.training_inputs() >= 25);
    }
}
