//! The SWAT staleness-based memory-leak detector baseline (Table 1).
//!
//! A reproduction of the behaviourally relevant core of SWAT (Chilimbi
//! & Hauswirth, ASPLOS 2004), the tool the HeapMD paper compares
//! against in its Table 1: SWAT samples heap accesses adaptively and
//! marks objects that have not been touched for a "long" time as
//! leaked. The adaptive sampler itself lives in the `swat` crate
//! (where it also fronts the production-overhead monitoring path);
//! this module is purely the comparison baseline, so it lives with the
//! experiments that use it.
//!
//! What matters for the comparison is the *mechanism gap*:
//!
//! * SWAT tracks **staleness**, so it finds leaks HeapMD cannot —
//!   including *reachable* leaks, whose heap-graph shape stays healthy;
//! * for the same reason SWAT **false-positives on caches**: objects
//!   that are reachable and legitimate but simply not accessed again;
//! * HeapMD tracks **shape**, so it reports no staleness false
//!   positives, at the cost of missing leaks too small to move a
//!   degree metric.
//!
//! Both behaviours fall out of this implementation and are exercised in
//! the Table 1 experiment.

use heapmd::{AllocSite, HeapEvent, MetricSample, Monitor, MonitorCtx, ObjectId};
use serde::Serialize;
use std::collections::HashMap;
use swat::AdaptiveSampler;

/// Configuration for [`SwatDetector`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SwatConfig {
    /// An object is stale (leaked) when it has not been accessed for
    /// this fraction of the events observed so far.
    pub staleness_frac: f64,
    /// Absolute floor on staleness (events): nothing is reported before
    /// the run is at least twice this old, which keeps startup quiet.
    pub min_staleness_events: u64,
    /// Sites with more than this many accesses are sampled at
    /// `1 / decimation` (SWAT's adaptive profiling: hot paths sampled
    /// less).
    pub hot_site_threshold: u64,
    /// Decimation factor for hot sites.
    pub decimation: u64,
    /// Minimum stale objects from one allocation site before the site
    /// is reported (single stragglers are noise).
    pub min_objects: usize,
}

impl Default for SwatConfig {
    fn default() -> Self {
        SwatConfig {
            staleness_frac: 0.5,
            min_staleness_events: 20_000,
            // SWAT decimates hot code paths over hours-long traces; the
            // simulated runs are ~10⁵ events, so the default threshold
            // keeps every access recorded. Lower it to exercise the
            // adaptive behaviour.
            hot_site_threshold: 1_000_000,
            decimation: 16,
            min_objects: 2,
        }
    }
}

/// One reported leak: an allocation site whose surviving objects all
/// went stale.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SwatLeak {
    /// The allocation site.
    pub site: AllocSite,
    /// Stale live objects allocated there.
    pub objects: usize,
    /// Their total size in bytes.
    pub bytes: u64,
    /// Mean staleness (events since last access) of those objects.
    pub mean_staleness: f64,
}

#[derive(Debug, Clone, Copy)]
struct ObjState {
    site: AllocSite,
    size: usize,
    last_access: u64,
}

/// The staleness-based leak detector, attachable to a
/// [`heapmd::Process`] as a [`Monitor`].
#[derive(Debug)]
pub struct SwatDetector {
    config: SwatConfig,
    clock: u64,
    live: HashMap<ObjectId, ObjState>,
    sampler: AdaptiveSampler,
    /// Sites observed leaking at any scan, keyed by site; counts keep
    /// their maximum over scans (programs may free "leaked" memory at
    /// exit — SWAT watches the running program, not the corpse).
    reported: HashMap<AllocSite, SwatLeak>,
    finished: bool,
}

impl SwatDetector {
    /// Creates a detector.
    pub fn new(config: SwatConfig) -> Self {
        SwatDetector {
            sampler: AdaptiveSampler::new(config.hot_site_threshold, config.decimation),
            config,
            clock: 0,
            live: HashMap::new(),
            reported: HashMap::new(),
            finished: false,
        }
    }

    /// Leak reports accumulated over the run's scans, most bytes first.
    pub fn leaks(&self) -> Vec<SwatLeak> {
        let mut leaks: Vec<SwatLeak> = self.reported.values().cloned().collect();
        leaks.sort_by_key(|l| std::cmp::Reverse(l.bytes));
        leaks
    }

    /// Scans the live set for stale objects and folds per-site leak
    /// reports into the accumulated result.
    fn scan(&mut self) {
        let horizon = ((self.clock as f64 * self.config.staleness_frac) as u64)
            .max(self.config.min_staleness_events);
        let mut by_site: HashMap<AllocSite, (usize, u64, u64)> = HashMap::new();
        for st in self.live.values() {
            let staleness = self.clock.saturating_sub(st.last_access);
            if staleness >= horizon {
                let e = by_site.entry(st.site).or_default();
                e.0 += 1;
                e.1 += st.size as u64;
                e.2 += staleness;
            }
        }
        for (site, (objects, bytes, stale_sum)) in by_site {
            if objects < self.config.min_objects {
                continue;
            }
            let leak = SwatLeak {
                site,
                objects,
                bytes,
                mean_staleness: stale_sum as f64 / objects as f64,
            };
            self.reported
                .entry(site)
                .and_modify(|existing| {
                    if leak.objects > existing.objects {
                        *existing = leak.clone();
                    }
                })
                .or_insert(leak);
        }
    }

    /// Returns `true` once the monitored run has finished.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Objects still tracked as live.
    pub fn live_objects(&self) -> usize {
        self.live.len()
    }

    fn touch(&mut self, obj: ObjectId) {
        // Look the site up first so the sampler decision uses the
        // object's own allocation site frequency.
        if let Some(st) = self.live.get(&obj) {
            let site = st.site;
            if self.sampler.record(site) {
                if let Some(st) = self.live.get_mut(&obj) {
                    st.last_access = self.clock;
                }
            }
        }
    }
}

impl Monitor for SwatDetector {
    fn on_event(&mut self, _ctx: &MonitorCtx<'_>, event: &HeapEvent) {
        self.clock += 1;
        match *event {
            HeapEvent::Alloc {
                obj, size, site, ..
            } => {
                self.live.insert(
                    obj,
                    ObjState {
                        site,
                        size,
                        last_access: self.clock,
                    },
                );
            }
            HeapEvent::Free { obj, .. } => {
                self.live.remove(&obj);
            }
            HeapEvent::PtrWrite { src, .. } | HeapEvent::ScalarWrite { src, .. } => {
                self.touch(src);
            }
            HeapEvent::Read { obj } => {
                self.touch(obj);
            }
            HeapEvent::FnEnter { .. } | HeapEvent::FnExit { .. } => {}
        }
    }

    fn on_sample(&mut self, _ctx: &MonitorCtx<'_>, _sample: &MetricSample) {
        self.scan();
    }

    fn on_finish(&mut self, _ctx: &MonitorCtx<'_>) {
        self.finished = true;
        self.scan();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmd::{Process, Settings};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn test_config() -> SwatConfig {
        SwatConfig {
            // Unit-test runs are a few thousand events long.
            min_staleness_events: 500,
            ..SwatConfig::default()
        }
    }

    fn run_with_swat(config: SwatConfig, f: impl FnOnce(&mut Process)) -> Vec<SwatLeak> {
        let mut p = Process::new(Settings::builder().frq(1_000).build().unwrap());
        let swat = Rc::new(RefCell::new(SwatDetector::new(config)));
        p.attach(swat.clone());
        f(&mut p);
        let _ = p.finish("swat-test");
        assert!(swat.borrow().is_finished());
        let leaks = swat.borrow().leaks();
        leaks
    }

    #[test]
    fn leaked_objects_are_reported_by_site() {
        let leaks = run_with_swat(test_config(), |p| {
            // Leak 10 objects early, then churn long enough that they
            // go stale.
            for _ in 0..10 {
                p.enter("leaky");
                p.malloc(64, "leak_site").unwrap();
                p.leave();
            }
            for _ in 0..300 {
                p.enter("churn");
                let a = p.malloc(32, "hot_site").unwrap();
                p.read(a).unwrap();
                p.free(a).unwrap();
                p.leave();
            }
        });
        assert_eq!(leaks.len(), 1, "exactly the leak site: {leaks:?}");
        assert_eq!(leaks[0].objects, 10);
        assert_eq!(leaks[0].bytes, 640);
    }

    #[test]
    fn recently_accessed_objects_are_not_leaks() {
        let leaks = run_with_swat(test_config(), |p| {
            let keep: Vec<_> = (0..10)
                .map(|_| p.malloc(64, "working_set").unwrap())
                .collect();
            for _ in 0..200 {
                p.enter("work");
                for &a in &keep {
                    p.read(a).unwrap();
                }
                p.leave();
            }
        });
        assert!(leaks.is_empty(), "live working set flagged: {leaks:?}");
    }

    #[test]
    fn reachable_stale_cache_is_a_false_positive() {
        // The cache is reachable (not a leak) but never accessed again:
        // SWAT flags it — the Table 1 false-positive mechanism.
        let leaks = run_with_swat(test_config(), |p| {
            for _ in 0..10 {
                p.malloc(48, "cache_entry").unwrap();
            }
            for _ in 0..300 {
                p.enter("busy");
                let a = p.malloc(16, "scratch").unwrap();
                p.read(a).unwrap();
                p.free(a).unwrap();
                p.leave();
            }
        });
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].objects, 10);
    }

    #[test]
    fn freed_objects_never_leak() {
        let leaks = run_with_swat(test_config(), |p| {
            let addrs: Vec<_> = (0..20).map(|_| p.malloc(32, "tmp").unwrap()).collect();
            for a in addrs {
                p.free(a).unwrap();
            }
            for _ in 0..200 {
                p.enter("churn");
                p.leave();
            }
        });
        assert!(leaks.is_empty());
    }

    #[test]
    fn min_objects_filters_single_stragglers() {
        let config = SwatConfig {
            min_objects: 2,
            ..test_config()
        };
        let leaks = run_with_swat(config, |p| {
            p.malloc(64, "lone").unwrap();
            for _ in 0..300 {
                p.enter("churn");
                let a = p.malloc(16, "scratch").unwrap();
                p.read(a).unwrap();
                p.free(a).unwrap();
                p.leave();
            }
        });
        assert!(leaks.is_empty(), "a single stale object is not a report");
    }
}
