//! Plain-text table rendering for experiment output.

/// A simple left-aligned text table.
///
/// # Example
///
/// ```
/// use heapmd_bench::table::Table;
///
/// let mut t = Table::new(vec!["Benchmark", "# Inputs"]);
/// t.row(vec!["vpr".into(), "6".into()]);
/// let s = t.render();
/// assert!(s.contains("Benchmark"));
/// assert!(s.contains("vpr"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: Vec<&str>) -> Self {
        Table {
            headers: headers.into_iter().map(String::from).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with blanks).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a header rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 < widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats an f64 the way the paper's tables do (one decimal place,
/// trailing `.0` kept).
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats an f64 with two decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // Column 2 starts at the same offset in every data line.
        let pos1 = lines[2].find('1').unwrap();
        let pos2 = lines[3].find('2').unwrap();
        assert_eq!(pos1, pos2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["only".into()]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn float_formats() {
        assert_eq!(f1(-0.04), "-0.0");
        assert_eq!(f1(26.44), "26.4");
        assert_eq!(f2(1.005), "1.00");
    }
}
