//! The experiments behind every figure and table of the paper.

use crate::table::{f1, Table};
use crate::Effort;
use faults::FaultPlan;
use heapmd::plot::{chart, RefLine};
use heapmd::{
    AnomalyDetector, AnomalyKind, BugReport, FluctuationStats, HeapModel, MetricKind, Monitor,
    Process, Settings, StableMetric,
};
use std::cell::RefCell;
use std::rc::Rc;
use crate::swat_baseline::{SwatConfig, SwatDetector};
use workloads::bugs::{BugSpec, SwatOnlyLeak, CATALOG, SWAT_ONLY};
use workloads::harness::{run_once, settings_for, train};
use workloads::{commercial_at_version, registry, Input, Workload};

/// The paper's example stable metric per program (Figure 7A column 4).
pub fn paper_example_metric(program: &str) -> Option<MetricKind> {
    Some(match program {
        "twolf" => MetricKind::Outdeg2,
        "crafty" => MetricKind::Leaves,
        "mcf" => MetricKind::Roots,
        "vpr" => MetricKind::Outdeg1,
        "vortex" => MetricKind::Indeg1,
        "gzip" => MetricKind::Leaves,
        "parser" => MetricKind::InEqOut,
        "gcc" => MetricKind::Outdeg1,
        "multimedia" => MetricKind::InEqOut,
        "webapp" => MetricKind::Indeg1,
        "game_sim" => MetricKind::Outdeg1,
        "game_action" => MetricKind::Indeg1,
        "productivity" => MetricKind::Leaves,
        _ => return None,
    })
}

/// The paper's input counts per program (Figure 7A column 2).
pub fn paper_input_count(program: &str) -> usize {
    match program {
        "twolf" | "crafty" | "mcf" => 3,
        "vpr" => 6,
        "vortex" => 5,
        "gzip" | "parser" | "gcc" => 100,
        _ => 50, // the five commercial programs
    }
}

/// Picks the example stable metric for a model: the paper's choice if
/// it calibrated, otherwise the stable metric with the narrowest range
/// (the most useful anomaly detector, per §3.1).
pub fn example_metric(program: &str, model: &HeapModel) -> Option<StableMetric> {
    if let Some(kind) = paper_example_metric(program) {
        if let Some(sm) = model.stable_metric(kind) {
            return Some(*sm);
        }
    }
    model
        .stable
        .iter()
        .min_by(|a, b| a.width().partial_cmp(&b.width()).expect("finite"))
        .copied()
}

// ---------------------------------------------------------------------------
// Figures 4, 5, 6 — vpr metric series, fluctuation, and statistics
// ---------------------------------------------------------------------------

/// Result of the Figures 4–6 experiment.
#[derive(Debug)]
pub struct Fig456 {
    /// Rendered plots + table.
    pub rendered: String,
    /// (metric, input id, mean change, std dev) rows of Figure 6.
    pub stats: Vec<(MetricKind, u32, f64, f64)>,
}

/// Reproduces Figures 4 (metric series), 5 (fluctuation series), and 6
/// (their statistics) on `vpr` with two inputs.
pub fn fig4_5_6() -> Fig456 {
    let w = workloads::spec::Vpr;
    let settings = settings_for(&w);
    let mut rendered = String::new();
    let mut stats = Vec::new();
    let metrics = [MetricKind::InEqOut, MetricKind::Outdeg1];

    for input in Input::set(2) {
        let report = run_once(&w, &input, &mut FaultPlan::new(), &settings);
        for kind in metrics {
            let series = report.series(kind);
            rendered.push_str(&chart(
                &format!(
                    "Figure 4: vpr {kind} on Input{} ({} samples)",
                    input.id + 1,
                    series.len()
                ),
                &series,
                64,
                10,
                &[],
            ));
            rendered.push('\n');
            let trimmed = report.trimmed_series(kind, &settings);
            let changes = heapmd::percent_changes(&trimmed);
            rendered.push_str(&chart(
                &format!("Figure 5: vpr {kind} fluctuation on Input{}", input.id + 1),
                &changes,
                64,
                8,
                &[RefLine {
                    value: 0.0,
                    glyph: '-',
                    label: "zero",
                }],
            ));
            rendered.push('\n');
            let st = FluctuationStats::from_changes(&changes);
            stats.push((kind, input.id, st.mean, st.std_dev));
        }
    }

    let mut t = Table::new(vec!["Figure 6", "Input1", "Input2"]);
    for kind in metrics {
        let row: Vec<(f64, f64)> = stats
            .iter()
            .filter(|(k, _, _, _)| *k == kind)
            .map(|&(_, _, m, s)| (m, s))
            .collect();
        t.row(vec![
            format!("{kind} average"),
            format!("{:.2}%", row[0].0),
            format!("{:.2}%", row[1].0),
        ]);
        t.row(vec![
            format!("{kind} std dev"),
            format!("{:.2}", row[0].1),
            format!("{:.2}", row[1].1),
        ]);
    }
    rendered.push_str(&t.render());
    Fig456 { rendered, stats }
}

// ---------------------------------------------------------------------------
// Figure 7A — globally stable metrics across 13 programs
// ---------------------------------------------------------------------------

/// One row of Figure 7A.
#[derive(Debug, Clone)]
pub struct Fig7aRow {
    /// Program name.
    pub program: String,
    /// Inputs used.
    pub inputs: usize,
    /// Number of globally stable metrics.
    pub stable_count: usize,
    /// The example stable metric (if any metric calibrated).
    pub example: Option<StableMetric>,
}

/// Reproduces Figure 7A: identifies globally stable metrics for all 13
/// programs.
pub fn fig7a(effort: Effort) -> (Vec<Fig7aRow>, String) {
    let mut rows = Vec::new();
    for w in registry() {
        let n = effort.inputs(paper_input_count(w.name()));
        let outcome = train(w.as_ref(), &Input::set(n));
        rows.push(Fig7aRow {
            program: w.name().to_string(),
            inputs: n,
            stable_count: outcome.model.stable.len(),
            example: example_metric(w.name(), &outcome.model),
        });
    }
    let mut t = Table::new(vec![
        "Benchmark",
        "# Inputs",
        "# Stable",
        "Example stable metric",
        "Avg. % rate of change",
        "Std. Dev.",
        "Min % of vertexes",
        "Max % of vertexes",
    ]);
    for r in &rows {
        match &r.example {
            Some(sm) => t.row(vec![
                r.program.clone(),
                r.inputs.to_string(),
                r.stable_count.to_string(),
                sm.kind.to_string(),
                f1(sm.avg_change),
                f1(sm.std_change),
                f1(sm.min),
                f1(sm.max),
            ]),
            None => t.row(vec![
                r.program.clone(),
                r.inputs.to_string(),
                "0".to_string(),
                "(none)".to_string(),
            ]),
        };
    }
    let rendered = format!(
        "Figure 7(A): identifying globally stable metrics\n{}",
        t.render()
    );
    (rows, rendered)
}

// ---------------------------------------------------------------------------
// Figure 7B — stability across development versions
// ---------------------------------------------------------------------------

/// One row of Figure 7B.
#[derive(Debug, Clone)]
pub struct Fig7bRow {
    /// Program name.
    pub program: String,
    /// Inputs per version.
    pub inputs: usize,
    /// Versions analysed.
    pub versions: usize,
    /// Metrics globally stable in *every* version.
    pub common_stable: Vec<MetricKind>,
    /// The example metric's range union over versions.
    pub example: Option<StableMetric>,
}

/// Reproduces Figure 7B: the same metrics stay stable across 5
/// development versions of each commercial program.
pub fn fig7b(effort: Effort) -> (Vec<Fig7bRow>, String) {
    let paper_inputs = 10;
    let n = effort.inputs(paper_inputs);
    let versions: Vec<u8> = match effort {
        Effort::Full => vec![1, 2, 3, 4, 5],
        Effort::Quick => vec![1, 3, 5],
    };
    let apps = [
        "multimedia",
        "webapp",
        "game_sim",
        "game_action",
        "productivity",
    ];
    let mut rows = Vec::new();
    for app in apps {
        let mut models = Vec::new();
        for &v in &versions {
            let w = commercial_at_version(app, v);
            models.push(train(w.as_ref(), &Input::set(n)).model);
        }
        let common: Vec<MetricKind> = MetricKind::ALL
            .iter()
            .copied()
            .filter(|&k| models.iter().all(|m| m.is_stable(k)))
            .collect();
        // Union the example metric's calibration across versions.
        let example = paper_example_metric(app)
            .filter(|k| common.contains(k))
            .or_else(|| common.first().copied())
            .and_then(|kind| {
                let entries: Vec<&StableMetric> = models
                    .iter()
                    .filter_map(|m| m.stable_metric(kind))
                    .collect();
                if entries.is_empty() {
                    return None;
                }
                Some(StableMetric {
                    kind,
                    min: entries.iter().map(|e| e.min).fold(f64::INFINITY, f64::min),
                    max: entries
                        .iter()
                        .map(|e| e.max)
                        .fold(f64::NEG_INFINITY, f64::max),
                    avg_change: entries.iter().map(|e| e.avg_change).sum::<f64>()
                        / entries.len() as f64,
                    std_change: entries.iter().map(|e| e.std_change).sum::<f64>()
                        / entries.len() as f64,
                    stable_runs: entries.iter().map(|e| e.stable_runs).sum(),
                    total_runs: entries.iter().map(|e| e.total_runs).sum(),
                })
            });
        rows.push(Fig7bRow {
            program: app.to_string(),
            inputs: n,
            versions: versions.len(),
            common_stable: common,
            example,
        });
    }
    let mut t = Table::new(vec![
        "Benchmark",
        "# Inputs",
        "# Versions",
        "# Stable (all versions)",
        "Example stable metric",
        "Avg. % rate of change",
        "Std. Dev.",
        "Min %",
        "Max %",
    ]);
    for r in &rows {
        match &r.example {
            Some(sm) => t.row(vec![
                r.program.clone(),
                r.inputs.to_string(),
                r.versions.to_string(),
                r.common_stable.len().to_string(),
                sm.kind.to_string(),
                f1(sm.avg_change),
                f1(sm.std_change),
                f1(sm.min),
                f1(sm.max),
            ]),
            None => t.row(vec![
                r.program.clone(),
                r.inputs.to_string(),
                r.versions.to_string(),
                "0".to_string(),
                "(none)".to_string(),
            ]),
        };
    }
    let rendered = format!(
        "Figure 7(B): stable metrics across development versions\n{}",
        t.render()
    );
    (rows, rendered)
}

// ---------------------------------------------------------------------------
// Shared: run one program with both detectors attached
// ---------------------------------------------------------------------------

/// Outcome of one dual-monitored run.
#[derive(Debug)]
pub struct DualRun {
    /// HeapMD anomaly reports.
    pub heapmd_bugs: Vec<BugReport>,
    /// SWAT leak reports resolved to site names.
    pub swat_leaks: Vec<(String, usize)>,
}

/// Runs `w` once with the anomaly detector and the SWAT baseline both
/// attached.
pub fn dual_run(
    w: &dyn Workload,
    model: &HeapModel,
    input: &Input,
    plan: &mut FaultPlan,
    settings: &Settings,
) -> DualRun {
    let detector = Rc::new(RefCell::new(AnomalyDetector::new(
        model.clone(),
        settings.clone(),
    )));
    let swat = Rc::new(RefCell::new(SwatDetector::new(SwatConfig::default())));
    let mut p = Process::new(settings.clone());
    p.attach(detector.clone() as Rc<RefCell<dyn Monitor>>);
    p.attach(swat.clone() as Rc<RefCell<dyn Monitor>>);
    w.run(&mut p, plan, input)
        .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
    let site_names = p.site_names().to_vec();
    let _ = p.finish(format!("{}/dual-{}", w.name(), input.id));
    let swat_leaks = swat
        .borrow()
        .leaks()
        .into_iter()
        .map(|l| (site_names[l.site.0 as usize].clone(), l.objects))
        .collect();
    let heapmd_bugs = detector.borrow_mut().take_bugs();
    DualRun {
        heapmd_bugs,
        swat_leaks,
    }
}

/// The structure token of a fault id: `"mm.playlist.pop_leak"` →
/// `"mm.playlist"`, which prefixes its allocation-site names.
pub fn fault_site_prefix(fault_id: &str) -> &str {
    fault_id
        .rsplit_once('.')
        .map(|(head, _)| head)
        .unwrap_or(fault_id)
}

// ---------------------------------------------------------------------------
// Table 1 — SWAT vs HeapMD on synthesized leak inputs
// ---------------------------------------------------------------------------

/// One app's Table 1 row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Program name.
    pub program: String,
    /// Leaks found by SWAT.
    pub swat_leaks: usize,
    /// SWAT false positives (clean-run leak reports).
    pub swat_fps: usize,
    /// Leaks found by HeapMD.
    pub heapmd_leaks: usize,
    /// HeapMD false positives.
    pub heapmd_fps: usize,
    /// Scenario-level detail: (fault id, swat hit, heapmd hit).
    pub detail: Vec<(String, bool, bool)>,
}

/// Reproduces Table 1: each leak scenario is injected separately (the
/// paper's "synthesized inputs that cause the programs to exhibit some
/// … of the same leaks"), and both tools run on the same execution.
pub fn table1(effort: Effort) -> (Vec<Table1Row>, String) {
    let apps = ["multimedia", "webapp", "game_sim"];
    let mut rows = Vec::new();
    for app in apps {
        let w = commercial_at_version(app, 1);
        let settings = settings_for(w.as_ref());
        let model = train(w.as_ref(), &Input::set(effort.training_inputs())).model;
        let check_input = Input::new(1000);

        let mut detail = Vec::new();
        let mut swat_found = 0;
        let mut heapmd_found = 0;

        // HeapMD-visible leaks: the typo bugs of Table 2.
        let typo_bugs: Vec<&BugSpec> = CATALOG
            .iter()
            .filter(|b| b.app == app && b.category == heapmd::BugCategory::ProgrammingTypo)
            .collect();
        // SWAT-only extras.
        let extras: Vec<&SwatOnlyLeak> = SWAT_ONLY.iter().filter(|l| l.app == app).collect();

        for bug in &typo_bugs {
            let mut plan = bug.plan();
            let run = dual_run(w.as_ref(), &model, &check_input, &mut plan, &settings);
            let prefix = fault_site_prefix(bug.fault.0);
            let swat_hit = run
                .swat_leaks
                .iter()
                .any(|(site, _)| site.starts_with(prefix));
            let heapmd_hit = !run.heapmd_bugs.is_empty();
            swat_found += swat_hit as usize;
            heapmd_found += heapmd_hit as usize;
            detail.push((bug.fault.0.to_string(), swat_hit, heapmd_hit));
        }
        for leak in &extras {
            let mut plan = leak.plan();
            let run = dual_run(w.as_ref(), &model, &check_input, &mut plan, &settings);
            let prefix = fault_site_prefix(leak.fault.0);
            let swat_hit = run
                .swat_leaks
                .iter()
                .any(|(site, _)| site.starts_with(prefix));
            let heapmd_hit = !run.heapmd_bugs.is_empty();
            swat_found += swat_hit as usize;
            // A HeapMD hit on a SWAT-only scenario would be a
            // fidelity break; count it so the table exposes it.
            heapmd_found += heapmd_hit as usize;
            detail.push((leak.fault.0.to_string(), swat_hit, heapmd_hit));
        }

        // False positives: a clean run checked by both tools.
        let clean = dual_run(
            w.as_ref(),
            &model,
            &check_input,
            &mut FaultPlan::new(),
            &settings,
        );
        let swat_fps = clean.swat_leaks.len();
        let heapmd_fps = clean.heapmd_bugs.len();

        rows.push(Table1Row {
            program: app.to_string(),
            swat_leaks: swat_found,
            swat_fps,
            heapmd_leaks: heapmd_found,
            heapmd_fps,
            detail,
        });
    }
    let mut t = Table::new(vec![
        "Program",
        "SWAT leaks",
        "SWAT FPs",
        "HeapMD leaks",
        "HeapMD FPs",
    ]);
    for r in &rows {
        t.row(vec![
            r.program.clone(),
            r.swat_leaks.to_string(),
            r.swat_fps.to_string(),
            r.heapmd_leaks.to_string(),
            r.heapmd_fps.to_string(),
        ]);
    }
    let rendered = format!(
        "Table 1: memory leaks found by SWAT and HeapMD (per-scenario injection)\n{}",
        t.render()
    );
    (rows, rendered)
}

// ---------------------------------------------------------------------------
// Table 2 — the 40-bug campaign
// ---------------------------------------------------------------------------

/// One app's Table 2 row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Program name.
    pub program: String,
    /// Detected bugs per category: typos, shared state, DS invariants,
    /// indirect.
    pub detected: [usize; 4],
    /// Catalogued bugs per category.
    pub catalogued: [usize; 4],
    /// False positives over the clean check runs.
    pub false_positives: usize,
    /// Bugs that were missed: (fault id, category).
    pub missed: Vec<(String, heapmd::BugCategory)>,
}

fn category_index(c: heapmd::BugCategory) -> usize {
    match c {
        heapmd::BugCategory::ProgrammingTypo => 0,
        heapmd::BugCategory::SharedState => 1,
        heapmd::BugCategory::DataStructureInvariant => 2,
        heapmd::BugCategory::Indirect => 3,
    }
}

/// Reproduces Table 2: trains a clean model per commercial program,
/// injects each of the 40 catalogued bugs individually, and counts
/// detections per category plus false positives on clean inputs.
pub fn table2(effort: Effort) -> (Vec<Table2Row>, String) {
    let apps = [
        "multimedia",
        "webapp",
        "game_sim",
        "game_action",
        "productivity",
    ];
    let mut rows = Vec::new();
    for app in apps {
        let w = commercial_at_version(app, 1);
        let model = train(w.as_ref(), &Input::set(effort.training_inputs())).model;
        let mut detected = [0usize; 4];
        let mut catalogued = [0usize; 4];
        let mut missed = Vec::new();
        for bug in CATALOG.iter().filter(|b| b.app == app) {
            catalogued[category_index(bug.category)] += 1;
            let mut hit = false;
            for k in 0..effort.check_inputs() {
                let input = Input::new(2000 + k as u32);
                let mut plan = bug.plan();
                let bugs = workloads::harness::check(w.as_ref(), &model, &input, &mut plan);
                if !bugs.is_empty() {
                    hit = true;
                    break;
                }
            }
            if hit {
                detected[category_index(bug.category)] += 1;
            } else {
                missed.push((bug.fault.0.to_string(), bug.category));
            }
        }
        // False positives: clean check runs.
        let mut false_positives = 0;
        for k in 0..effort.check_inputs() {
            let input = Input::new(3000 + k as u32);
            let bugs = workloads::harness::check(w.as_ref(), &model, &input, &mut FaultPlan::new());
            false_positives += bugs.len();
        }
        rows.push(Table2Row {
            program: app.to_string(),
            detected,
            catalogued,
            false_positives,
            missed,
        });
    }
    let mut t = Table::new(vec![
        "Program",
        "Typos",
        "Shared state",
        "DS invariants",
        "Indirect",
        "False positives",
    ]);
    let mut totals = [0usize; 4];
    let mut cat_totals = [0usize; 4];
    for r in &rows {
        t.row(vec![
            r.program.clone(),
            format!("{}/{}", r.detected[0], r.catalogued[0]),
            format!("{}/{}", r.detected[1], r.catalogued[1]),
            format!("{}/{}", r.detected[2], r.catalogued[2]),
            format!("{}/{}", r.detected[3], r.catalogued[3]),
            r.false_positives.to_string(),
        ]);
        for i in 0..4 {
            totals[i] += r.detected[i];
            cat_totals[i] += r.catalogued[i];
        }
    }
    t.row(vec![
        "Total".to_string(),
        format!("{}/{}", totals[0], cat_totals[0]),
        format!("{}/{}", totals[1], cat_totals[1]),
        format!("{}/{}", totals[2], cat_totals[2]),
        format!("{}/{}", totals[3], cat_totals[3]),
        rows.iter()
            .map(|r| r.false_positives)
            .sum::<usize>()
            .to_string(),
    ]);
    let mut rendered = format!(
        "Table 2: bugs found by HeapMD (detected/catalogued per category)\n{}",
        t.render()
    );
    for r in &rows {
        for (id, cat) in &r.missed {
            rendered.push_str(&format!("MISSED: {id} ({cat})\n"));
        }
    }
    (rows, rendered)
}

// ---------------------------------------------------------------------------
// Figure 10 — the calibrated-range violation plot
// ---------------------------------------------------------------------------

/// Result of the Figure 10 experiment.
#[derive(Debug)]
pub struct Fig10 {
    /// Rendered plot and report.
    pub rendered: String,
    /// The anomaly reports raised on the buggy run.
    pub bugs: Vec<BugReport>,
    /// Whether Indeg=1 was the (or a) violated metric.
    pub indeg1_violated: bool,
}

/// Reproduces Figure 10: the PC game (action) run with the scene-tree
/// parent-pointer bug drives *indegree = 1* out of its calibrated
/// range.
pub fn fig10(effort: Effort) -> Fig10 {
    let w = commercial_at_version("game_action", 1);
    let settings = settings_for(w.as_ref());
    let model = train(w.as_ref(), &Input::set(effort.training_inputs())).model;
    let spec = CATALOG
        .iter()
        .find(|b| b.fault.0 == "ga.scene_tree.skip_parent")
        .expect("catalogued");

    let input = Input::new(4000);
    let mut plan = spec.plan();
    let report = run_once(w.as_ref(), &input, &mut plan, &settings);
    let bugs = AnomalyDetector::check_report(&model, &settings, &report);

    let series = report.series(MetricKind::Indeg1);
    let mut refs = Vec::new();
    if let Some(sm) = model.stable_metric(MetricKind::Indeg1) {
        refs.push(RefLine {
            value: sm.max,
            glyph: '=',
            label: "calibrated max",
        });
        refs.push(RefLine {
            value: sm.min,
            glyph: '-',
            label: "calibrated min",
        });
    }
    let mut rendered = chart(
        "Figure 10: % of vertexes with indegree = 1, PC Game (action), buggy input",
        &series,
        72,
        14,
        &refs,
    );
    let indeg1_violated = bugs.iter().any(|b| {
        b.metric == MetricKind::Indeg1 && matches!(b.kind, AnomalyKind::RangeViolation { .. })
    });
    rendered.push('\n');
    for b in &bugs {
        rendered.push_str(&format!("REPORT: {b}\n"));
    }
    Fig10 {
        rendered,
        bugs,
        indeg1_violated,
    }
}

// ---------------------------------------------------------------------------
// Figures 8 & 9 — one detected exemplar per taxonomy class
// ---------------------------------------------------------------------------

/// Reproduces the taxonomy of Figures 8/9 as executable exemplars: for
/// one representative bug per category, reports whether it was caught
/// and which functions the call-stack log implicates.
pub fn fig8_9(effort: Effort) -> String {
    let exemplars = [
        (
            "mm.playlist.pop_leak",
            "Figure 8/1: programming typo (leak)",
        ),
        (
            "mm.stream_ring.free_shared_head",
            "Figure 8/2 = Figure 12: shared-state error",
        ),
        (
            "ga.scene_tree.skip_parent",
            "Figure 8/3 = Figure 1/10: data-structure invariant",
        ),
        (
            "ga.world_octree.alias",
            "Figure 8/3(B): oct-DAG (poorly disguised)",
        ),
        (
            "gs.collision_hash.degenerate",
            "Figure 9: indirect performance bug (hash)",
        ),
        (
            "webapp.sitegraph.atypical",
            "Figure 9: indirect logic bug (atypical graph)",
        ),
    ];
    let mut out = String::new();
    let mut models: std::collections::HashMap<String, HeapModel> = Default::default();
    for (fault, title) in exemplars {
        let bug = CATALOG
            .iter()
            .find(|b| b.fault.0 == fault)
            .expect("catalogued");
        let w = commercial_at_version(bug.app, 1);
        let model = models
            .entry(bug.app.to_string())
            .or_insert_with(|| train(w.as_ref(), &Input::set(effort.training_inputs())).model)
            .clone();
        let mut plan = bug.plan();
        let bugs = workloads::harness::check(w.as_ref(), &model, &Input::new(5000), &mut plan);
        out.push_str(&format!("{title}\n  bug: {}\n", bug.description));
        match bugs.first() {
            Some(b) => {
                out.push_str(&format!("  DETECTED: {b}\n"));
                let funcs = b.implicated_functions();
                if !funcs.is_empty() {
                    out.push_str(&format!(
                        "  implicated functions: {}\n",
                        funcs.into_iter().take(4).collect::<Vec<_>>().join(", ")
                    ));
                }
            }
            None => out.push_str("  NOT DETECTED\n"),
        }
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------------
// §4.2 — artificially injected bugs in SPEC programs
// ---------------------------------------------------------------------------

/// Reproduces the paper's validation by artificial injection: enables
/// the data-structure library's default fault ids inside SPEC programs
/// and checks that HeapMD notices.
pub fn injection(effort: Effort) -> (Vec<(String, String, bool)>, String) {
    use sim_ds::fault_ids as ids;
    // Each scenario names a fault whose call-site the program actually
    // exercises (gzip pops its descriptor list, crafty hashes into its
    // transposition table, gcc builds ASTs, …).
    let scenarios: [(&str, faults::FaultId); 6] = [
        ("gzip", ids::LIST_SMALL_LEAK),
        ("crafty", ids::HASH_DEGENERATE),
        ("gcc", ids::BINTREE_SKIP_PARENT),
        ("mcf", ids::LIST_SMALL_LEAK),
        ("mcf", ids::GRAPH_ATYPICAL),
        ("vortex", ids::DLIST_SKIP_PREV),
    ];
    let mut results = Vec::new();
    let mut models: std::collections::HashMap<String, HeapModel> = Default::default();
    for (program, fault) in scenarios {
        let w = registry()
            .into_iter()
            .find(|w| w.name() == program)
            .expect("registered");
        let model = models
            .entry(program.to_string())
            .or_insert_with(|| {
                train(
                    w.as_ref(),
                    &Input::set(effort.inputs(paper_input_count(program)).max(3)),
                )
                .model
            })
            .clone();
        let mut detected = false;
        for k in 0..effort.check_inputs() {
            let mut plan = FaultPlan::single(fault);
            let bugs = workloads::harness::check(
                w.as_ref(),
                &model,
                &Input::new(6000 + k as u32),
                &mut plan,
            );
            if !bugs.is_empty() {
                detected = true;
                break;
            }
        }
        results.push((program.to_string(), fault.0.to_string(), detected));
    }
    let mut t = Table::new(vec!["Program", "Injected fault", "Detected"]);
    for (p, f, d) in &results {
        t.row(vec![
            p.clone(),
            f.clone(),
            if *d { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let rendered = format!(
        "§4.2 validation: artificially injected bugs in SPEC programs\n{}",
        t.render()
    );
    (results, rendered)
}

// ---------------------------------------------------------------------------
// §3 — threshold sensitivity
// ---------------------------------------------------------------------------

/// Reproduces the §3 resilience claim: "Increasing these thresholds
/// moderately does not result in additional metrics being classified as
/// globally-stable. On the other hand, decreasing these thresholds
/// results in fewer metrics being classified as globally-stable."
///
/// Returns, per threshold scale factor, the total stable-metric count
/// across the probed programs.
pub fn threshold_sensitivity(effort: Effort) -> (Vec<(f64, usize)>, String) {
    use heapmd::ModelBuilder;
    let scales = [0.25, 0.5, 1.0, 2.0, 4.0];
    let programs = ["gzip", "parser", "vpr", "multimedia", "productivity"];
    // Collect reports once per program; re-summarize per threshold.
    let mut corpora = Vec::new();
    for name in programs {
        let w = registry()
            .into_iter()
            .find(|w| w.name() == name)
            .expect("registered");
        let settings = settings_for(w.as_ref());
        let n = effort.inputs(6);
        let reports: Vec<_> = Input::set(n)
            .iter()
            .map(|i| run_once(w.as_ref(), i, &mut FaultPlan::new(), &settings))
            .collect();
        corpora.push((name, settings, reports));
    }
    let mut rows = Vec::new();
    let mut t = Table::new(vec![
        "Threshold scale",
        "Avg-chg thr",
        "Std-dev thr",
        "Total stable metrics",
    ]);
    for &scale in &scales {
        let mut total = 0usize;
        for (_, base, reports) in &corpora {
            let settings = Settings::builder()
                .frq(base.frq)
                .avg_change_threshold(base.avg_change_threshold * scale)
                .std_change_threshold(base.std_change_threshold * scale)
                .build()
                .expect("scaled settings valid");
            let mut b = ModelBuilder::new(settings);
            for r in reports {
                b.add_run(r);
            }
            total += b.build().model.stable.len();
        }
        t.row(vec![
            format!("{scale}×"),
            format!("{:.2}%", 1.0 * scale),
            format!("{:.1}", 5.0 * scale),
            total.to_string(),
        ]);
        rows.push((scale, total));
    }
    let rendered = format!(
        "§3 threshold sensitivity (stable-metric count over {} programs)\n{}",
        corpora.len(),
        t.render()
    );
    (rows, rendered)
}

// ---------------------------------------------------------------------------
// PR 10 — production-overhead mode: detection × sampling rate × overhead
// ---------------------------------------------------------------------------

/// One cell of the sampling sweep: a commercial program checked under
/// one sampling config.
#[derive(Debug, Clone)]
pub struct SamplingSweepRow {
    /// Program name.
    pub program: String,
    /// Config label: `exact`, `default` (512/32), or `decim128`.
    pub config: String,
    /// Catalogued bugs detected under this config.
    pub detected: usize,
    /// Catalogued bugs for this program.
    pub catalogued: usize,
    /// Anomalies raised on clean check inputs.
    pub false_positives: usize,
    /// Measured effective store-sampling rate of a clean run.
    pub effective_rate: f64,
    /// Monitored replay cost under this config, ns/event (median).
    pub ns_per_event_monitored: f64,
    /// Unmonitored replay baseline (decode + bare-heap re-execution),
    /// ns/event (median). Identical across configs of one program.
    pub ns_per_event_unmonitored: f64,
}

impl SamplingSweepRow {
    /// Monitoring overhead relative to unmonitored replay, percent
    /// (negative = sampled monitoring is cheaper than re-execution).
    pub fn overhead_pct(&self) -> f64 {
        (self.ns_per_event_monitored / self.ns_per_event_unmonitored - 1.0) * 100.0
    }
}

/// Median of `n` timed runs of `f`, in nanoseconds (one warmup).
fn median_ns(n: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut runs: Vec<u128> = (0..n)
        .map(|_| {
            let t0 = std::time::Instant::now();
            f();
            t0.elapsed().as_nanos()
        })
        .collect();
    runs.sort_unstable();
    runs[runs.len() / 2] as f64
}

/// Unmonitored replay: decode the image and re-execute every event
/// against a bare simulated heap (the deterministic allocator
/// reproduces recorded addresses; a dense `ObjectId -> Addr` map is
/// the only state). This is what running the recorded program without
/// monitoring costs the replay plane — the overhead denominator.
fn reexecute_unmonitored(image: &heapmd::BinaryTraceImage, buf: &mut Vec<sim_heap::HeapEvent>) {
    use sim_heap::{Addr, HeapEvent, SimHeap, NULL};
    let mut heap = SimHeap::new();
    let mut base: Vec<Addr> = Vec::new();
    for entry in image.event_blocks() {
        image
            .decode_block_into(entry, buf)
            .expect("bench image decodes");
        for ev in buf.iter() {
            match *ev {
                HeapEvent::Alloc { obj, size, site, .. } => {
                    let a = heap.alloc(size, site).expect("replayed alloc").addr;
                    let idx = obj.0 as usize;
                    if base.len() <= idx {
                        base.resize(idx + 1, NULL);
                    }
                    base[idx] = a;
                }
                HeapEvent::Free { obj, .. } => {
                    heap.free(base[obj.0 as usize]).expect("replayed free");
                }
                HeapEvent::PtrWrite { src, offset, value, .. } => {
                    let _ = heap.write_ptr(base[src.0 as usize].offset(offset), value);
                }
                HeapEvent::ScalarWrite { src, offset, .. } => {
                    let _ = heap.write_scalar(base[src.0 as usize].offset(offset));
                }
                _ => {}
            }
        }
    }
}

/// The PR 10 sweep: per commercial program × sampling config, measure
/// catalogued-bug detection, clean-run false positives, the measured
/// effective rate, and monitored-replay cost against the unmonitored
/// re-execution baseline.
///
/// Training always runs exact; sampling applies to checking only (the
/// production deployment: models are built once on developer machines,
/// monitoring runs sampled in the field with ranges widened by the
/// effective rate).
pub fn sampling_sweep(effort: Effort) -> (Vec<SamplingSweepRow>, String) {
    use heapmd::{BinaryTraceImage, SamplerConfig};
    use workloads::harness::{check, set_default_sampler};
    let apps = [
        "multimedia",
        "webapp",
        "game_sim",
        "game_action",
        "productivity",
    ];
    // `matched: true` trains the model under the same sampler config
    // instead of checking against the exact model — the deployment
    // that trades detection surface (fewer metrics calibrate stable on
    // noisier sampled runs) for a clean-run false-positive floor (no
    // rate mismatch, so no bias gap and no widening).
    let configs: [(&str, Option<SamplerConfig>, bool); 4] = [
        ("exact", None, false),
        ("default", Some(SamplerConfig::default()), false),
        (
            "decim128",
            Some(SamplerConfig::new(SamplerConfig::DEFAULT_HOT_THRESHOLD, 128)),
            false,
        ),
        ("default_matched", Some(SamplerConfig::default()), true),
    ];
    let timing_iters = match effort {
        Effort::Quick => 3,
        Effort::Full => 7,
    };
    let mut rows = Vec::new();
    for app in apps {
        let w = commercial_at_version(app, 1);
        let settings = settings_for(w.as_ref());
        set_default_sampler(None);
        let model = train(w.as_ref(), &Input::set(effort.training_inputs())).model;
        // One clean recorded trace per program drives every timing
        // measurement and the effective-rate readout.
        let mut p = Process::new(settings.clone());
        p.enable_trace();
        w.run(&mut p, &mut FaultPlan::new(), &Input::new(1000))
            .expect("clean run");
        let trace = p.take_trace().expect("trace enabled");
        let events = trace.len() as f64;
        let image = BinaryTraceImage::open(trace.encode_binary()).expect("encodes");
        let mut buf = Vec::new();
        let unmonitored_ns =
            median_ns(timing_iters, || reexecute_unmonitored(&image, &mut buf)) / events;
        let catalogued = CATALOG.iter().filter(|b| b.app == app).count();
        for (label, config, matched) in configs {
            let model = if matched {
                set_default_sampler(config);
                let m = train(w.as_ref(), &Input::set(effort.training_inputs())).model;
                set_default_sampler(None);
                m
            } else {
                model.clone()
            };
            let monitored_ns = match config {
                None => median_ns(timing_iters, || {
                    heapmd::replay_binary_fused(&image, &settings, "sweep").expect("replays");
                }),
                Some(c) => median_ns(timing_iters, || {
                    heapmd::replay_binary_fused_sampled(&image, &settings, "sweep", c)
                        .expect("replays");
                }),
            } / events;
            let effective_rate = config.map_or(1.0, |c| trace.sampled(c).sample_rate());
            set_default_sampler(config);
            let mut detected = 0;
            for bug in CATALOG.iter().filter(|b| b.app == app) {
                for k in 0..effort.check_inputs() {
                    let mut plan = bug.plan();
                    if !check(w.as_ref(), &model, &Input::new(2000 + k as u32), &mut plan)
                        .is_empty()
                    {
                        detected += 1;
                        break;
                    }
                }
            }
            let mut false_positives = 0;
            for k in 0..effort.check_inputs() {
                false_positives += check(
                    w.as_ref(),
                    &model,
                    &Input::new(3000 + k as u32),
                    &mut FaultPlan::new(),
                )
                .len();
            }
            set_default_sampler(None);
            rows.push(SamplingSweepRow {
                program: app.to_string(),
                config: label.to_string(),
                detected,
                catalogued,
                false_positives,
                effective_rate,
                ns_per_event_monitored: monitored_ns,
                ns_per_event_unmonitored: unmonitored_ns,
            });
        }
    }
    let mut t = Table::new(vec![
        "Program",
        "Config",
        "Detected",
        "False pos",
        "Eff. rate",
        "ns/event (mon)",
        "ns/event (unmon)",
        "Overhead",
    ]);
    for r in &rows {
        t.row(vec![
            r.program.clone(),
            r.config.clone(),
            format!("{}/{}", r.detected, r.catalogued),
            r.false_positives.to_string(),
            format!("{:.4}", r.effective_rate),
            f1(r.ns_per_event_monitored),
            f1(r.ns_per_event_unmonitored),
            format!("{:+.1}%", r.overhead_pct()),
        ]);
    }
    let rendered = format!(
        "PR 10 sweep: detection × sampling rate × overhead (training exact, checking sampled)\n{}",
        t.render()
    );
    (rows, rendered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_prefixes_strip_the_bug_kind() {
        assert_eq!(fault_site_prefix("mm.playlist.pop_leak"), "mm.playlist");
        assert_eq!(
            fault_site_prefix("webapp.session_props.typo_leak"),
            "webapp.session_props"
        );
        assert_eq!(fault_site_prefix("nodots"), "nodots");
    }

    #[test]
    fn every_program_has_a_paper_example_metric_and_input_count() {
        for w in registry() {
            assert!(paper_example_metric(w.name()).is_some(), "{}", w.name());
            assert!(paper_input_count(w.name()) >= 3);
        }
        assert!(paper_example_metric("unknown").is_none());
    }

    #[test]
    fn example_metric_prefers_the_paper_choice() {
        use heapmd::{HeapModel, Settings, StableMetric};
        let sm = |kind: MetricKind, min: f64, max: f64| StableMetric {
            kind,
            min,
            max,
            avg_change: 0.0,
            std_change: 1.0,
            stable_runs: 3,
            total_runs: 3,
        };
        let model = HeapModel {
            version: heapmd::MODEL_FORMAT_VERSION,
            program: "vpr".into(),
            settings: Settings::default(),
            // A narrower non-paper metric AND the paper choice.
            stable: vec![
                sm(MetricKind::Roots, 1.0, 2.0),
                sm(MetricKind::Outdeg1, 5.0, 35.0),
            ],
            unstable: vec![],
            locally_stable: vec![],
            candidate_stable: vec![],
            candidate_unstable: vec![],
            sample_rate: 1.0,
            training_runs: 3,
        };
        assert_eq!(
            example_metric("vpr", &model).unwrap().kind,
            MetricKind::Outdeg1
        );
        // Without the paper choice, fall back to the narrowest range.
        let model2 = HeapModel {
            stable: vec![
                sm(MetricKind::Roots, 1.0, 2.0),
                sm(MetricKind::Indeg2, 5.0, 50.0),
            ],
            ..model
        };
        assert_eq!(
            example_metric("vpr", &model2).unwrap().kind,
            MetricKind::Roots
        );
    }
}
