//! End-to-end tests of the anomaly flight recorder: a bound-crossing
//! workload must leave behind an incident bundle that survives a
//! persistence round trip, salvages after a single bit flip, stays
//! panic-free under the `faults::io` matrix, and renders through the
//! real `heapmd inspect` CLI. The Chrome trace-event export is checked
//! for structural validity with a full JSON parse.

use faults::io::{fault_ids, FaultyReader, FaultyWriter};
use faults::{FaultConfig, FaultPlan};
use heapmd::IncidentBundle;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::process::Command;
use workloads::bugs::CATALOG;
use workloads::harness::{check_with_incidents, train};
use workloads::{registry, Input};

const BIN: &str = env!("CARGO_BIN_EXE_heapmd-cli");
/// A catalogued fault that reliably drives stable metrics across their
/// calibrated bounds on `game_sim`.
const FAULT: &str = "gs.unit_props.typo_leak";
const PROGRAM: &str = "game_sim";
const BUGGY_INPUT: u32 = 88;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("heapmd-incident-e2e").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn program() -> Box<dyn workloads::Workload> {
    registry()
        .into_iter()
        .find(|w| w.name() == PROGRAM)
        .expect("game_sim is registered")
}

fn fault_plan() -> FaultPlan {
    CATALOG
        .iter()
        .find(|b| b.fault.0 == FAULT)
        .expect("catalogued fault")
        .plan()
}

/// Trains a model and produces incident bundles from one buggy check
/// run, returning the written bundle paths plus in-memory bundles.
fn bundles_from_buggy_run(dir: &Path) -> (Vec<PathBuf>, Vec<IncidentBundle>) {
    let w = program();
    let model = train(w.as_ref(), &Input::set(6)).model;
    let outcome = check_with_incidents(
        w.as_ref(),
        &model,
        &Input::new(BUGGY_INPUT),
        &mut fault_plan(),
        Some(dir),
    );
    assert!(
        !outcome.bugs.is_empty(),
        "the catalogued fault must cross a calibrated bound"
    );
    assert_eq!(outcome.bundle_paths.len(), outcome.incidents.len());
    (outcome.bundle_paths, outcome.incidents)
}

#[test]
fn buggy_run_emits_bundles_that_round_trip() {
    let dir = tmp_dir("roundtrip");
    let (paths, incidents) = bundles_from_buggy_run(&dir);
    assert!(!incidents.is_empty(), "bound crossing must emit a bundle");
    for (path, expected) in paths.iter().zip(&incidents) {
        let loaded = IncidentBundle::load(path).expect("bundle loads strictly");
        assert_eq!(&loaded, expected, "persistence round trip is lossless");
        loaded.validate().expect("round-tripped bundle validates");
        assert!(
            !loaded.series.is_empty(),
            "flight recorder series must be captured"
        );
        assert!(
            loaded.degrees.is_some(),
            "degree histogram must be captured"
        );
        assert_eq!(loaded.meta.source, "detector");
    }
    // At least one bundle carries armed-window stacks with implicated
    // functions (the paper's §3.2 circular-buffer payoff).
    assert!(
        incidents
            .iter()
            .any(|b| !b.implicated_functions().is_empty()),
        "no bundle implicated any function"
    );
}

#[test]
fn a_single_bit_flip_is_salvageable() {
    let dir = tmp_dir("bitflip");
    let (paths, incidents) = bundles_from_buggy_run(&dir);
    let mut bytes = std::fs::read(&paths[0]).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    assert!(
        IncidentBundle::from_bytes_strict(&bytes).is_err(),
        "strict parsing must reject the damaged bundle"
    );
    let (salvaged, stats) = IncidentBundle::salvage_bytes(&bytes);
    let salvaged = salvaged.expect("metadata survives a mid-file flip");
    assert_eq!(salvaged.meta, incidents[0].meta, "meta is intact");
    assert!(!stats.complete);
    assert!(stats.skipped <= 2, "resync loses at most two records");
    assert!(stats.corruption.is_some());
}

#[test]
fn faults_io_matrix_is_typed_error_or_valid() {
    let dir = tmp_dir("io-matrix");
    let (paths, _) = bundles_from_buggy_run(&dir);
    let pristine = std::fs::read(&paths[0]).unwrap();

    let read_faults = [
        fault_ids::IO_READ_ERROR,
        fault_ids::IO_SHORT_READ,
        fault_ids::IO_BIT_FLIP_READ,
        fault_ids::IO_EARLY_EOF,
    ];
    let schedules = [
        FaultConfig::always(),
        FaultConfig::always().after(2),
        FaultConfig::every(3),
        FaultConfig::always().limit(1),
    ];
    for fault in read_faults {
        for schedule in &schedules {
            let mut plan = FaultPlan::new();
            plan.enable(fault, *schedule);
            let mut r = FaultyReader::new(&pristine[..], plan);
            let mut got = Vec::new();
            match r.read_to_end(&mut got) {
                // A typed I/O error is an acceptable outcome.
                Err(_) => continue,
                Ok(_) => {
                    // Whatever arrived: strict parsing returns a typed
                    // result, salvage never panics.
                    let _ = IncidentBundle::from_bytes_strict(&got);
                    let (_, stats) = IncidentBundle::salvage_bytes(&got);
                    assert!(stats.total_bytes as usize == got.len());
                }
            }
        }
    }

    let write_faults = [
        fault_ids::IO_WRITE_ERROR,
        fault_ids::IO_SHORT_WRITE,
        fault_ids::IO_BIT_FLIP_WRITE,
        fault_ids::IO_FLUSH_INTERRUPT,
    ];
    for fault in write_faults {
        for schedule in &schedules {
            let mut plan = FaultPlan::new();
            plan.enable(fault, *schedule);
            let mut w = FaultyWriter::new(Vec::new(), plan);
            let write_outcome = pristine
                .chunks(256)
                .try_for_each(|chunk| w.write_all(chunk))
                .and_then(|()| w.flush());
            let written = w.into_inner();
            if write_outcome.is_ok() {
                // Survived writing: the artifact must parse or fail
                // with a typed error; salvage must stay panic-free.
                let _ = IncidentBundle::from_bytes_strict(&written);
            }
            let (_, stats) = IncidentBundle::salvage_bytes(&written);
            assert!(stats.total_bytes as usize == written.len());
        }
    }
}

#[test]
fn cli_run_produces_bundles_and_inspect_renders_them() {
    let dir = tmp_dir("cli");
    let model = dir.join("model.json");
    let incidents = dir.join("incidents");

    let status = Command::new(BIN)
        .args([
            "train",
            PROGRAM,
            "--inputs",
            "6",
            "--out",
            model.to_str().unwrap(),
        ])
        .status()
        .expect("spawn heapmd-cli train");
    assert!(status.success(), "training exited with {status}");

    let out = Command::new(BIN)
        .args([
            "run",
            PROGRAM,
            "--input",
            &BUGGY_INPUT.to_string(),
            "--bug",
            FAULT,
            "--model",
            model.to_str().unwrap(),
            "--incidents",
            incidents.to_str().unwrap(),
        ])
        .output()
        .expect("spawn heapmd-cli run");
    assert_eq!(
        out.status.code(),
        Some(3),
        "anomalies exit with code 3: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("incident bundle written to"),
        "run must report bundle paths:\n{stdout}"
    );

    let bundle = std::fs::read_dir(&incidents)
        .expect("incident dir exists")
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "hmdi"))
        .expect("at least one .hmdi bundle");
    let out = Command::new(BIN)
        .args(["inspect", bundle.to_str().unwrap()])
        .output()
        .expect("spawn heapmd-cli inspect");
    assert!(out.status.success());
    let rendered = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "source   detector",
        "outside calibrated",
        "where    sample #",
    ] {
        assert!(rendered.contains(needle), "missing {needle:?}:\n{rendered}");
    }
    assert!(
        rendered.contains('*'),
        "charts must plot at least one point"
    );
}

#[test]
fn chrome_trace_export_is_structurally_valid_json() {
    let dir = tmp_dir("trace-events");
    let trace = dir.join("trace.json");
    let status = Command::new(BIN)
        .args([
            "--trace-events",
            trace.to_str().unwrap(),
            "run",
            PROGRAM,
            "--input",
            "7",
        ])
        .status()
        .expect("spawn heapmd-cli run");
    assert!(status.success());

    let text = std::fs::read_to_string(&trace).expect("trace file written");
    let value: serde_json::Value =
        serde_json::from_str(&text).expect("trace-event export parses as JSON");
    let events = value
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents is an array");
    assert!(!events.is_empty(), "an instrumented run must emit spans");
    for ev in events {
        assert_eq!(ev.get("ph").and_then(|v| v.as_str()), Some("X"));
        assert_eq!(ev.get("cat").and_then(|v| v.as_str()), Some("heapmd"));
        for key in ["name", "ts", "dur", "pid", "tid", "args"] {
            assert!(ev.get(key).is_some(), "event missing {key}: {ev:?}");
        }
    }
    assert!(value.get("displayTimeUnit").is_some());
}
