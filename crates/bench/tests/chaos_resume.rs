//! Crash/resume integration tests against the real `heapmd-cli` binary:
//! a training run is SIGKILLed mid-flight and resumed from its
//! checkpoint, and the resumed model must be semantically equal to an
//! uninterrupted run's (every stable-metric bound within 1e-9).

use heapmd::HeapModel;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_heapmd-cli");
const PROGRAM: &str = "gzip";
const INPUTS: &str = "6";

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("heapmd-chaos-resume").join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn train_to_completion(out: &Path, resume: bool) {
    let mut cmd = Command::new(BIN);
    cmd.args([
        "train",
        PROGRAM,
        "--inputs",
        INPUTS,
        "--out",
        out.to_str().unwrap(),
        "--checkpoint-every",
        "1",
    ]);
    if resume {
        cmd.arg("--resume");
    }
    let status = cmd.status().expect("spawn heapmd-cli");
    assert!(status.success(), "training exited with {status}");
}

/// Spawns a training run throttled enough to be killed mid-flight,
/// checkpointing after every input.
fn spawn_throttled_victim(out: &Path) -> std::process::Child {
    Command::new(BIN)
        .args([
            "train",
            PROGRAM,
            "--inputs",
            INPUTS,
            "--out",
            out.to_str().unwrap(),
            "--checkpoint-every",
            "1",
        ])
        .env("HEAPMD_TRAIN_THROTTLE_MS", "300")
        .spawn()
        .expect("spawn victim")
}

/// SIGKILLs `victim` as soon as `ckpt` proves at least one input was
/// summarized.
fn kill_once_checkpointed(mut victim: std::process::Child, ckpt: &Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !ckpt.exists() {
        assert!(Instant::now() < deadline, "no checkpoint appeared in 30s");
        if let Some(status) = victim.try_wait().expect("poll victim") {
            panic!("victim finished before it could be killed: {status}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    victim.kill().expect("SIGKILL victim"); // Child::kill is SIGKILL on unix
    victim.wait().expect("reap victim");
}

/// Asserts two models agree semantically: same stable-metric set, every
/// range bound and fluctuation statistic within `tol`.
fn assert_models_equal(a: &HeapModel, b: &HeapModel, tol: f64) {
    let sa = a.stable_metrics();
    let sb = b.stable_metrics();
    assert_eq!(
        sa.iter().map(|m| m.kind).collect::<Vec<_>>(),
        sb.iter().map(|m| m.kind).collect::<Vec<_>>(),
        "different stable-metric sets"
    );
    for (ma, mb) in sa.iter().zip(sb) {
        assert!(
            (ma.min - mb.min).abs() <= tol && (ma.max - mb.max).abs() <= tol,
            "{:?}: range [{}, {}] vs [{}, {}]",
            ma.kind,
            ma.min,
            ma.max,
            mb.min,
            mb.max
        );
        assert!((ma.avg_change - mb.avg_change).abs() <= tol);
        assert!((ma.std_change - mb.std_change).abs() <= tol);
        assert_eq!(ma.stable_runs, mb.stable_runs);
        assert_eq!(ma.total_runs, mb.total_runs);
    }
}

#[test]
fn sigkill_mid_training_then_resume_matches_uninterrupted_run() {
    let dir = tmp_dir("sigkill");
    let reference = dir.join("reference.json");
    let resumed = dir.join("resumed.json");
    let ckpt = dir.join("resumed.json.ckpt");

    // Reference: uninterrupted training.
    train_to_completion(&reference, false);

    // Victim: throttled so the kill window is wide, killed as soon as a
    // checkpoint proves at least one input was summarized.
    let victim = spawn_throttled_victim(&resumed);
    kill_once_checkpointed(victim, &ckpt);
    assert!(
        !resumed.exists(),
        "model must not exist after a mid-training kill"
    );
    assert!(ckpt.exists(), "checkpoint survives the kill");

    // Resume and finish.
    train_to_completion(&resumed, true);
    assert!(!ckpt.exists(), "checkpoint is consumed on success");

    let a = HeapModel::load(&reference).unwrap();
    let b = HeapModel::load(&resumed).unwrap();
    assert_eq!(a.program, b.program);
    assert_models_equal(&a, &b, 1e-9);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_no_checkpoint_trains_from_scratch() {
    let dir = tmp_dir("fresh-resume");
    let out = dir.join("model.json");
    train_to_completion(&out, true);
    let model = HeapModel::load(&out).unwrap();
    assert!(!model.stable_metrics().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_without_checkpointing_still_consumes_the_checkpoint() {
    let dir = tmp_dir("consume-ckpt");
    let out = dir.join("model.json");
    let ckpt = dir.join("model.json.ckpt");
    // Lay down a genuine mid-training checkpoint, then resume WITHOUT
    // --checkpoint-every: the finished run must still delete it, or a
    // later --resume would pick up stale state.
    let victim = spawn_throttled_victim(&out);
    kill_once_checkpointed(victim, &ckpt);
    assert!(ckpt.exists(), "checkpoint survives the kill");
    let status = Command::new(BIN)
        .args([
            "train",
            PROGRAM,
            "--inputs",
            INPUTS,
            "--out",
            out.to_str().unwrap(),
            "--resume",
        ])
        .status()
        .expect("spawn heapmd-cli");
    assert!(status.success());
    assert!(out.exists(), "model written");
    assert!(
        !ckpt.exists(),
        "plain --resume run must consume the checkpoint"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoint_fails_resume_with_a_typed_message() {
    let dir = tmp_dir("corrupt-ckpt");
    let out = dir.join("model.json");
    let ckpt = dir.join("model.json.ckpt");
    std::fs::write(&ckpt, b"{ definitely not a checkpoint").unwrap();
    let output = Command::new(BIN)
        .args([
            "train",
            PROGRAM,
            "--inputs",
            INPUTS,
            "--out",
            out.to_str().unwrap(),
            "--resume",
        ])
        .output()
        .expect("spawn heapmd-cli");
    assert!(
        !output.status.success(),
        "resume from garbage must fail, got {}",
        output.status
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("cannot resume"),
        "stderr should explain the failure: {stderr}"
    );
    assert!(!out.exists(), "no model written on failed resume");
    std::fs::remove_dir_all(&dir).ok();
}
