//! Chaos suite for the columnar run store: segment files damaged
//! through the deterministic fault-injection wrappers must *degrade* —
//! scans keep returning the surviving rows with honest damage counts,
//! never panic, and never accept corrupt data as valid.
//!
//! The store's own unit tests cover clean round-trips and single-flip
//! salvage; this suite stresses the directory-level contract under
//! scripted media corruption and truncation, the way the trace/model
//! persistence chaos suites do.

use faults::io::{fault_ids::IO_BIT_FLIP_READ, FaultyReader};
use faults::{FaultConfig, FaultPlan};
use heapmd_runstore::{RowFilter, RowKind, RunRow, RunStore};
use std::io::Read;
use std::path::Path;

fn row(version: u64, seq: u64, roots: f64) -> RunRow {
    RunRow {
        workload: "chaos".into(),
        version,
        run: format!("input-{seq}"),
        tenant: String::new(),
        kind: RowKind::Check,
        time: 1_700_000_000 + seq,
        seq,
        fn_entries: seq * 100,
        nodes: 40 + seq,
        edges: 39 + seq,
        dangling: 0,
        metrics: vec![
            ("paper.roots".into(), roots),
            ("dist.in_entropy".into(), 1.5 + roots / 100.0),
        ],
    }
}

/// A store with three segments of 32 rows each, versions 1..=3.
fn seeded_store(dir: &Path) -> RunStore {
    let store = RunStore::open(dir).unwrap();
    for version in 1..=3u64 {
        let rows: Vec<RunRow> = (0..32)
            .map(|seq| row(version, seq, 85.0 + version as f64 + seq as f64 / 10.0))
            .collect();
        store.append(&rows).unwrap();
    }
    store
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("heapmd-rs-chaos-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn clean_store_scans_every_row() {
    let dir = temp_dir("clean");
    let store = seeded_store(&dir);
    let out = store.scan(&RowFilter::default(), None).unwrap();
    assert_eq!(out.rows.len(), 96);
    assert_eq!(out.segments_read, 3);
    assert_eq!(out.segments_skipped, 0);
    assert_eq!(out.damaged_blocks, 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_segments_degrade_but_never_panic() {
    // Re-read every segment through a reader that flips one bit every
    // `period` bytes, at several offsets, and rewrite it in place: a
    // deterministic sweep over media-corruption shapes. Every scan must
    // succeed, return only verifiable rows, and count the damage.
    let dir = temp_dir("bitflip");
    for period in [64u64, 256, 1024] {
        for after in [0u64, 13, 399] {
            std::fs::remove_dir_all(&dir).ok();
            let store = seeded_store(&dir);
            for seg in store.segments().unwrap() {
                let pristine = std::fs::read(&seg).unwrap();
                let mut plan = FaultPlan::new();
                plan.enable(IO_BIT_FLIP_READ, FaultConfig::every(period).after(after));
                let mut reader = FaultyReader::new(&pristine[..], plan);
                let mut damaged = Vec::new();
                // Read in small chunks so the per-call fault schedule
                // lands at many distinct offsets.
                let mut buf = [0u8; 57];
                loop {
                    match reader.read(&mut buf) {
                        Ok(0) => break,
                        Ok(n) => damaged.extend_from_slice(&buf[..n]),
                        Err(_) => break,
                    }
                }
                std::fs::write(&seg, &damaged).unwrap();
            }
            let out = store
                .scan(&RowFilter::default(), None)
                .expect("scan must degrade, not fail");
            assert!(out.rows.len() <= 96, "more rows than were written");
            assert_eq!(
                out.segments_read + out.segments_skipped,
                3,
                "every segment accounted for"
            );
            // Each surviving row must carry plausible dimension data —
            // corrupt blocks may be dropped, never mangled into rows.
            for r in &out.rows {
                assert_eq!(r.workload, "chaos");
                assert!((1..=3).contains(&r.version));
                assert!(r.seq < 32);
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_at_any_point_salvages_or_skips() {
    // Chop one segment at a sweep of lengths: the scan keeps working,
    // recovering what the intact prefix blocks still hold.
    let dir = temp_dir("trunc");
    let store = seeded_store(&dir);
    let victim = store.segments().unwrap()[1].clone();
    let pristine = std::fs::read(&victim).unwrap();
    for cut in (0..pristine.len()).step_by(37) {
        std::fs::write(&victim, &pristine[..cut]).unwrap();
        let out = store
            .scan(&RowFilter::default(), None)
            .expect("truncated segment must not fail the scan");
        // The two intact segments always contribute their 64 rows.
        assert!(out.rows.len() >= 64, "intact segments lost at cut {cut}");
        assert!(out.rows.len() <= 96);
        assert_eq!(out.segments_read + out.segments_skipped, 3);
    }
    // Restore: full recovery, nothing sticky about past damage.
    std::fs::write(&victim, &pristine).unwrap();
    let out = store.scan(&RowFilter::default(), None).unwrap();
    assert_eq!(out.rows.len(), 96);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stray_tmp_files_are_not_segments() {
    // A crash between write and rename leaves a `.tmp` sibling; the
    // store must ignore it (and anything else that is not seg-*.hmdr).
    let dir = temp_dir("tmp");
    let store = seeded_store(&dir);
    std::fs::write(dir.join("seg-00000007.hmdr.tmp"), b"torn write").unwrap();
    std::fs::write(dir.join("notes.txt"), b"unrelated").unwrap();
    assert_eq!(store.segments().unwrap().len(), 3);
    let out = store.scan(&RowFilter::default(), None).unwrap();
    assert_eq!(out.rows.len(), 96);
    assert_eq!(out.segments_skipped, 0);
    // And appends keep numbering past the junk without tripping on it.
    store.append(&[row(4, 0, 90.0)]).unwrap();
    assert_eq!(store.segments().unwrap().len(), 4);
    std::fs::remove_dir_all(&dir).ok();
}
