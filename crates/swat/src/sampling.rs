//! Adaptive access sampling.
//!
//! SWAT "samples code paths at a rate inversely proportional to their
//! execution frequency. Thus, rarely executed code paths are sampled at
//! a greater frequency than frequently executed ones" (HeapMD §5).
//! This sampler keys on allocation sites as the code-path proxy: cold
//! sites record every access; once a site crosses a hotness threshold,
//! only every `decimation`-th access is recorded.
//!
//! The per-site counters live in a dense `Vec` indexed by the site id
//! (allocation sites are interned small integers, the same slab idiom
//! the heap graph uses), so the per-event cost is an index and an
//! increment — no hashing on the hot path.

use sim_heap::AllocSite;

/// Per-site adaptive access sampler.
///
/// # Example
///
/// ```
/// use sim_heap::AllocSite;
/// use swat::AdaptiveSampler;
///
/// let mut s = AdaptiveSampler::new(4, 2);
/// let site = AllocSite(1);
/// // Cold phase: everything records.
/// assert!((0..4).all(|_| s.record(site)));
/// // Hot phase: every 2nd access records.
/// let hot: Vec<bool> = (0..4).map(|_| s.record(site)).collect();
/// assert_eq!(hot, [false, true, false, true]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct AdaptiveSampler {
    /// Access count per site id; sites the program never touched cost
    /// nothing beyond the dense slot.
    counts: Vec<u64>,
    hot_threshold: u64,
    decimation: u64,
}

impl AdaptiveSampler {
    /// Creates a sampler: sites stay fully sampled until
    /// `hot_threshold` accesses, then drop to `1/decimation`.
    ///
    /// # Panics
    ///
    /// Panics if `decimation` is zero.
    pub fn new(hot_threshold: u64, decimation: u64) -> Self {
        assert!(decimation > 0, "decimation must be positive");
        AdaptiveSampler {
            counts: Vec::new(),
            hot_threshold,
            decimation,
        }
    }

    #[inline]
    fn slot(&mut self, site: AllocSite) -> &mut u64 {
        let idx = site.0 as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        &mut self.counts[idx]
    }

    /// Registers an access at `site`; returns `true` when the access
    /// should be recorded.
    #[inline]
    pub fn record(&mut self, site: AllocSite) -> bool {
        let hot = self.hot_threshold;
        let dec = self.decimation;
        let count = self.slot(site);
        *count += 1;
        *count <= hot || (*count - hot).is_multiple_of(dec)
    }

    /// Total accesses seen at `site`.
    pub fn accesses(&self, site: AllocSite) -> u64 {
        self.counts.get(site.0 as usize).copied().unwrap_or(0)
    }

    /// Number of distinct sites seen.
    pub fn sites(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_sites_record_everything() {
        let mut s = AdaptiveSampler::new(100, 16);
        let site = AllocSite(7);
        assert!((0..100).all(|_| s.record(site)));
        assert_eq!(s.accesses(site), 100);
    }

    #[test]
    fn hot_sites_decimate() {
        let mut s = AdaptiveSampler::new(2, 4);
        let site = AllocSite(1);
        s.record(site);
        s.record(site); // threshold reached
        let recorded: usize = (0..16).filter(|_| s.record(site)).count();
        assert_eq!(recorded, 4, "1/4 of 16 hot accesses record");
    }

    #[test]
    fn sites_are_independent() {
        let mut s = AdaptiveSampler::new(1, 2);
        let a = AllocSite(1);
        let b = AllocSite(2);
        s.record(a);
        s.record(a);
        assert!(s.record(b), "b is still cold");
        assert_eq!(s.sites(), 2);
        assert_eq!(s.accesses(AllocSite(99)), 0);
    }

    #[test]
    fn sparse_site_ids_are_tolerated() {
        let mut s = AdaptiveSampler::new(1, 2);
        assert!(s.record(AllocSite(1_000)));
        assert_eq!(s.accesses(AllocSite(1_000)), 1);
        assert_eq!(s.sites(), 1);
    }

    #[test]
    fn decimation_one_never_drops() {
        let mut s = AdaptiveSampler::new(0, 1);
        let site = AllocSite(3);
        assert!((0..1_000).all(|_| s.record(site)));
    }

    #[test]
    #[should_panic(expected = "decimation must be positive")]
    fn zero_decimation_panics() {
        AdaptiveSampler::new(1, 0);
    }
}
