//! # swat — SWAT-style adaptive sampling for production overheads
//!
//! The behaviourally relevant core of SWAT's profiling half (Chilimbi
//! & Hauswirth, ASPLOS 2004), which HeapMD §5 names as the path from
//! the paper's 2–3× online slowdown to production overheads: sample
//! code paths at a rate inversely proportional to their execution
//! frequency.
//!
//! This crate is the front of the monitoring hot path:
//!
//! * [`AdaptiveSampler`] — per-allocation-site burst sampling with
//!   dense per-site counters (an index and an increment per event, no
//!   hashing);
//! * [`SampledIngest`] — the event filter built on it: alloc/free
//!   always pass (object counts stay exact), pointer/scalar stores
//!   are burst-sampled per site;
//! * [`SamplerConfig`] / [`SamplingInfo`] — the configured knobs and
//!   the *measured* effective rate, which travels with every sampled
//!   run so calibration can widen ranges honestly.
//!
//! The staleness-based leak *detector* built on this sampler (the
//! Table 1 baseline) lives with the experiments in `heapmd-bench`
//! (`swat_baseline`); this crate stays dependency-light so the
//! monitor core can sit behind it without a cycle.
//!
//! # Example
//!
//! ```
//! use sim_heap::{Addr, AllocSite, HeapEvent, ObjectId};
//! use swat::{SampledIngest, SamplerConfig};
//!
//! let mut filter = SampledIngest::new(SamplerConfig::new(2, 4));
//! let alloc = HeapEvent::Alloc {
//!     obj: ObjectId(0),
//!     addr: Addr::new(0x1000),
//!     size: 24,
//!     site: AllocSite(1),
//! };
//! assert!(filter.admit(&alloc), "allocs always pass");
//! let store = HeapEvent::PtrWrite {
//!     src: ObjectId(0),
//!     offset: 8,
//!     value: Addr::new(0x2000),
//!     old_value: None,
//! };
//! let kept = (0..10).filter(|_| filter.admit(&store)).count();
//! assert_eq!(kept, 4, "2 cold stores + every 4th of the 8 hot");
//! assert!(filter.effective_rate() < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ingest;
mod sampling;

pub use ingest::{SampledIngest, SamplerConfig, SamplingInfo};
pub use sampling::AdaptiveSampler;
