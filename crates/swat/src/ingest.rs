//! The sampled-ingest front end: the production-overhead event filter.
//!
//! [`SampledIngest`] sits in front of every event consumer (the live
//! `Process` graph, the replay engines, the serve daemon shards) and
//! decides, per event, whether the downstream monitor sees it:
//!
//! * **Alloc / Free always pass** — object counts, node counts, and
//!   graph membership stay exact, so the heap graph never sees a store
//!   against an object it was never told about (and the detector's
//!   population denominators are never estimates).
//! * **Pointer and scalar stores are burst-sampled per allocation
//!   site** through [`AdaptiveSampler`]: a site's first
//!   `hot_threshold` stores all record (cold sites keep full
//!   fidelity), then only every `decimation`-th records.
//! * Function enter/exit and reads always pass — they drive sampling
//!   cadence and staleness clocks, not graph shape.
//!
//! The filter keeps exact kept/total store counters; the resulting
//! [`SamplingInfo`] travels with the run (trace metadata, metric
//! report, model artifact) so calibrated ranges can be widened as a
//! function of the *measured* effective rate, never a guess.

use crate::AdaptiveSampler;
use serde::{Deserialize, Serialize};
use sim_heap::{AllocSite, HeapEvent};

/// Sampling knobs, as configured (CLI flags `--sample-hot-threshold`
/// and `--sample-decimation`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// A site's first `hot_threshold` stores all record.
    pub hot_threshold: u64,
    /// Past the threshold, every `decimation`-th store records.
    /// `1` makes the filter an exact passthrough.
    pub decimation: u64,
}

impl SamplerConfig {
    /// The production default: full fidelity for the first 512 stores
    /// per site, 1/32 after. Cold sites — where the anomalies of small
    /// programs live — stay exact; hot-loop churn is decimated.
    pub const DEFAULT_HOT_THRESHOLD: u64 = 512;
    /// Default decimation factor.
    pub const DEFAULT_DECIMATION: u64 = 32;

    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `decimation` is zero.
    pub fn new(hot_threshold: u64, decimation: u64) -> Self {
        assert!(decimation > 0, "decimation must be positive");
        SamplerConfig {
            hot_threshold,
            decimation,
        }
    }

    /// `true` when this config admits every event (decimation 1).
    pub fn is_exact(&self) -> bool {
        self.decimation == 1
    }
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            hot_threshold: Self::DEFAULT_HOT_THRESHOLD,
            decimation: Self::DEFAULT_DECIMATION,
        }
    }
}

/// What a sampled run actually did: the configured knobs plus exact
/// kept/total store counts. Serialized into trace metadata, metric
/// reports, and model artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingInfo {
    /// Configured hot-site threshold.
    pub hot_threshold: u64,
    /// Configured decimation factor.
    pub decimation: u64,
    /// Stores admitted to the graph.
    pub kept_stores: u64,
    /// Stores observed (admitted + dropped).
    pub total_stores: u64,
}

impl SamplingInfo {
    /// The measured effective sampling rate in `(0, 1]`: kept/total
    /// stores, `1.0` when no store was observed (nothing was dropped).
    pub fn rate(&self) -> f64 {
        if self.total_stores == 0 {
            1.0
        } else {
            self.kept_stores as f64 / self.total_stores as f64
        }
    }

    /// The config this run sampled under.
    pub fn config(&self) -> SamplerConfig {
        SamplerConfig {
            hot_threshold: self.hot_threshold,
            decimation: self.decimation.max(1),
        }
    }
}

/// The event filter: owns the per-site sampler and the object→site
/// index needed to key store events by their source allocation site.
#[derive(Debug, Clone)]
pub struct SampledIngest {
    sampler: AdaptiveSampler,
    config: SamplerConfig,
    /// Allocation site per object id (dense: `SimHeap` object ids are
    /// sequential). `u32::MAX` = never allocated in this stream.
    site_of: Vec<u32>,
    kept_stores: u64,
    total_stores: u64,
}

const NO_SITE: u32 = u32::MAX;

impl SampledIngest {
    /// Creates a filter for `config`.
    pub fn new(config: SamplerConfig) -> Self {
        assert!(config.decimation > 0, "decimation must be positive");
        SampledIngest {
            sampler: AdaptiveSampler::new(config.hot_threshold, config.decimation),
            config,
            site_of: Vec::new(),
            kept_stores: 0,
            total_stores: 0,
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> SamplerConfig {
        self.config
    }

    /// Decides whether `event` reaches the monitor. Allocs register
    /// the object's site as a side effect; only pointer/scalar stores
    /// can be rejected.
    #[inline]
    pub fn admit(&mut self, event: &HeapEvent) -> bool {
        match *event {
            HeapEvent::Alloc { obj, site, .. } => {
                let idx = obj.0 as usize;
                if idx >= self.site_of.len() {
                    self.site_of.resize(idx + 1, NO_SITE);
                }
                self.site_of[idx] = site.0;
                true
            }
            HeapEvent::PtrWrite { src, .. } | HeapEvent::ScalarWrite { src, .. } => {
                self.total_stores += 1;
                let site = self
                    .site_of
                    .get(src.0 as usize)
                    .copied()
                    .unwrap_or(NO_SITE);
                // Stores against objects allocated before this stream
                // began (e.g. a salvaged trace suffix) are admitted:
                // dropping them could only lose information, and they
                // cannot be keyed to a site.
                let keep = site == NO_SITE || self.sampler.record(AllocSite(site));
                self.kept_stores += u64::from(keep);
                keep
            }
            _ => true,
        }
    }

    /// The measured outcome so far.
    pub fn info(&self) -> SamplingInfo {
        SamplingInfo {
            hot_threshold: self.config.hot_threshold,
            decimation: self.config.decimation,
            kept_stores: self.kept_stores,
            total_stores: self.total_stores,
        }
    }

    /// Effective sampling rate so far (see [`SamplingInfo::rate`]).
    pub fn effective_rate(&self) -> f64 {
        self.info().rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_heap::{Addr, ObjectId};

    fn alloc(obj: u64, site: u32) -> HeapEvent {
        HeapEvent::Alloc {
            obj: ObjectId(obj),
            addr: Addr::new(0x1000 + obj * 64),
            size: 24,
            site: AllocSite(site),
        }
    }

    fn store(src: u64) -> HeapEvent {
        HeapEvent::PtrWrite {
            src: ObjectId(src),
            offset: 8,
            value: Addr::new(0x2000),
            old_value: None,
        }
    }

    #[test]
    fn allocs_and_frees_always_pass() {
        let mut f = SampledIngest::new(SamplerConfig::new(0, 8));
        for i in 0..100 {
            assert!(f.admit(&alloc(i, 1)));
            assert!(f.admit(&HeapEvent::Free {
                obj: ObjectId(i),
                addr: Addr::new(0x1000 + i * 64),
                size: 24,
            }));
        }
        assert_eq!(f.info().total_stores, 0);
        assert_eq!(f.effective_rate(), 1.0);
    }

    #[test]
    fn hot_site_stores_decimate_and_rate_is_measured() {
        let mut f = SampledIngest::new(SamplerConfig::new(4, 4));
        f.admit(&alloc(0, 7));
        let kept: usize = (0..20).filter(|_| f.admit(&store(0))).count();
        // 4 cold + every 4th of the 16 hot = 8.
        assert_eq!(kept, 8);
        let info = f.info();
        assert_eq!(info.total_stores, 20);
        assert_eq!(info.kept_stores, 8);
        assert!((info.rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn decimation_one_is_exact_passthrough() {
        let mut f = SampledIngest::new(SamplerConfig::new(0, 1));
        f.admit(&alloc(0, 1));
        assert!((0..1000).all(|_| f.admit(&store(0))));
        assert_eq!(f.effective_rate(), 1.0);
    }

    #[test]
    fn unknown_source_objects_are_admitted() {
        let mut f = SampledIngest::new(SamplerConfig::new(0, 1000));
        assert!((0..50).all(|_| f.admit(&store(42))), "no alloc seen");
        assert_eq!(f.info().kept_stores, 50);
    }

    #[test]
    fn sampling_info_round_trips_through_json() {
        let mut f = SampledIngest::new(SamplerConfig::default());
        f.admit(&alloc(0, 1));
        f.admit(&store(0));
        let info = f.info();
        let json = serde_json::to_string(&info).unwrap();
        let back: SamplingInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(info, back);
    }

    #[test]
    fn empty_stream_rate_is_one() {
        let info = SamplingInfo {
            hot_threshold: 0,
            decimation: 32,
            kept_stores: 0,
            total_stores: 0,
        };
        assert_eq!(info.rate(), 1.0);
    }
}
