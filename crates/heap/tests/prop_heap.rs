//! Property-based tests for the simulated heap.
//!
//! Drives the heap with arbitrary operation sequences and checks the
//! allocator's structural invariants: live ranges never overlap, stats
//! stay consistent, interior pointers always resolve to the covering
//! object, and freed addresses only rebind to equal-size-class blocks.

use proptest::prelude::*;
use sim_heap::{Addr, AllocSite, HeapError, SimHeap};

#[derive(Debug, Clone)]
enum Op {
    Alloc(usize),
    FreeNth(usize),
    WriteNth { src: usize, dst: usize, off: u64 },
    ReadNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1usize..256).prop_map(Op::Alloc),
        (0usize..64).prop_map(Op::FreeNth),
        ((0usize..64), (0usize..64), (0u64..4)).prop_map(|(src, dst, off)| Op::WriteNth {
            src,
            dst,
            off: off * 8
        }),
        (0usize..64).prop_map(Op::ReadNth),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn heap_invariants_hold_under_random_ops(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut heap = SimHeap::new();
        let mut live: Vec<Addr> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(size) => {
                    let eff = heap.alloc(size, AllocSite(0)).expect("unbounded heap");
                    live.push(eff.addr);
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let addr = live.remove(n % live.len());
                        heap.free(addr).expect("freeing a live start address");
                    }
                }
                Op::WriteNth { src, dst, off } => {
                    if !live.is_empty() {
                        let s = live[src % live.len()];
                        let d = live[dst % live.len()];
                        let slot = s.offset(off);
                        match heap.write_ptr(slot, d) {
                            Ok(_) => {}
                            // The offset may fall past a small object's end:
                            // into its own tail (torn), into alignment padding
                            // (wild), or into the next object (a legal store
                            // from the heap's point of view).
                            Err(HeapError::TornAccess { .. }) | Err(HeapError::WildAccess(_)) => {}
                            Err(e) => panic!("unexpected write error: {e}"),
                        }
                    }
                }
                Op::ReadNth(n) => {
                    if !live.is_empty() {
                        heap.read(live[n % live.len()]).expect("reading live object");
                    }
                }
            }

            // Invariant: bookkeeping matches the shadow model.
            prop_assert_eq!(heap.live_objects(), live.len());
            prop_assert_eq!(heap.stats().live_objects() as usize, live.len());
        }

        // Invariant: live ranges are disjoint.
        let mut prev_end = 0u64;
        for rec in heap.iter_live() {
            prop_assert!(rec.start().get() >= prev_end, "ranges overlap");
            prev_end = rec.start().get() + rec.size() as u64;
        }

        // Invariant: every live start resolves to itself, interior too.
        for &addr in &live {
            let rec = heap.resolve(addr).expect("live object resolves");
            prop_assert_eq!(rec.start(), addr);
            let last = addr.offset(rec.size() as u64 - 1);
            prop_assert_eq!(heap.resolve(last).expect("interior resolves").start(), addr);
        }
    }

    #[test]
    fn slot_values_follow_last_write(writes in proptest::collection::vec((0u64..4, 0usize..8), 1..50)) {
        let mut heap = SimHeap::new();
        let base = heap.alloc(64, AllocSite(0)).unwrap().addr;
        let targets: Vec<Addr> = (0..8)
            .map(|_| heap.alloc(16, AllocSite(0)).unwrap().addr)
            .collect();
        let mut shadow: std::collections::HashMap<u64, Addr> = Default::default();
        for (slot, t) in writes {
            let off = slot * 8;
            heap.write_ptr(base.offset(off), targets[t]).unwrap();
            shadow.insert(off, targets[t]);
        }
        for (off, want) in shadow {
            prop_assert_eq!(heap.read_ptr(base.offset(off)).unwrap(), Some(want));
        }
    }

    #[test]
    fn address_reuse_only_within_size_class(sizes in proptest::collection::vec(1usize..512, 2..40)) {
        let mut heap = SimHeap::new();
        let allocs: Vec<(Addr, usize)> = sizes
            .iter()
            .map(|&s| (heap.alloc(s, AllocSite(0)).unwrap().addr, s))
            .collect();
        for &(a, _) in &allocs {
            heap.free(a).unwrap();
        }
        // Reallocate the same sizes: every address must come back (LIFO pop
        // order differs, but the multiset of addresses per size class matches).
        use std::collections::HashMap;
        let mut by_class: HashMap<usize, Vec<Addr>> = HashMap::new();
        for &(a, s) in &allocs {
            by_class.entry(s.div_ceil(16)).or_default().push(a);
        }
        for &s in &sizes {
            let addr = heap.alloc(s, AllocSite(0)).unwrap().addr;
            let class = by_class.get_mut(&s.div_ceil(16)).expect("class exists");
            let pos = class.iter().position(|&a| a == addr);
            prop_assert!(pos.is_some(), "recycled address must come from same class");
            class.remove(pos.unwrap());
        }
    }
}
