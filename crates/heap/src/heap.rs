//! The simulated heap itself.

use crate::addr::Addr;
use crate::alloc::{AddressAllocator, AllocatorConfig};
use crate::error::HeapError;
use crate::event::{AllocEffect, FreeEffect, ReallocEffect, WriteEffect};
use crate::object::{AllocSite, ObjectId, ObjectRecord};
use crate::shadow::ShadowMap;
use crate::stats::HeapStats;
use fxhash::{FxHashMap, FxHashSet};

/// Configuration for [`SimHeap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapConfig {
    /// Address-space behaviour (base, alignment, reuse policy).
    pub allocator: AllocatorConfig,
    /// Optional cap on live bytes; allocations beyond it fail with
    /// [`HeapError::OutOfMemory`]. `None` means unbounded.
    pub capacity: Option<usize>,
}

/// A simulated process heap.
///
/// `SimHeap` plays the role of the instrumented allocator plus the
/// instrumented store instructions in the paper's pipeline: every
/// operation validates the access (catching wild writes, double frees,
/// use-after-free on non-recycled addresses) and returns an *effect*
/// describing exactly what changed, which the execution logger feeds to
/// the heap-graph and to any attached monitors.
///
/// Addresses are recycled by default, so a use-after-free may silently
/// succeed against an unrelated object — precisely the real-world
/// behaviour that lets HeapMD observe shared-state bugs as degree-metric
/// anomalies rather than crashes.
///
/// # Example
///
/// ```
/// use sim_heap::{AllocSite, SimHeap};
///
/// # fn main() -> Result<(), sim_heap::HeapError> {
/// let mut heap = SimHeap::new();
/// let node = heap.alloc(24, AllocSite(0))?.addr;
/// let next = heap.alloc(24, AllocSite(0))?.addr;
/// heap.write_ptr(node.offset(8), next)?; // node.next = next
/// let rec = heap.resolve(node.offset(8)).expect("interior pointer resolves");
/// assert_eq!(rec.start(), node);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimHeap {
    allocator: AddressAllocator,
    /// Start address → slab slot of the live object beginning there.
    index: FxHashMap<u64, u32>,
    /// The record slab. Slots on `free_slots` are dead but keep their
    /// slot-vec capacity for reuse.
    records: Vec<ObjectRecord>,
    free_slots: Vec<u32>,
    /// O(1) interior-pointer resolution: address granule → slab slot.
    shadow: ShadowMap,
    /// Live objects the shadow map refused (unaligned or out-of-range
    /// starts), sorted by start address. Empty for the default
    /// allocator configuration.
    spill: Vec<ObjRange>,
    /// Start addresses that were live at some point (for double-free
    /// classification). FxHash: inserted on every allocation.
    ever_allocated: FxHashSet<u64>,
    next_id: u64,
    tick: u64,
    capacity: Option<usize>,
    stats: HeapStats,
}

/// One live allocation in the sorted range index.
#[derive(Debug, Clone, Copy)]
struct ObjRange {
    start: u64,
    end: u64,
    slot: u32,
}

impl Default for SimHeap {
    fn default() -> Self {
        SimHeap::new()
    }
}

impl SimHeap {
    /// Creates a heap with the default configuration (unbounded, 16-byte
    /// alignment, address reuse on).
    pub fn new() -> Self {
        SimHeap::with_config(HeapConfig::default())
    }

    /// Creates a heap with an explicit configuration.
    pub fn with_config(config: HeapConfig) -> Self {
        SimHeap {
            allocator: AddressAllocator::new(config.allocator),
            index: FxHashMap::default(),
            records: Vec::new(),
            free_slots: Vec::new(),
            shadow: ShadowMap::new(),
            spill: Vec::new(),
            ever_allocated: FxHashSet::default(),
            next_id: 0,
            tick: 0,
            capacity: config.capacity,
            stats: HeapStats::default(),
        }
    }

    /// The heap's logical clock: one tick per mutator operation.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Aggregate statistics since construction.
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// Number of live objects.
    pub fn live_objects(&self) -> usize {
        self.index.len()
    }

    /// Bytes currently live.
    pub fn live_bytes(&self) -> u64 {
        self.stats.live_bytes
    }

    /// Allocates `size` bytes, recording `site` as the provenance.
    ///
    /// # Errors
    ///
    /// [`HeapError::ZeroSizeAlloc`] for zero-byte requests, and
    /// [`HeapError::OutOfMemory`] when a configured capacity would be
    /// exceeded.
    pub fn alloc(&mut self, size: usize, site: AllocSite) -> Result<AllocEffect, HeapError> {
        if size == 0 {
            self.stats.faults += 1;
            return Err(HeapError::ZeroSizeAlloc);
        }
        if let Some(cap) = self.capacity {
            if self.stats.live_bytes as usize + size > cap {
                self.stats.faults += 1;
                return Err(HeapError::OutOfMemory {
                    requested: size,
                    live_bytes: self.stats.live_bytes as usize,
                });
            }
        }
        self.tick += 1;
        let frontier_before = self.allocator.frontier();
        let raw = self.allocator.allocate(size);
        let recycled = raw < frontier_before;
        let addr = Addr::new(raw);
        let id = ObjectId(self.next_id);
        self.next_id += 1;
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.records[s as usize].reset(id, addr, size, site, self.tick);
                s
            }
            None => {
                let s = u32::try_from(self.records.len()).expect("heap slab overflow");
                self.records
                    .push(ObjectRecord::new(id, addr, size, site, self.tick));
                s
            }
        };
        let prev = self.index.insert(raw, slot);
        debug_assert!(prev.is_none(), "allocator handed out a live address");
        let end = raw + size as u64;
        if !self.shadow.insert(raw, end, slot) {
            let pos = self.spill.partition_point(|r| r.start < raw);
            self.spill.insert(
                pos,
                ObjRange {
                    start: raw,
                    end,
                    slot,
                },
            );
        }
        self.ever_allocated.insert(raw);

        self.stats.allocs += 1;
        self.stats.bytes_allocated += size as u64;
        self.stats.live_bytes += size as u64;
        self.stats.peak_live_bytes = self.stats.peak_live_bytes.max(self.stats.live_bytes);
        self.stats.peak_live_objects = self.stats.peak_live_objects.max(self.index.len() as u64);
        heapmd_obs::count!("sim_heap_alloc_total");

        Ok(AllocEffect {
            id,
            addr,
            size,
            recycled,
        })
    }

    /// Frees the object starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`HeapError::NullDeref`] for null, [`HeapError::DoubleFree`] when
    /// `addr` was an object start that is no longer live, and
    /// [`HeapError::InvalidFree`] when `addr` never was an object start
    /// (including interior pointers).
    pub fn free(&mut self, addr: Addr) -> Result<FreeEffect, HeapError> {
        if addr.is_null() {
            self.stats.faults += 1;
            return Err(HeapError::NullDeref);
        }
        let raw = addr.get();
        let Some(slot) = self.index.remove(&raw) else {
            self.stats.faults += 1;
            return Err(if self.ever_allocated.contains(&raw) {
                HeapError::DoubleFree(addr)
            } else {
                HeapError::InvalidFree(addr)
            });
        };
        self.tick += 1;
        let size_u64 = self.records[slot as usize].size() as u64;
        if self.shadow.lookup(raw) == Some(slot) {
            self.shadow.remove(raw, raw + size_u64);
        } else {
            let pos = self.spill.partition_point(|r| r.start < raw);
            debug_assert_eq!(self.spill[pos].slot, slot);
            self.spill.remove(pos);
        }
        let rec = &mut self.records[slot as usize];
        let id = rec.id();
        let size = rec.size();
        let slots = rec.take_slots();
        self.free_slots.push(slot);
        self.allocator.release(raw, size);
        self.stats.frees += 1;
        self.stats.live_bytes -= size as u64;
        heapmd_obs::count!("sim_heap_free_total");
        Ok(FreeEffect {
            id,
            addr,
            size,
            slots,
        })
    }

    /// Resizes the object at `addr` to `new_size`, moving it.
    ///
    /// Modelled as free + alloc + copy of the pointer slots that fit in
    /// the new block, matching both C `realloc` semantics and what the
    /// paper's instrumentation would observe.
    ///
    /// # Errors
    ///
    /// Same conditions as [`free`](Self::free) and [`alloc`](Self::alloc).
    pub fn realloc(
        &mut self,
        addr: Addr,
        new_size: usize,
        site: AllocSite,
    ) -> Result<ReallocEffect, HeapError> {
        if new_size == 0 {
            self.stats.faults += 1;
            return Err(HeapError::ZeroSizeAlloc);
        }
        let freed = self.free(addr)?;
        let alloc = self.alloc(new_size, site)?;
        let mut moved = Vec::new();
        for &(off, target) in &freed.slots {
            if (off as usize) + 8 <= new_size {
                let slot = *self
                    .index
                    .get(&alloc.addr.get())
                    .expect("object just allocated");
                self.records[slot as usize].set_slot(off, target);
                moved.push((off, target));
            }
        }
        self.stats.reallocs += 1;
        heapmd_obs::count!("sim_heap_realloc_total");
        Ok(ReallocEffect {
            freed,
            alloc,
            moved_slots: moved,
        })
    }

    /// Stores the pointer `value` at `slot_addr` (which must lie inside a
    /// live object with at least 8 bytes remaining).
    ///
    /// Storing [`NULL`](crate::NULL) clears the slot.
    ///
    /// # Errors
    ///
    /// [`HeapError::NullDeref`], [`HeapError::WildAccess`] when
    /// `slot_addr` is not inside any live object, and
    /// [`HeapError::TornAccess`] when fewer than 8 bytes remain.
    pub fn write_ptr(&mut self, slot_addr: Addr, value: Addr) -> Result<WriteEffect, HeapError> {
        if slot_addr.is_null() {
            self.stats.faults += 1;
            return Err(HeapError::NullDeref);
        }
        // One binary search resolves the containing object; the slab
        // slot is plain data, so the mutable access that follows is
        // borrow-free.
        let raw = slot_addr.get();
        match self.resolve_slot(raw) {
            Some(s) => {
                let tick = self.tick + 1;
                let rec = &mut self.records[s as usize];
                let off = raw - rec.start().get();
                let remaining = rec.size() - off as usize;
                if remaining < 8 {
                    self.stats.faults += 1;
                    return Err(HeapError::TornAccess {
                        addr: slot_addr,
                        remaining,
                    });
                }
                self.tick = tick;
                rec.touch(tick);
                let old = if value.is_null() {
                    rec.clear_slot(off)
                } else {
                    rec.set_slot(off, value)
                };
                self.stats.ptr_writes += 1;
                heapmd_obs::count!("sim_heap_ptr_store_total");
                Ok(WriteEffect {
                    src: rec.id(),
                    offset: off,
                    old_value: old,
                })
            }
            None => {
                self.stats.faults += 1;
                Err(HeapError::WildAccess(slot_addr))
            }
        }
    }

    /// Stores a non-pointer value at `slot_addr`, clearing any pointer
    /// the slot held.
    ///
    /// # Errors
    ///
    /// Same conditions as [`write_ptr`](Self::write_ptr), except scalar
    /// stores may touch the final 7 bytes of an object.
    pub fn write_scalar(&mut self, slot_addr: Addr) -> Result<WriteEffect, HeapError> {
        if slot_addr.is_null() {
            self.stats.faults += 1;
            return Err(HeapError::NullDeref);
        }
        let raw = slot_addr.get();
        match self.resolve_slot(raw) {
            Some(s) => {
                self.tick += 1;
                let tick = self.tick;
                let rec = &mut self.records[s as usize];
                let off = raw - rec.start().get();
                rec.touch(tick);
                let old = rec.clear_slot(off);
                self.stats.scalar_writes += 1;
                Ok(WriteEffect {
                    src: rec.id(),
                    offset: off,
                    old_value: old,
                })
            }
            None => {
                self.stats.faults += 1;
                Err(HeapError::WildAccess(slot_addr))
            }
        }
    }

    /// Reads the pointer stored at `slot_addr`.
    ///
    /// Returns `None` when the slot does not currently hold a pointer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`write_ptr`](Self::write_ptr).
    pub fn read_ptr(&mut self, slot_addr: Addr) -> Result<Option<Addr>, HeapError> {
        if slot_addr.is_null() {
            self.stats.faults += 1;
            return Err(HeapError::NullDeref);
        }
        let raw = slot_addr.get();
        match self.resolve_slot(raw) {
            Some(s) => {
                let tick = self.tick + 1;
                let rec = &mut self.records[s as usize];
                let off = raw - rec.start().get();
                let remaining = rec.size() - off as usize;
                if remaining < 8 {
                    self.stats.faults += 1;
                    return Err(HeapError::TornAccess {
                        addr: slot_addr,
                        remaining,
                    });
                }
                self.tick = tick;
                rec.touch(tick);
                self.stats.reads += 1;
                Ok(rec.slot(off))
            }
            None => {
                self.stats.faults += 1;
                Err(HeapError::WildAccess(slot_addr))
            }
        }
    }

    /// Records a read access to the object containing `addr`.
    ///
    /// # Errors
    ///
    /// [`HeapError::NullDeref`] or [`HeapError::WildAccess`].
    pub fn read(&mut self, addr: Addr) -> Result<ObjectId, HeapError> {
        if addr.is_null() {
            self.stats.faults += 1;
            return Err(HeapError::NullDeref);
        }
        let raw = addr.get();
        match self.resolve_slot(raw) {
            Some(s) => {
                self.tick += 1;
                let tick = self.tick;
                let rec = &mut self.records[s as usize];
                rec.touch(tick);
                self.stats.reads += 1;
                Ok(rec.id())
            }
            None => {
                self.stats.faults += 1;
                Err(HeapError::WildAccess(addr))
            }
        }
    }

    /// Resolves an address (possibly interior) to the live object that
    /// contains it.
    pub fn resolve(&self, addr: Addr) -> Option<&ObjectRecord> {
        self.resolve_slot(addr.get())
            .map(|s| &self.records[s as usize])
    }

    /// The live object starting exactly at `addr`, if any.
    pub fn object_at(&self, addr: Addr) -> Option<&ObjectRecord> {
        self.index
            .get(&addr.get())
            .map(|&s| &self.records[s as usize])
    }

    /// Iterates over live objects in address order.
    pub fn iter_live(&self) -> impl Iterator<Item = &ObjectRecord> {
        let mut slots: Vec<u32> = self.index.values().copied().collect();
        slots.sort_unstable_by_key(|&s| self.records[s as usize].start());
        slots.into_iter().map(move |s| &self.records[s as usize])
    }

    /// Returns `true` when the address range of a former object has been
    /// handed out again (used by tests asserting re-binding behaviour).
    pub fn is_live_start(&self, addr: Addr) -> bool {
        self.index.contains_key(&addr.get())
    }

    /// The slab slot of the live object containing `raw`: one shadow
    /// lookup (bounds-verified, since the tail granule is conservative),
    /// then the spill index for shadow-refused objects.
    #[inline]
    fn resolve_slot(&self, raw: u64) -> Option<u32> {
        if let Some(s) = self.shadow.lookup(raw) {
            let rec = &self.records[s as usize];
            let start = rec.start().get();
            if start <= raw && raw < start + rec.size() as u64 {
                return Some(s);
            }
        }
        if self.spill.is_empty() {
            return None;
        }
        let idx = self.spill.partition_point(|r| r.start <= raw);
        let i = idx.checked_sub(1)?;
        let r = self.spill.get(i)?;
        (raw < r.end).then_some(r.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NULL;

    fn site() -> AllocSite {
        AllocSite(1)
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut h = SimHeap::new();
        let a = h.alloc(40, site()).unwrap();
        assert_eq!(h.live_objects(), 1);
        assert_eq!(h.live_bytes(), 40);
        let eff = h.free(a.addr).unwrap();
        assert_eq!(eff.id, a.id);
        assert_eq!(h.live_objects(), 0);
        assert_eq!(h.live_bytes(), 0);
    }

    #[test]
    fn zero_size_alloc_rejected() {
        let mut h = SimHeap::new();
        assert_eq!(h.alloc(0, site()), Err(HeapError::ZeroSizeAlloc));
        assert_eq!(h.stats().faults, 1);
    }

    #[test]
    fn capacity_enforced() {
        let mut h = SimHeap::with_config(HeapConfig {
            capacity: Some(100),
            ..HeapConfig::default()
        });
        h.alloc(80, site()).unwrap();
        let err = h.alloc(40, site()).unwrap_err();
        assert!(matches!(err, HeapError::OutOfMemory { requested: 40, .. }));
    }

    #[test]
    fn double_free_detected() {
        let mut h = SimHeap::new();
        let a = h.alloc(16, site()).unwrap().addr;
        h.free(a).unwrap();
        assert_eq!(h.free(a), Err(HeapError::DoubleFree(a)));
    }

    #[test]
    fn invalid_free_of_interior_pointer() {
        let mut h = SimHeap::new();
        let a = h.alloc(32, site()).unwrap().addr;
        assert_eq!(
            h.free(a.offset(8)),
            Err(HeapError::InvalidFree(a.offset(8)))
        );
        assert_eq!(h.free(NULL), Err(HeapError::NullDeref));
    }

    #[test]
    fn freed_address_rebinding_changes_identity() {
        let mut h = SimHeap::new();
        let a = h.alloc(24, site()).unwrap();
        h.free(a.addr).unwrap();
        let b = h.alloc(24, site()).unwrap();
        assert_eq!(a.addr, b.addr, "address recycled");
        assert_ne!(a.id, b.id, "identity is fresh");
        assert!(b.recycled);
    }

    #[test]
    fn ptr_write_tracks_slots_and_old_values() {
        let mut h = SimHeap::new();
        let a = h.alloc(32, site()).unwrap().addr;
        let t1 = h.alloc(16, site()).unwrap().addr;
        let t2 = h.alloc(16, site()).unwrap().addr;
        let w1 = h.write_ptr(a.offset(8), t1).unwrap();
        assert_eq!(w1.old_value, None);
        assert_eq!(w1.offset, 8);
        let w2 = h.write_ptr(a.offset(8), t2).unwrap();
        assert_eq!(w2.old_value, Some(t1));
        assert_eq!(h.read_ptr(a.offset(8)).unwrap(), Some(t2));
        // null store clears the slot
        let w3 = h.write_ptr(a.offset(8), NULL).unwrap();
        assert_eq!(w3.old_value, Some(t2));
        assert_eq!(h.read_ptr(a.offset(8)).unwrap(), None);
    }

    #[test]
    fn scalar_write_clears_pointer_slot() {
        let mut h = SimHeap::new();
        let a = h.alloc(16, site()).unwrap().addr;
        let t = h.alloc(16, site()).unwrap().addr;
        h.write_ptr(a, t).unwrap();
        let w = h.write_scalar(a).unwrap();
        assert_eq!(w.old_value, Some(t));
        assert_eq!(h.read_ptr(a).unwrap(), None);
    }

    #[test]
    fn wild_and_torn_accesses_rejected() {
        let mut h = SimHeap::new();
        let a = h.alloc(16, site()).unwrap().addr;
        assert!(matches!(
            h.write_ptr(Addr::new(0xdead_0000), a),
            Err(HeapError::WildAccess(_))
        ));
        assert!(matches!(
            h.write_ptr(a.offset(12), a),
            Err(HeapError::TornAccess { remaining: 4, .. })
        ));
        assert!(matches!(h.write_ptr(NULL, a), Err(HeapError::NullDeref)));
        // scalar writes may touch the tail
        assert!(h.write_scalar(a.offset(12)).is_ok());
    }

    #[test]
    fn use_after_free_on_unrecycled_address_is_wild() {
        let mut h = SimHeap::with_config(HeapConfig {
            allocator: AllocatorConfig {
                reuse_addresses: false,
                ..AllocatorConfig::default()
            },
            capacity: None,
        });
        let a = h.alloc(16, site()).unwrap().addr;
        h.free(a).unwrap();
        assert!(matches!(h.read(a), Err(HeapError::WildAccess(_))));
    }

    #[test]
    fn interior_pointer_resolution() {
        let mut h = SimHeap::new();
        let a = h.alloc(64, site()).unwrap();
        let rec = h.resolve(a.addr.offset(63)).unwrap();
        assert_eq!(rec.id(), a.id);
        assert!(h.resolve(a.addr.offset(64)).is_none());
        assert!(h.object_at(a.addr).is_some());
        assert!(h.object_at(a.addr.offset(8)).is_none());
    }

    #[test]
    fn realloc_preserves_fitting_slots() {
        let mut h = SimHeap::new();
        let a = h.alloc(32, site()).unwrap().addr;
        let t1 = h.alloc(16, site()).unwrap().addr;
        let t2 = h.alloc(16, site()).unwrap().addr;
        h.write_ptr(a, t1).unwrap();
        h.write_ptr(a.offset(24), t2).unwrap();
        let eff = h.realloc(a, 16, site()).unwrap();
        // slot at 0 fits in 16 bytes, slot at 24 does not
        assert_eq!(eff.moved_slots, vec![(0, t1)]);
        let new_addr = eff.alloc.addr;
        assert_eq!(h.read_ptr(new_addr).unwrap(), Some(t1));
        assert_eq!(h.stats().reallocs, 1);
    }

    #[test]
    fn read_updates_staleness() {
        let mut h = SimHeap::new();
        let a = h.alloc(16, site()).unwrap().addr;
        let birth = h.object_at(a).unwrap().last_access_tick();
        h.read(a.offset(4)).unwrap();
        assert!(h.object_at(a).unwrap().last_access_tick() > birth);
    }

    #[test]
    fn stats_track_operations() {
        let mut h = SimHeap::new();
        let a = h.alloc(16, site()).unwrap().addr;
        let b = h.alloc(16, site()).unwrap().addr;
        h.write_ptr(a, b).unwrap();
        h.read(a).unwrap();
        h.free(b).unwrap();
        let s = h.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 1);
        assert_eq!(s.ptr_writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.live_objects(), 1);
        assert_eq!(s.peak_live_bytes, 32);
    }

    #[test]
    fn iter_live_in_address_order() {
        let mut h = SimHeap::new();
        let mut addrs: Vec<Addr> = (0..5).map(|_| h.alloc(16, site()).unwrap().addr).collect();
        addrs.sort();
        let got: Vec<Addr> = h.iter_live().map(|r| r.start()).collect();
        assert_eq!(got, addrs);
    }

    #[test]
    fn free_effect_reports_outgoing_slots() {
        let mut h = SimHeap::new();
        let a = h.alloc(32, site()).unwrap().addr;
        let t = h.alloc(16, site()).unwrap().addr;
        h.write_ptr(a.offset(16), t).unwrap();
        let eff = h.free(a).unwrap();
        assert_eq!(eff.slots, vec![(16, t)]);
    }
}
