//! Shadow address map: O(1) interior-pointer resolution.
//!
//! Sorted-vector range indexes resolve an address in O(log n), but pay
//! O(n) `Vec::insert`/`remove` memmoves whenever the allocator recycles
//! an address into the middle of the live span — and recycling is the
//! *common* case for the churn-heavy workloads HeapMD cares about. At a
//! few thousand live objects that memmove dominates the whole ingest
//! path.
//!
//! [`ShadowMap`] replaces the sorted vector with a radix page table over
//! the simulated address space, in the style of ASan/memory-sanitizer
//! shadow memory: one `u32` slot value per 8-byte granule, reachable in
//! three dependent loads. Marking an object on alloc and clearing it on
//! free cost O(size / 8); lookup is O(1) and independent of the live-set
//! size.
//!
//! The map is *conservative at the tail granule*: an object whose size
//! is not a multiple of 8 marks the final partial granule too, so the
//! caller must verify `start <= raw < end` against its own record before
//! trusting a hit. Two live objects can never claim the same granule as
//! long as every inserted start is 8-aligned and ranges are disjoint —
//! the conditions [`ShadowMap::insert`] enforces by *refusing* the
//! insert (returning `false`) so the caller can fall back to a spill
//! index for irregular objects.
//!
//! Memory: pages are materialized lazily, 32 KiB of shadow per 64 KiB of
//! touched address space, and reused across alloc/free churn. Addresses
//! at or above 2^40 are refused (simulated heaps bump upward from
//! [`AllocatorConfig::base`](crate::AllocatorConfig); nothing real gets
//! near 2^40).

/// Granule size: one shadow slot per 8 bytes of address space.
pub const GRANULE_BITS: u32 = 3;
/// One page of shadow covers 64 KiB of address space.
const PAGE_BITS: u32 = 16;
/// One L2 directory covers 256 MiB of address space.
const L2_BITS: u32 = 28;
/// Addresses must fall below 2^40 (4096 L1 entries).
const ADDR_BITS: u32 = 40;

const GRANULES_PER_PAGE: usize = 1 << (PAGE_BITS - GRANULE_BITS);
const PAGES_PER_L2: usize = 1 << (L2_BITS - PAGE_BITS);
const MAX_L1: usize = 1 << (ADDR_BITS - L2_BITS);

/// Sentinel for an unclaimed granule.
pub const EMPTY: u32 = u32::MAX;

type Page = [u32; GRANULES_PER_PAGE];
type L2 = Vec<Option<Box<Page>>>;

/// A lazily-populated radix shadow map from address granules to `u32`
/// slot values.
///
/// # Example
///
/// ```
/// use sim_heap::ShadowMap;
///
/// let mut shadow = ShadowMap::new();
/// assert!(shadow.insert(0x1000_0000, 0x1000_0018, 7));
/// assert_eq!(shadow.lookup(0x1000_0010), Some(7));
/// shadow.remove(0x1000_0000, 0x1000_0018);
/// assert_eq!(shadow.lookup(0x1000_0010), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShadowMap {
    l1: Vec<Option<Box<L2>>>,
}

impl ShadowMap {
    /// Creates an empty map. No shadow is allocated until the first
    /// insert.
    pub fn new() -> Self {
        ShadowMap::default()
    }

    /// Claims every granule intersecting `[start, end)` for `slot`.
    ///
    /// Returns `false` — claiming nothing — when the range cannot be
    /// represented exactly: `start` not 8-aligned, an empty or inverted
    /// range, an address at or beyond 2^40, a `slot` equal to the
    /// [`EMPTY`] sentinel, or any intersecting granule already claimed
    /// (overlapping ranges). The caller keeps such objects in its spill
    /// index instead.
    pub fn insert(&mut self, start: u64, end: u64, slot: u32) -> bool {
        if start & ((1 << GRANULE_BITS) - 1) != 0
            || start >= end
            || end > 1 << ADDR_BITS
            || slot == EMPTY
        {
            return false;
        }
        let g0 = start >> GRANULE_BITS;
        let g1 = end.div_ceil(1 << GRANULE_BITS);
        // Page-local fast path: the whole object falls inside one shadow
        // page (any object under 64 KiB that doesn't straddle a page
        // edge), so check-and-mark is two passes over one slice instead
        // of a radix walk per granule.
        if g0 >> (PAGE_BITS - GRANULE_BITS) == (g1 - 1) >> (PAGE_BITS - GRANULE_BITS) {
            let i0 = (g0 as usize) & (GRANULES_PER_PAGE - 1);
            let n = (g1 - g0) as usize;
            let page = self.page_mut(start);
            let claim = &mut page[i0..i0 + n];
            if claim.iter().any(|&v| v != EMPTY) {
                return false;
            }
            claim.fill(slot);
            return true;
        }
        // First pass: refuse on any collision so a failed insert has no
        // effect (the caller will spill the whole object).
        for g in g0..g1 {
            if self.granule(g << GRANULE_BITS) != EMPTY {
                return false;
            }
        }
        for g in g0..g1 {
            *self.granule_mut(g << GRANULE_BITS) = slot;
        }
        true
    }

    /// Clears every granule intersecting `[start, end)`.
    ///
    /// Only call for ranges previously claimed via a successful
    /// [`insert`](Self::insert) (spilled objects never touch the map).
    pub fn remove(&mut self, start: u64, end: u64) {
        let g0 = start >> GRANULE_BITS;
        let g1 = end.div_ceil(1 << GRANULE_BITS);
        if g0 >> (PAGE_BITS - GRANULE_BITS) == (g1 - 1) >> (PAGE_BITS - GRANULE_BITS) {
            let i0 = (g0 as usize) & (GRANULES_PER_PAGE - 1);
            let n = (g1 - g0) as usize;
            let page = self.page_mut(start);
            page[i0..i0 + n].fill(EMPTY);
            return;
        }
        for g in g0..g1 {
            *self.granule_mut(g << GRANULE_BITS) = EMPTY;
        }
    }

    /// The slot claiming the granule containing `raw`, if any.
    ///
    /// The tail granule of an odd-sized object is claimed conservatively,
    /// so the caller must bounds-check a hit against the object's exact
    /// `[start, end)` before trusting it.
    #[inline]
    pub fn lookup(&self, raw: u64) -> Option<u32> {
        let l1i = (raw >> L2_BITS) as usize;
        let l2 = self.l1.get(l1i)?.as_ref()?;
        let page = l2[(raw >> PAGE_BITS) as usize & (PAGES_PER_L2 - 1)].as_ref()?;
        let v = page[(raw >> GRANULE_BITS) as usize & (GRANULES_PER_PAGE - 1)];
        (v != EMPTY).then_some(v)
    }

    /// Current granule value without materializing pages.
    fn granule(&self, raw: u64) -> u32 {
        self.lookup(raw).unwrap_or(EMPTY)
    }

    /// Mutable granule slot, materializing directory levels on demand.
    fn granule_mut(&mut self, raw: u64) -> &mut u32 {
        let page = self.page_mut(raw);
        &mut page[(raw >> GRANULE_BITS) as usize & (GRANULES_PER_PAGE - 1)]
    }

    /// The whole shadow page containing `raw`, materializing directory
    /// levels on demand.
    fn page_mut(&mut self, raw: u64) -> &mut Page {
        let l1i = (raw >> L2_BITS) as usize;
        debug_assert!(l1i < MAX_L1, "address beyond shadow range");
        if self.l1.len() <= l1i {
            self.l1.resize_with(l1i + 1, || None);
        }
        let l2 = self.l1[l1i].get_or_insert_with(|| {
            let mut v = Vec::new();
            v.resize_with(PAGES_PER_L2, || None);
            Box::new(v)
        });
        l2[(raw >> PAGE_BITS) as usize & (PAGES_PER_L2 - 1)]
            .get_or_insert_with(|| Box::new([EMPTY; GRANULES_PER_PAGE]))
    }

    /// Clears every claimed granule while keeping the materialized
    /// radix structure — directory levels and pages stay allocated —
    /// so a pooled consumer can reuse one warmed map across streams
    /// instead of re-faulting pages in.
    pub fn clear(&mut self) {
        for l2 in self.l1.iter_mut().flatten() {
            for page in l2.iter_mut().flatten() {
                page.fill(EMPTY);
            }
        }
    }

    /// Approximate heap footprint of the materialized shadow, in bytes.
    pub fn shadow_bytes(&self) -> usize {
        let mut bytes = self.l1.capacity() * size_of::<Option<Box<L2>>>();
        for l2 in self.l1.iter().flatten() {
            bytes += PAGES_PER_L2 * size_of::<Option<Box<Page>>>();
            bytes += l2.iter().flatten().count() * size_of::<Page>();
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_resolves_nothing() {
        let s = ShadowMap::new();
        assert_eq!(s.lookup(0), None);
        assert_eq!(s.lookup(0x1000_0000), None);
        assert_eq!(s.lookup(u64::MAX), None);
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut s = ShadowMap::new();
        assert!(s.insert(0x1000_0000, 0x1000_0020, 3));
        for off in 0..0x20 {
            assert_eq!(s.lookup(0x1000_0000 + off), Some(3), "offset {off}");
        }
        assert_eq!(s.lookup(0x1000_0020), None);
        assert_eq!(s.lookup(0x0fff_ffff), None);
        s.remove(0x1000_0000, 0x1000_0020);
        assert_eq!(s.lookup(0x1000_0000), None);
    }

    #[test]
    fn odd_size_marks_tail_granule_conservatively() {
        let mut s = ShadowMap::new();
        assert!(s.insert(0x100, 0x114, 9)); // 20 bytes: granules 0x20..0x23
        assert_eq!(s.lookup(0x113), Some(9));
        // Conservative: the tail granule covers up to 0x118.
        assert_eq!(s.lookup(0x117), Some(9));
        assert_eq!(s.lookup(0x118), None);
    }

    #[test]
    fn unaligned_or_bad_ranges_are_refused() {
        let mut s = ShadowMap::new();
        assert!(!s.insert(0x104, 0x120, 1), "unaligned start");
        assert!(!s.insert(0x100, 0x100, 1), "empty range");
        assert!(!s.insert(0x120, 0x100, 1), "inverted range");
        assert!(!s.insert(1 << 40, (1 << 40) + 8, 1), "beyond range");
        assert!(!s.insert(0x100, 0x108, EMPTY), "sentinel slot");
        assert_eq!(s.lookup(0x100), None, "refused inserts claim nothing");
    }

    #[test]
    fn overlap_is_refused_without_side_effects() {
        let mut s = ShadowMap::new();
        assert!(s.insert(0x100, 0x120, 1));
        assert!(!s.insert(0x118, 0x130, 2), "granule collision");
        assert_eq!(s.lookup(0x118), Some(1), "original claim intact");
        assert_eq!(s.lookup(0x128), None, "failed insert marked nothing");
        // Disjoint follow-up succeeds.
        assert!(s.insert(0x120, 0x130, 2));
        assert_eq!(s.lookup(0x128), Some(2));
    }

    #[test]
    fn reuse_after_remove() {
        let mut s = ShadowMap::new();
        assert!(s.insert(0x100, 0x118, 1));
        s.remove(0x100, 0x118);
        assert!(s.insert(0x100, 0x140, 2), "freed granules are reclaimable");
        assert_eq!(s.lookup(0x100), Some(2));
    }

    #[test]
    fn spans_page_and_directory_boundaries() {
        let mut s = ShadowMap::new();
        let page_edge = (1u64 << PAGE_BITS) - 8;
        assert!(s.insert(page_edge, page_edge + 64, 5));
        assert_eq!(s.lookup(page_edge), Some(5));
        assert_eq!(s.lookup(1 << PAGE_BITS), Some(5));
        let l2_edge = (1u64 << L2_BITS) - 16;
        assert!(s.insert(l2_edge, l2_edge + 64, 6));
        assert_eq!(s.lookup(l2_edge + 32), Some(6));
    }

    #[test]
    fn shadow_bytes_reports_materialized_pages() {
        let mut s = ShadowMap::new();
        assert_eq!(s.shadow_bytes(), 0);
        assert!(s.insert(0x1000_0000, 0x1000_0010, 1));
        let one_page = s.shadow_bytes();
        assert!(one_page >= size_of::<Page>());
        // Same page: no growth.
        assert!(s.insert(0x1000_0100, 0x1000_0110, 2));
        assert_eq!(s.shadow_bytes(), one_page);
    }
}
