//! Address-space management: a segmented bump allocator with size-class
//! free lists.
//!
//! Address *reuse* is the load-bearing property here. Several bug classes
//! in the paper (shared-state manipulation errors such as the circular
//! list of Figure 12) only perturb heap-graph degree metrics because a
//! dangling pointer's address is later handed out again, re-binding the
//! stale edge to an unrelated object. A pure bump allocator would hide
//! those bugs entirely, so freed blocks go onto per-size-class LIFO free
//! lists and are preferentially recycled.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration for [`AddressAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocatorConfig {
    /// First address handed out. Non-zero so null stays invalid.
    pub base: u64,
    /// Alignment (and size granularity) of all blocks, in bytes.
    pub align: u64,
    /// When `true` (the default), freed blocks are recycled LIFO per size
    /// class. When `false` every allocation gets a fresh address, which
    /// makes dangling pointers permanently unresolvable — useful for
    /// ablation experiments.
    pub reuse_addresses: bool,
}

impl Default for AllocatorConfig {
    fn default() -> Self {
        AllocatorConfig {
            base: 0x1000_0000,
            align: 16,
            reuse_addresses: true,
        }
    }
}

/// Hands out and recycles address ranges for the simulated heap.
///
/// Sizes are rounded up to the configured alignment and then binned into
/// size classes (one class per rounded size — the workloads allocate a
/// small number of distinct node sizes, so exact-size classes stay
/// compact and give maximal reuse).
///
/// # Example
///
/// ```
/// use sim_heap::AddressAllocator;
///
/// let mut alloc = AddressAllocator::default();
/// let a = alloc.allocate(24);
/// alloc.release(a, 24);
/// let b = alloc.allocate(24);
/// assert_eq!(a, b, "freed address is recycled for an equal-size request");
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressAllocator {
    config: AllocatorConfig,
    bump: u64,
    free_lists: BTreeMap<u64, Vec<u64>>,
    recycled: u64,
    fresh: u64,
}

impl Default for AddressAllocator {
    fn default() -> Self {
        AddressAllocator::new(AllocatorConfig::default())
    }
}

impl AddressAllocator {
    /// Creates an allocator with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config.align` is zero or not a power of two, or if
    /// `config.base` is zero (the null page must stay unmapped).
    pub fn new(config: AllocatorConfig) -> Self {
        assert!(
            config.align.is_power_of_two(),
            "alignment must be a power of two"
        );
        assert!(config.base != 0, "base address must be non-zero");
        AddressAllocator {
            bump: config.base,
            config,
            free_lists: BTreeMap::new(),
            recycled: 0,
            fresh: 0,
        }
    }

    /// The configuration this allocator was built with.
    pub fn config(&self) -> &AllocatorConfig {
        &self.config
    }

    /// Rounds a request up to the block size actually reserved.
    pub fn rounded_size(&self, size: usize) -> u64 {
        let size = size.max(1) as u64;
        size.div_ceil(self.config.align) * self.config.align
    }

    /// Reserves an address range for `size` bytes and returns its start.
    ///
    /// Recycles a freed block of the same size class when available and
    /// reuse is enabled; otherwise bumps the frontier.
    pub fn allocate(&mut self, size: usize) -> u64 {
        let rounded = self.rounded_size(size);
        if self.config.reuse_addresses {
            if let Some(list) = self.free_lists.get_mut(&rounded) {
                if let Some(addr) = list.pop() {
                    self.recycled += 1;
                    return addr;
                }
            }
        }
        let addr = self.bump;
        self.bump = self
            .bump
            .checked_add(rounded)
            .expect("simulated address space exhausted");
        self.fresh += 1;
        addr
    }

    /// Returns a block to its size-class free list.
    ///
    /// `size` must be the original request size passed to
    /// [`allocate`](Self::allocate).
    pub fn release(&mut self, addr: u64, size: usize) {
        if self.config.reuse_addresses {
            let rounded = self.rounded_size(size);
            self.free_lists.entry(rounded).or_default().push(addr);
        }
    }

    /// Number of allocations satisfied from free lists.
    pub fn recycled_count(&self) -> u64 {
        self.recycled
    }

    /// Number of allocations satisfied by bumping the frontier.
    pub fn fresh_count(&self) -> u64 {
        self.fresh
    }

    /// Total blocks currently parked on free lists.
    pub fn free_blocks(&self) -> usize {
        self.free_lists.values().map(Vec::len).sum()
    }

    /// The current bump frontier (first never-used address).
    pub fn frontier(&self) -> u64 {
        self.bump
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_allocations_are_disjoint_and_aligned() {
        let mut a = AddressAllocator::default();
        let x = a.allocate(10);
        let y = a.allocate(10);
        assert_eq!(x % 16, 0);
        assert_eq!(y % 16, 0);
        assert!(y >= x + 16, "ranges must not overlap");
    }

    #[test]
    fn lifo_reuse_within_size_class() {
        let mut a = AddressAllocator::default();
        let x = a.allocate(32);
        let y = a.allocate(32);
        a.release(x, 32);
        a.release(y, 32);
        assert_eq!(a.allocate(32), y, "LIFO: most recently freed first");
        assert_eq!(a.allocate(32), x);
        assert_eq!(a.recycled_count(), 2);
    }

    #[test]
    fn different_size_classes_do_not_share_blocks() {
        let mut a = AddressAllocator::default();
        let x = a.allocate(16);
        a.release(x, 16);
        let y = a.allocate(64);
        assert_ne!(x, y, "a 64-byte request must not reuse a 16-byte block");
        assert_eq!(a.free_blocks(), 1);
    }

    #[test]
    fn sizes_in_same_rounded_class_share_blocks() {
        let mut a = AddressAllocator::default();
        let x = a.allocate(17);
        a.release(x, 17);
        // 17 and 30 both round to 32.
        assert_eq!(a.allocate(30), x);
    }

    #[test]
    fn reuse_can_be_disabled() {
        let mut a = AddressAllocator::new(AllocatorConfig {
            reuse_addresses: false,
            ..AllocatorConfig::default()
        });
        let x = a.allocate(16);
        a.release(x, 16);
        assert_ne!(a.allocate(16), x);
        assert_eq!(a.free_blocks(), 0);
        assert_eq!(a.recycled_count(), 0);
    }

    #[test]
    fn zero_size_rounds_up_to_one_block() {
        let a = AddressAllocator::default();
        assert_eq!(a.rounded_size(0), 16);
        assert_eq!(a.rounded_size(1), 16);
        assert_eq!(a.rounded_size(16), 16);
        assert_eq!(a.rounded_size(17), 32);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_panics() {
        AddressAllocator::new(AllocatorConfig {
            align: 24,
            ..AllocatorConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_base_panics() {
        AddressAllocator::new(AllocatorConfig {
            base: 0,
            ..AllocatorConfig::default()
        });
    }
}
