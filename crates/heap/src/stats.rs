//! Aggregate heap statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Running counters maintained by [`SimHeap`](crate::SimHeap).
///
/// These feed the experiment harness's sanity reports (the paper notes
/// its commercial applications "dynamically allocate several hundred
/// megabytes"; the workloads are checked against scaled-down analogues)
/// and the instrumentation-overhead benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeapStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Successful frees.
    pub frees: u64,
    /// Successful reallocs.
    pub reallocs: u64,
    /// Total bytes ever allocated.
    pub bytes_allocated: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_live_bytes: u64,
    /// High-water mark of live objects.
    pub peak_live_objects: u64,
    /// Pointer-sized stores.
    pub ptr_writes: u64,
    /// Non-pointer stores that were reported to the heap.
    pub scalar_writes: u64,
    /// Reads reported to the heap.
    pub reads: u64,
    /// Operations rejected with a [`HeapError`](crate::HeapError).
    pub faults: u64,
}

impl HeapStats {
    /// Live objects implied by the alloc/free balance.
    pub fn live_objects(&self) -> u64 {
        self.allocs - self.frees
    }

    /// Total mutator operations observed (allocs, frees, reallocs,
    /// writes, and reads).
    pub fn total_ops(&self) -> u64 {
        self.allocs + self.frees + self.reallocs + self.ptr_writes + self.scalar_writes + self.reads
    }
}

impl fmt::Display for HeapStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "allocs={} frees={} live={} peak_bytes={} ptr_writes={} reads={} faults={}",
            self.allocs,
            self.frees,
            self.live_objects(),
            self.peak_live_bytes,
            self.ptr_writes,
            self.reads,
            self.faults
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_objects_is_alloc_minus_free() {
        let s = HeapStats {
            allocs: 10,
            frees: 4,
            ..HeapStats::default()
        };
        assert_eq!(s.live_objects(), 6);
    }

    #[test]
    fn total_ops_sums_every_category() {
        let s = HeapStats {
            allocs: 1,
            frees: 2,
            reallocs: 3,
            ptr_writes: 4,
            scalar_writes: 5,
            reads: 6,
            ..HeapStats::default()
        };
        assert_eq!(s.total_ops(), 21);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!HeapStats::default().to_string().is_empty());
    }
}
