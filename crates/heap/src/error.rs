//! Error taxonomy for illegal mutator operations on the simulated heap.

use crate::addr::Addr;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// An illegal heap operation attempted by the mutator.
///
/// These are the classic memory errors a real allocator or a checker
/// like Purify would trap. The simulated heap reports them precisely;
/// whether a workload treats one as fatal is up to the workload (the
/// fault-injection machinery deliberately provokes some of these, e.g.
/// use-after-free through a dangling pointer that was *not* re-bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeapError {
    /// An allocation request of zero bytes.
    ZeroSizeAlloc,
    /// The heap's configured capacity would be exceeded.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Live bytes at the time of the request.
        live_bytes: usize,
    },
    /// `free` called on an address that is not the start of a live object.
    ///
    /// Distinguishing a double free from a plain invalid free requires
    /// allocation history; [`HeapError::DoubleFree`] is reported when the
    /// address was once a live object start.
    InvalidFree(Addr),
    /// `free` called on an address that was already freed.
    DoubleFree(Addr),
    /// A read or write touched memory outside any live object.
    WildAccess(Addr),
    /// A read or write dereferenced the null address.
    NullDeref,
    /// A pointer-sized access at an address too close to the end of its
    /// object to hold a pointer.
    TornAccess {
        /// The faulting address.
        addr: Addr,
        /// The containing object's remaining bytes at that address.
        remaining: usize,
    },
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::ZeroSizeAlloc => write!(f, "zero-size allocation"),
            HeapError::OutOfMemory {
                requested,
                live_bytes,
            } => write!(
                f,
                "out of memory: requested {requested} bytes with {live_bytes} live"
            ),
            HeapError::InvalidFree(a) => write!(f, "invalid free of {a}"),
            HeapError::DoubleFree(a) => write!(f, "double free of {a}"),
            HeapError::WildAccess(a) => write!(f, "wild access at {a}"),
            HeapError::NullDeref => write!(f, "null dereference"),
            HeapError::TornAccess { addr, remaining } => write!(
                f,
                "torn pointer access at {addr}: only {remaining} bytes remain in object"
            ),
        }
    }
}

impl Error for HeapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let cases: Vec<(HeapError, &str)> = vec![
            (HeapError::ZeroSizeAlloc, "zero-size allocation"),
            (
                HeapError::OutOfMemory {
                    requested: 8,
                    live_bytes: 100,
                },
                "out of memory: requested 8 bytes with 100 live",
            ),
            (
                HeapError::InvalidFree(Addr::new(0x10)),
                "invalid free of 0x10",
            ),
            (
                HeapError::DoubleFree(Addr::new(0x20)),
                "double free of 0x20",
            ),
            (
                HeapError::WildAccess(Addr::new(0x30)),
                "wild access at 0x30",
            ),
            (HeapError::NullDeref, "null dereference"),
        ];
        for (err, msg) in cases {
            assert_eq!(err.to_string(), msg);
        }
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(HeapError::NullDeref);
    }
}
