//! The instrumentation event stream.
//!
//! In the paper, Vulcan-inserted instrumentation "exposes the addition,
//! modification and removal of objects in the heap to the execution
//! logger": allocator entry points report address and size; every store
//! instruction reports the written address and value. [`HeapEvent`] is
//! that wire format. [`SimHeap`](crate::SimHeap) operations return richer
//! *effect* structs (old slot values, freed slots) so downstream
//! consumers — the heap-graph, the anomaly detector, the SWAT baseline —
//! can update incrementally without re-scanning the heap.

use crate::addr::Addr;
use crate::object::{AllocSite, ObjectId};
use serde::{Deserialize, Serialize};

/// One record in the instrumentation stream.
///
/// This is the serializable form used by the offline (post-mortem) mode:
/// the execution logger appends events to a trace, and the checker
/// replays them against a previously constructed model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeapEvent {
    /// An object was allocated.
    Alloc {
        /// Identity of the new object.
        obj: ObjectId,
        /// Start address of the new object.
        addr: Addr,
        /// Requested size in bytes.
        size: usize,
        /// Allocation call-site.
        site: AllocSite,
    },
    /// An object was freed.
    Free {
        /// Identity of the freed object.
        obj: ObjectId,
        /// Its start address (now recyclable).
        addr: Addr,
        /// Its size in bytes.
        size: usize,
    },
    /// A pointer-sized value was stored into a heap object.
    PtrWrite {
        /// Object containing the written slot.
        src: ObjectId,
        /// Byte offset of the slot within `src`.
        offset: u64,
        /// The stored pointer value (possibly null or non-heap).
        value: Addr,
        /// The slot's previous pointer value, if it held one.
        old_value: Option<Addr>,
    },
    /// A non-pointer store overwrote a slot (clearing any pointer in it).
    ScalarWrite {
        /// Object containing the written slot.
        src: ObjectId,
        /// Byte offset of the slot within `src`.
        offset: u64,
        /// The slot's previous pointer value, if it held one.
        old_value: Option<Addr>,
    },
    /// A read touched a heap object (consumed by staleness trackers).
    Read {
        /// The object read from.
        obj: ObjectId,
    },
    /// The mutator entered a function — a potential metric computation
    /// point in HeapMD's design.
    FnEnter {
        /// Interned function identifier (see the `heapmd` crate).
        func: u32,
    },
    /// The mutator returned from a function.
    FnExit {
        /// Interned function identifier.
        func: u32,
    },
}

impl HeapEvent {
    /// Returns `true` for events that change the heap-graph (allocations,
    /// frees, and pointer-slot mutations).
    pub fn mutates_graph(&self) -> bool {
        matches!(
            self,
            HeapEvent::Alloc { .. }
                | HeapEvent::Free { .. }
                | HeapEvent::PtrWrite { .. }
                | HeapEvent::ScalarWrite { .. }
        )
    }
}

/// Result of a successful [`SimHeap::alloc`](crate::SimHeap::alloc).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocEffect {
    /// Identity of the new object.
    pub id: ObjectId,
    /// Its start address.
    pub addr: Addr,
    /// Requested size in bytes.
    pub size: usize,
    /// Whether the address was recycled from a freed block.
    pub recycled: bool,
}

/// Result of a successful [`SimHeap::free`](crate::SimHeap::free).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreeEffect {
    /// Identity of the freed object.
    pub id: ObjectId,
    /// Its start address.
    pub addr: Addr,
    /// Its size in bytes.
    pub size: usize,
    /// Pointer slots the object held at the time of the free, as
    /// `(offset, target)` pairs. The heap-graph drops these out-edges.
    pub slots: Vec<(u64, Addr)>,
}

/// Result of a successful pointer or scalar store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteEffect {
    /// Object containing the written slot.
    pub src: ObjectId,
    /// Byte offset of the slot within the object.
    pub offset: u64,
    /// Previous pointer value in the slot, if any.
    pub old_value: Option<Addr>,
}

/// Result of a successful [`SimHeap::realloc`](crate::SimHeap::realloc).
///
/// Realloc is modelled as free + alloc + memcpy of surviving slots,
/// which is both what the C library does and how the paper's logger
/// would observe it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReallocEffect {
    /// The free of the old block.
    pub freed: FreeEffect,
    /// The allocation of the new block.
    pub alloc: AllocEffect,
    /// Pointer slots copied into the new block, as `(offset, target)`.
    pub moved_slots: Vec<(u64, Addr)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutates_graph_classification() {
        let alloc = HeapEvent::Alloc {
            obj: ObjectId(1),
            addr: Addr::new(0x10),
            size: 8,
            site: AllocSite(0),
        };
        assert!(alloc.mutates_graph());
        assert!(!HeapEvent::Read { obj: ObjectId(1) }.mutates_graph());
        assert!(!HeapEvent::FnEnter { func: 0 }.mutates_graph());
        assert!(HeapEvent::PtrWrite {
            src: ObjectId(1),
            offset: 0,
            value: Addr::new(0x20),
            old_value: None,
        }
        .mutates_graph());
    }

    #[test]
    fn events_round_trip_through_json() {
        let ev = HeapEvent::PtrWrite {
            src: ObjectId(3),
            offset: 16,
            value: Addr::new(0x40),
            old_value: Some(Addr::new(0x30)),
        };
        let json = serde_json::to_string(&ev).expect("serialize");
        let back: HeapEvent = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(ev, back);
    }
}
