//! # sim-heap — simulated process heap
//!
//! The HeapMD paper instruments x86 binaries (via Vulcan) so that every
//! allocator call and every pointer store into the heap is exposed to an
//! execution logger. This crate is the reproduction's substitute for the
//! real process heap: a deterministic, instrumentable heap that mutator
//! programs (see the `workloads` crate) allocate from, write pointers
//! into, and free.
//!
//! The design goals mirror what HeapMD's analysis actually depends on:
//!
//! * **object identity** — every allocation is a distinct [`ObjectId`];
//! * **interior pointers** — any address inside a live object resolves to
//!   that object ([`SimHeap::resolve`]);
//! * **address reuse** — freed addresses are recycled (size-class free
//!   lists), so dangling pointers can re-bind to new objects exactly as
//!   they do on a real allocator, which is what makes shared-state bugs
//!   visible to degree metrics;
//! * **pointer-slot tracking** — stores of pointer-sized values into heap
//!   objects are recorded per slot, producing the event stream
//!   ([`HeapEvent`]) that the heap-graph and all monitors consume.
//!
//! # Example
//!
//! ```
//! use sim_heap::{AllocSite, SimHeap};
//!
//! # fn main() -> Result<(), sim_heap::HeapError> {
//! let mut heap = SimHeap::new();
//! let site = AllocSite(1);
//! let a = heap.alloc(32, site)?.addr;
//! let b = heap.alloc(32, site)?.addr;
//! // Store a pointer to `b` in the first slot of `a`.
//! heap.write_ptr(a, b)?;
//! assert_eq!(heap.read_ptr(a)?, Some(b));
//! heap.free(b)?;
//! heap.free(a)?;
//! assert_eq!(heap.live_objects(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod alloc;
mod error;
mod event;
mod heap;
mod object;
mod shadow;
mod stats;

pub use addr::{region_of, shard_of, Addr, NULL, REGION_BITS};
pub use alloc::{AddressAllocator, AllocatorConfig};
pub use error::HeapError;
pub use event::{AllocEffect, FreeEffect, HeapEvent, ReallocEffect, WriteEffect};
pub use heap::{HeapConfig, SimHeap};
pub use object::{AllocSite, ObjectId, ObjectRecord};
pub use shadow::{ShadowMap, EMPTY as SHADOW_EMPTY, GRANULE_BITS};
pub use stats::HeapStats;
