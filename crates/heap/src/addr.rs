//! Virtual addresses in the simulated address space.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The null address. Writing [`NULL`] into a pointer slot clears it.
pub const NULL: Addr = Addr(0);

/// A virtual address in the simulated heap's address space.
///
/// `Addr` is what mutator programs hold in their (simulated) registers,
/// stack slots, and globals, and what they store into heap objects via
/// [`SimHeap::write_ptr`](crate::SimHeap::write_ptr). It is a plain
/// 64-bit value: it may be null, dangling, or interior to an object —
/// just like a pointer in a C program.
///
/// # Example
///
/// ```
/// use sim_heap::{Addr, NULL};
///
/// let a = Addr::new(0x1000_0000);
/// assert_eq!(a.offset(8).get(), 0x1000_0008);
/// assert!(!a.is_null());
/// assert!(NULL.is_null());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub(crate) u64);

impl Addr {
    /// Creates an address from its raw 64-bit value.
    #[inline]
    pub fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw 64-bit value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if this is the null address.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Returns the address `bytes` bytes past `self`.
    ///
    /// # Panics
    ///
    /// Panics on address-space overflow, which indicates a defect in the
    /// mutator driving the simulation.
    #[inline]
    pub fn offset(self, bytes: u64) -> Addr {
        Addr(self.0.checked_add(bytes).expect("address overflow"))
    }

    /// Returns the distance in bytes from `base` to `self`.
    ///
    /// Returns `None` if `self < base`.
    #[inline]
    pub fn offset_from(self, base: Addr) -> Option<u64> {
        self.0.checked_sub(base.0)
    }
}

/// Width of an address region for shard routing: 4 KiB.
///
/// Sharded graph ingestion partitions ownership of per-object state by
/// the *region* of the object's start address. 4 KiB regions are coarse
/// enough that one region holds many small objects (routing stays
/// cache-friendly) and fine enough that a bump allocator distributes
/// consecutive regions round-robin across shards, keeping them balanced.
pub const REGION_BITS: u32 = 12;

/// The region index containing `addr`.
#[inline]
pub fn region_of(addr: u64) -> u64 {
    addr >> REGION_BITS
}

/// The owning shard for an address under an `n`-way partition.
///
/// Regions are dealt round-robin: `region_of(addr) % n`. With `n == 1`
/// everything routes to shard 0 (the legacy single-shard path).
#[inline]
pub fn shard_of(addr: u64, n: usize) -> usize {
    debug_assert!(n > 0, "shard count must be positive");
    (region_of(addr) % n as u64) as usize
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null() {
        assert!(NULL.is_null());
        assert_eq!(NULL.get(), 0);
        assert!(!Addr::new(1).is_null());
    }

    #[test]
    fn offset_arithmetic() {
        let a = Addr::new(100);
        assert_eq!(a.offset(28), Addr::new(128));
        assert_eq!(Addr::new(128).offset_from(a), Some(28));
        assert_eq!(a.offset_from(Addr::new(128)), None);
    }

    #[test]
    #[should_panic(expected = "address overflow")]
    fn offset_overflow_panics() {
        Addr::new(u64::MAX).offset(1);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Addr::new(1) < Addr::new(2));
        assert_eq!(Addr::new(7), Addr::from(7));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Addr::new(0x1000).to_string(), "0x1000");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
        assert_eq!(format!("{:X}", Addr::new(255)), "FF");
    }
}
