//! Live-object records.

use crate::addr::Addr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A unique identity for one allocation, never reused.
///
/// Address reuse means an [`Addr`] can name different objects over the
/// program's lifetime; `ObjectId` disambiguates. Ids are handed out
/// monotonically by [`SimHeap`](crate::SimHeap).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

/// An allocation call-site identifier.
///
/// In the paper this is the return address of the `malloc` call exposed
/// by the binary instrumenter; here it is an opaque integer interned by
/// the workload layer. HeapMD's call-stack logging and SWAT's adaptive
/// sampling both key off it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct AllocSite(pub u32);

impl fmt::Display for AllocSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "site#{}", self.0)
    }
}

/// The heap's record of one live object.
///
/// Tracks the object's placement, provenance, and — crucially for the
/// heap-graph — the pointer values stored at each slot (offset) within
/// it. Only pointer-typed stores create slots; scalar stores clear them,
/// mirroring how HeapMD's instrumentation watches the values written by
/// store instructions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectRecord {
    id: ObjectId,
    start: Addr,
    size: usize,
    site: AllocSite,
    birth_tick: u64,
    last_access_tick: u64,
    /// `(offset, stored pointer)` pairs sorted by offset. Objects hold
    /// only a handful of pointer slots (paper §2.2), so a flat sorted
    /// vec beats a `BTreeMap` — no per-node allocation, one binary
    /// search per access.
    slots: Vec<(u64, Addr)>,
}

impl ObjectRecord {
    pub(crate) fn new(id: ObjectId, start: Addr, size: usize, site: AllocSite, tick: u64) -> Self {
        ObjectRecord {
            id,
            start,
            size,
            site,
            birth_tick: tick,
            last_access_tick: tick,
            slots: Vec::new(),
        }
    }

    /// The object's unique identity.
    #[inline]
    pub fn id(&self) -> ObjectId {
        self.id
    }

    /// The first address of the object.
    #[inline]
    pub fn start(&self) -> Addr {
        self.start
    }

    /// The object's size in bytes (as requested, before alignment).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The allocation site that created the object.
    pub fn site(&self) -> AllocSite {
        self.site
    }

    /// The heap tick at which the object was allocated.
    pub fn birth_tick(&self) -> u64 {
        self.birth_tick
    }

    /// The heap tick of the most recent read or write touching the object.
    ///
    /// This is the staleness signal the SWAT baseline consumes.
    pub fn last_access_tick(&self) -> u64 {
        self.last_access_tick
    }

    /// Returns `true` if `addr` lies within the object.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr >= self.start && addr.get() < self.start.get() + self.size as u64
    }

    /// The pointer value stored at byte offset `off`, if the slot holds one.
    #[inline]
    pub fn slot(&self, off: u64) -> Option<Addr> {
        self.slots
            .binary_search_by_key(&off, |&(o, _)| o)
            .ok()
            .map(|i| self.slots[i].1)
    }

    /// Iterates over `(offset, stored pointer)` pairs in offset order.
    pub fn slots(&self) -> impl Iterator<Item = (u64, Addr)> + '_ {
        self.slots.iter().copied()
    }

    /// Number of pointer-holding slots in the object.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    pub(crate) fn touch(&mut self, tick: u64) {
        self.last_access_tick = tick;
    }

    /// Re-initializes a recycled slab record in place, retaining the
    /// slot vec's capacity.
    pub(crate) fn reset(
        &mut self,
        id: ObjectId,
        start: Addr,
        size: usize,
        site: AllocSite,
        tick: u64,
    ) {
        self.id = id;
        self.start = start;
        self.size = size;
        self.site = site;
        self.birth_tick = tick;
        self.last_access_tick = tick;
        self.slots.clear();
    }

    /// Moves the slot table out (the record is dead afterwards).
    pub(crate) fn take_slots(&mut self) -> Vec<(u64, Addr)> {
        std::mem::take(&mut self.slots)
    }

    /// Sets slot `off` to `val`, returning the previous value.
    #[inline]
    pub(crate) fn set_slot(&mut self, off: u64, val: Addr) -> Option<Addr> {
        match self.slots.binary_search_by_key(&off, |&(o, _)| o) {
            Ok(i) => Some(std::mem::replace(&mut self.slots[i].1, val)),
            Err(i) => {
                self.slots.insert(i, (off, val));
                None
            }
        }
    }

    /// Clears slot `off`, returning the previous value.
    #[inline]
    pub(crate) fn clear_slot(&mut self, off: u64) -> Option<Addr> {
        match self.slots.binary_search_by_key(&off, |&(o, _)| o) {
            Ok(i) => Some(self.slots.remove(i).1),
            Err(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> ObjectRecord {
        ObjectRecord::new(ObjectId(7), Addr::new(0x100), 64, AllocSite(3), 10)
    }

    #[test]
    fn contains_respects_bounds() {
        let r = rec();
        assert!(r.contains(Addr::new(0x100)));
        assert!(r.contains(Addr::new(0x13f)));
        assert!(!r.contains(Addr::new(0x140)));
        assert!(!r.contains(Addr::new(0xff)));
    }

    #[test]
    fn slot_set_get_clear() {
        let mut r = rec();
        assert_eq!(r.set_slot(8, Addr::new(0x200)), None);
        assert_eq!(r.slot(8), Some(Addr::new(0x200)));
        assert_eq!(r.set_slot(8, Addr::new(0x300)), Some(Addr::new(0x200)));
        assert_eq!(r.clear_slot(8), Some(Addr::new(0x300)));
        assert_eq!(r.slot(8), None);
        assert_eq!(r.slot_count(), 0);
    }

    #[test]
    fn slots_iterate_in_offset_order() {
        let mut r = rec();
        r.set_slot(16, Addr::new(2));
        r.set_slot(0, Addr::new(1));
        r.set_slot(8, Addr::new(3));
        let offs: Vec<u64> = r.slots().map(|(o, _)| o).collect();
        assert_eq!(offs, vec![0, 8, 16]);
    }

    #[test]
    fn touch_updates_last_access() {
        let mut r = rec();
        assert_eq!(r.last_access_tick(), 10);
        r.touch(42);
        assert_eq!(r.last_access_tick(), 42);
        assert_eq!(r.birth_tick(), 10);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ObjectId(5).to_string(), "obj#5");
        assert_eq!(AllocSite(9).to_string(), "site#9");
    }
}
