//! # workloads — the benchmark programs of the HeapMD reproduction
//!
//! The paper evaluates HeapMD on 8 SPEC 2000 programs and 5 large
//! commercial Microsoft applications. Neither is available here, so
//! this crate provides 13 synthetic mutator programs whose *heap
//! behaviour* plays the same role: each allocates, links, and frees the
//! data-structure mixes its real counterpart is known for, with
//! input-dependent proportions, phase behaviour, and steady-state churn
//! — the ingredients that make some degree metrics stable and others
//! not.
//!
//! | Program | Modelled after | Characteristic stable metric (Fig. 7A) |
//! |---|---|---|
//! | `twolf` | cell placement | Outdeg=2 |
//! | `crafty` | chess engine | Leaves |
//! | `mcf` | network simplex | Roots |
//! | `vpr` | FPGA place & route | Outdeg=1 |
//! | `vortex` | OO database | Indeg=1 |
//! | `gzip` | compressor | Leaves |
//! | `parser` | link parser | In=Out |
//! | `gcc` | compiler | Outdeg=1 |
//! | `multimedia` | media pipeline | In=Out |
//! | `webapp` | interactive web app | Indeg=1 |
//! | `game_sim` | PC game (simulation) | Outdeg=1 |
//! | `game_action` | PC game (action) | Indeg=1 |
//! | `productivity` | office suite | Leaves |
//!
//! The five commercial programs additionally come in **5 development
//! versions** (Fig. 7B) and host the 40-bug catalog of Table 2
//! ([`bugs`]).
//!
//! # Example
//!
//! ```
//! use workloads::{harness, spec::Vpr, Input, Workload};
//!
//! let vpr = Vpr;
//! let inputs = Input::set(2);
//! let outcome = harness::train(&vpr, &inputs);
//! assert!(outcome.model.training_runs > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bugs;
pub mod commercial;
pub mod harness;
mod input;
pub mod phases;
pub mod spec;

pub use input::Input;
pub use phases::{FlipStyle, PhaseFlipper};

use faults::FaultPlan;
use heapmd::{HeapError, Process};

/// Whether a program models a SPEC benchmark or a commercial
/// application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// SPEC-2000-like benchmark.
    Spec,
    /// Commercial-application-like program (versioned, bug-hosting).
    Commercial,
}

/// A benchmark program driving the simulated heap.
pub trait Workload: Send + Sync {
    /// The program's name (stable identifier used in reports).
    fn name(&self) -> &'static str;

    /// SPEC-like or commercial-like.
    fn kind(&self) -> WorkloadKind;

    /// The metric-computation period this program is normally run with
    /// (chosen so a default run yields on the order of 100 metric
    /// computation points).
    fn default_frq(&self) -> u64 {
        200
    }

    /// Executes the program on `input` under `plan`.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`] — a clean plan never errors; fault
    /// plans may provoke heap errors by design.
    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError>;
}

/// All 13 programs.
pub fn registry() -> Vec<Box<dyn Workload>> {
    let mut all = spec_registry();
    all.extend(commercial_registry());
    all
}

/// The 8 SPEC-like programs.
pub fn spec_registry() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(spec::Twolf),
        Box::new(spec::Crafty),
        Box::new(spec::Mcf),
        Box::new(spec::Vpr),
        Box::new(spec::Vortex),
        Box::new(spec::Gzip),
        Box::new(spec::Parser),
        Box::new(spec::Gcc),
    ]
}

/// The 5 commercial-like programs (version 1 — the major revision used
/// for Figure 7A and model construction).
pub fn commercial_registry() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(commercial::Multimedia::new(1)),
        Box::new(commercial::WebApp::new(1)),
        Box::new(commercial::GameSim::new(1)),
        Box::new(commercial::GameAction::new(1)),
        Box::new(commercial::Productivity::new(1)),
    ]
}

/// The named commercial program at a given development version (1–5).
///
/// # Panics
///
/// Panics on an unknown name or version outside 1..=5.
pub fn commercial_at_version(name: &str, version: u8) -> Box<dyn Workload> {
    assert!((1..=5).contains(&version), "versions are 1..=5");
    match name {
        "multimedia" => Box::new(commercial::Multimedia::new(version)),
        "webapp" => Box::new(commercial::WebApp::new(version)),
        "game_sim" => Box::new(commercial::GameSim::new(version)),
        "game_action" => Box::new(commercial::GameAction::new(version)),
        "productivity" => Box::new(commercial::Productivity::new(version)),
        other => panic!("unknown commercial program {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_thirteen_programs() {
        let all = registry();
        assert_eq!(all.len(), 13);
        assert_eq!(spec_registry().len(), 8);
        assert_eq!(commercial_registry().len(), 5);
        let names: Vec<&str> = all.iter().map(|w| w.name()).collect();
        assert!(names.contains(&"vpr"));
        assert!(names.contains(&"game_action"));
        // Names are unique.
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 13);
    }

    #[test]
    fn commercial_versions_construct() {
        for name in [
            "multimedia",
            "webapp",
            "game_sim",
            "game_action",
            "productivity",
        ] {
            for v in 1..=5 {
                let w = commercial_at_version(name, v);
                assert_eq!(w.name(), name);
                assert_eq!(w.kind(), WorkloadKind::Commercial);
            }
        }
    }

    #[test]
    #[should_panic(expected = "versions are 1..=5")]
    fn version_zero_rejected() {
        commercial_at_version("webapp", 0);
    }
}
