//! Train/check drivers shared by experiments, examples, and tests.

use crate::{Input, Workload};
use faults::FaultPlan;
use heapmd::{
    AnomalyDetector, BugReport, HeapModel, IncidentBundle, IncidentLog, MetricReport, ModelBuilder,
    ModelOutcome, Monitor, Process, SamplerConfig, Settings,
};
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Per-series point budget for the flight recorder attached by
/// [`check_with_incidents`]: enough to span long runs after
/// stride-doubling, small enough to keep bundles a few KB.
pub const FLIGHT_RECORDER_POINTS: usize = 512;

/// Heap-graph shard count for every [`Process`] the harness builds
/// (1 = classic single-slab layout). Shard count changes storage
/// layout only — samples, models, and verdicts are bit-identical at
/// every value — so this is safe to flip mid-suite.
static DEFAULT_SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Sets the shard count used by subsequent harness runs (the CLI's
/// `--shards` flag lands here). Values below 1 clamp to 1.
pub fn set_default_shards(n: usize) {
    DEFAULT_SHARDS.store(n.max(1), Ordering::Relaxed);
}

/// The shard count harness-built processes currently use.
pub fn default_shards() -> usize {
    DEFAULT_SHARDS.load(Ordering::Relaxed)
}

/// Production-overhead sampling for harness-built processes, packed as
/// `hot_threshold << 32 | decimation` (both knobs are well under 2^32
/// in practice; values are clamped on set). Zero = sampling off, the
/// default — training and tests stay exact unless a driver opts in.
static DEFAULT_SAMPLER: AtomicU64 = AtomicU64::new(0);

/// Sets (or clears, with `None`) the store-sampling config applied to
/// every process the harness builds from now on — the CLI's `--sample`
/// flags land here.
pub fn set_default_sampler(config: Option<SamplerConfig>) {
    let packed = config.map_or(0, |c| {
        let hot = c.hot_threshold.min(u64::from(u32::MAX));
        let dec = c.decimation.clamp(1, u64::from(u32::MAX));
        (hot << 32) | dec
    });
    DEFAULT_SAMPLER.store(packed, Ordering::Relaxed);
}

/// The sampling config harness-built processes currently apply, if any.
pub fn default_sampler() -> Option<SamplerConfig> {
    let packed = DEFAULT_SAMPLER.load(Ordering::Relaxed);
    (packed != 0).then(|| SamplerConfig::new(packed >> 32, packed & u64::from(u32::MAX)))
}

/// Builds a workload process honoring [`default_shards`] and
/// [`default_sampler`].
fn new_process(settings: Settings) -> Process {
    let mut p = Process::with_shards(settings, default_shards());
    if let Some(config) = default_sampler() {
        p.enable_sampling(config);
    }
    p
}

/// The settings a program is normally analysed under: paper thresholds,
/// program-specific `frq`.
pub fn settings_for(w: &dyn Workload) -> Settings {
    Settings::builder()
        .frq(w.default_frq())
        .build()
        .expect("default settings are valid")
}

/// Runs `w` once on `input` under `plan`, returning the metric report.
///
/// # Panics
///
/// Panics if the workload reports a heap error (clean plans never do;
/// fault plans provoking one indicate a catalog defect).
pub fn run_once(
    w: &dyn Workload,
    input: &Input,
    plan: &mut FaultPlan,
    settings: &Settings,
) -> MetricReport {
    let mut p = new_process(settings.clone());
    {
        let _span = heapmd_obs::span!("workload_run");
        w.run(&mut p, plan, input)
            .unwrap_or_else(|e| panic!("{} on input {} failed: {e}", w.name(), input.id));
    }
    p.finish(format!("{}/input-{}", w.name(), input.id))
}

/// Runs `w` once with monitors attached (detectors, baselines).
///
/// # Panics
///
/// Same as [`run_once`].
pub fn run_monitored(
    w: &dyn Workload,
    input: &Input,
    plan: &mut FaultPlan,
    settings: &Settings,
    monitors: &[Rc<RefCell<dyn Monitor>>],
) -> MetricReport {
    let mut p = new_process(settings.clone());
    for m in monitors {
        p.attach(m.clone());
    }
    {
        let _span = heapmd_obs::span!("workload_run");
        w.run(&mut p, plan, input)
            .unwrap_or_else(|e| panic!("{} on input {} failed: {e}", w.name(), input.id));
    }
    p.finish(format!("{}/input-{}", w.name(), input.id))
}

/// Trains a heap model for `w` on clean runs over `inputs`.
pub fn train(w: &dyn Workload, inputs: &[Input]) -> ModelOutcome {
    let settings = settings_for(w);
    let mut builder = ModelBuilder::new(settings.clone()).program(w.name());
    for input in inputs {
        let mut plan = FaultPlan::new();
        builder.add_run(&run_once(w, input, &mut plan, &settings));
    }
    builder.build()
}

/// Runs `w` once per input under clean fault plans, distributing the
/// runs over up to `threads` scoped worker threads, and returns the
/// reports **in input order** regardless of scheduling.
///
/// Each worker builds its own [`Process`] (processes are single-thread
/// state machines), and a run's report depends only on its input, so
/// the result is identical to calling [`run_once`] in a loop.
///
/// # Panics
///
/// Propagates a panic from any worker (as the sequential loop would).
pub fn run_many(
    w: &dyn Workload,
    inputs: &[Input],
    settings: &Settings,
    threads: usize,
) -> Vec<MetricReport> {
    let workers = threads.max(1).min(inputs.len().max(1));
    let mut reports: Vec<Option<MetricReport>> = (0..inputs.len()).map(|_| None).collect();
    if workers <= 1 {
        for (slot, input) in reports.iter_mut().zip(inputs) {
            *slot = Some(run_once(w, input, &mut FaultPlan::new(), settings));
        }
    } else {
        let clock = heapmd_obs::throughput::stage_clock();
        let chunk = inputs.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (slots, part) in reports.chunks_mut(chunk).zip(inputs.chunks(chunk)) {
                scope.spawn(move || {
                    for (slot, input) in slots.iter_mut().zip(part) {
                        *slot = Some(run_once(w, input, &mut FaultPlan::new(), settings));
                    }
                });
            }
        });
        if let Some(t0) = clock {
            heapmd_obs::throughput::record_stage(
                "train_runs",
                inputs.len() as u64,
                t0.elapsed().as_nanos() as u64,
            );
            heapmd_obs::gauge_set!("train_run_threads", workers as i64);
        }
    }
    reports
        .into_iter()
        .map(|r| r.expect("worker filled every slot"))
        .collect()
}

/// Trains like [`train`], but distributes the input runs and the
/// summarization over up to `threads` worker threads.
///
/// The outcome (and any model serialized from it) is bit-identical to
/// the sequential [`train`]: runs execute independently, and both
/// [`run_many`] and [`ModelBuilder::add_runs_parallel`] merge strictly
/// in input order.
pub fn train_parallel(w: &dyn Workload, inputs: &[Input], threads: usize) -> ModelOutcome {
    let settings = settings_for(w);
    let reports = run_many(w, inputs, &settings, threads);
    let mut builder = ModelBuilder::new(settings.clone()).program(w.name());
    builder.add_runs_parallel(&reports, threads);
    builder.build()
}

/// Checks `w` on `input` under `plan` against `model`, returning the
/// anomaly detector's bug reports.
pub fn check(
    w: &dyn Workload,
    model: &HeapModel,
    input: &Input,
    plan: &mut FaultPlan,
) -> Vec<BugReport> {
    let settings = settings_for(w);
    let detector = Rc::new(RefCell::new(AnomalyDetector::new(
        model.clone(),
        settings.clone(),
    )));
    let monitors: [Rc<RefCell<dyn Monitor>>; 1] = [detector.clone()];
    let _ = run_monitored(w, input, plan, &settings, &monitors);
    let mut d = detector.borrow_mut();
    d.take_bugs()
}

/// What a flight-recorded check produced.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The detector's bug reports.
    pub bugs: Vec<BugReport>,
    /// Incident bundles for range violations that survived the
    /// shutdown trim.
    pub incidents: Vec<IncidentBundle>,
    /// Bundle files written, when an incident directory was given.
    pub bundle_paths: Vec<PathBuf>,
    /// The checked run's metric report (run-store appends read this).
    pub report: MetricReport,
}

/// Like [`check`], but with the process flight recorder enabled so any
/// incident carries metric/rate series and a degree histogram; bundles
/// are additionally persisted under `incident_dir` when given.
pub fn check_with_incidents(
    w: &dyn Workload,
    model: &HeapModel,
    input: &Input,
    plan: &mut FaultPlan,
    incident_dir: Option<&Path>,
) -> CheckOutcome {
    let settings = settings_for(w);
    let detector = Rc::new(RefCell::new(AnomalyDetector::new(
        model.clone(),
        settings.clone(),
    )));
    if let Some(dir) = incident_dir {
        detector
            .borrow_mut()
            .log_incidents_to(IncidentLog::new(dir, w.name()));
    }
    let mut p = new_process(settings);
    p.enable_flight_recorder(FLIGHT_RECORDER_POINTS);
    p.attach(detector.clone());
    {
        let _span = heapmd_obs::span!("workload_run");
        w.run(&mut p, plan, input)
            .unwrap_or_else(|e| panic!("{} on input {} failed: {e}", w.name(), input.id));
    }
    let report = p.finish(format!("{}/input-{}", w.name(), input.id));
    let mut d = detector.borrow_mut();
    CheckOutcome {
        bugs: d.take_bugs(),
        incidents: d.take_incidents(),
        bundle_paths: d
            .incident_log()
            .map(|l| l.paths().to_vec())
            .unwrap_or_default(),
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Gzip;

    #[test]
    fn train_then_clean_check_is_quiet() {
        let w = Gzip;
        let outcome = train(&w, &Input::set(3));
        assert!(outcome.model.training_runs >= 3);
        assert!(
            !outcome.model.stable.is_empty(),
            "gzip must have stable metrics"
        );
        let bugs = check(&w, &outcome.model, &Input::new(50), &mut FaultPlan::new());
        assert!(bugs.is_empty(), "clean run raised: {bugs:?}");
    }

    #[test]
    fn parallel_train_matches_sequential() {
        let w = Gzip;
        let inputs = Input::set(4);
        let seq = train(&w, &inputs);
        let par = train_parallel(&w, &inputs, 4);
        assert_eq!(seq, par, "parallel training must be bit-identical");
    }

    #[test]
    fn run_once_produces_samples() {
        let w = Gzip;
        let settings = settings_for(&w);
        let report = run_once(&w, &Input::new(0), &mut FaultPlan::new(), &settings);
        assert!(report.len() >= 30, "too few samples: {}", report.len());
    }
}
