//! Train/check drivers shared by experiments, examples, and tests.

use crate::{Input, Workload};
use faults::FaultPlan;
use heapmd::{
    AnomalyDetector, BugReport, HeapModel, MetricReport, ModelBuilder, ModelOutcome, Monitor,
    Process, Settings,
};
use std::cell::RefCell;
use std::rc::Rc;

/// The settings a program is normally analysed under: paper thresholds,
/// program-specific `frq`.
pub fn settings_for(w: &dyn Workload) -> Settings {
    Settings::builder()
        .frq(w.default_frq())
        .build()
        .expect("default settings are valid")
}

/// Runs `w` once on `input` under `plan`, returning the metric report.
///
/// # Panics
///
/// Panics if the workload reports a heap error (clean plans never do;
/// fault plans provoking one indicate a catalog defect).
pub fn run_once(
    w: &dyn Workload,
    input: &Input,
    plan: &mut FaultPlan,
    settings: &Settings,
) -> MetricReport {
    let mut p = Process::new(settings.clone());
    w.run(&mut p, plan, input)
        .unwrap_or_else(|e| panic!("{} on input {} failed: {e}", w.name(), input.id));
    p.finish(format!("{}/input-{}", w.name(), input.id))
}

/// Runs `w` once with monitors attached (detectors, baselines).
///
/// # Panics
///
/// Same as [`run_once`].
pub fn run_monitored(
    w: &dyn Workload,
    input: &Input,
    plan: &mut FaultPlan,
    settings: &Settings,
    monitors: &[Rc<RefCell<dyn Monitor>>],
) -> MetricReport {
    let mut p = Process::new(settings.clone());
    for m in monitors {
        p.attach(m.clone());
    }
    w.run(&mut p, plan, input)
        .unwrap_or_else(|e| panic!("{} on input {} failed: {e}", w.name(), input.id));
    p.finish(format!("{}/input-{}", w.name(), input.id))
}

/// Trains a heap model for `w` on clean runs over `inputs`.
pub fn train(w: &dyn Workload, inputs: &[Input]) -> ModelOutcome {
    let settings = settings_for(w);
    let mut builder = ModelBuilder::new(settings.clone()).program(w.name());
    for input in inputs {
        let mut plan = FaultPlan::new();
        builder.add_run(&run_once(w, input, &mut plan, &settings));
    }
    builder.build()
}

/// Checks `w` on `input` under `plan` against `model`, returning the
/// anomaly detector's bug reports.
pub fn check(
    w: &dyn Workload,
    model: &HeapModel,
    input: &Input,
    plan: &mut FaultPlan,
) -> Vec<BugReport> {
    let settings = settings_for(w);
    let detector = Rc::new(RefCell::new(AnomalyDetector::new(
        model.clone(),
        settings.clone(),
    )));
    let monitors: [Rc<RefCell<dyn Monitor>>; 1] = [detector.clone()];
    let _ = run_monitored(w, input, plan, &settings, &monitors);
    let mut d = detector.borrow_mut();
    d.take_bugs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Gzip;

    #[test]
    fn train_then_clean_check_is_quiet() {
        let w = Gzip;
        let outcome = train(&w, &Input::set(3));
        assert!(outcome.model.training_runs >= 3);
        assert!(
            !outcome.model.stable.is_empty(),
            "gzip must have stable metrics"
        );
        let bugs = check(&w, &outcome.model, &Input::new(50), &mut FaultPlan::new());
        assert!(bugs.is_empty(), "clean run raised: {bugs:?}");
    }

    #[test]
    fn run_once_produces_samples() {
        let w = Gzip;
        let settings = settings_for(&w);
        let report = run_once(&w, &Input::new(0), &mut FaultPlan::new(), &settings);
        assert!(report.len() >= 30, "too few samples: {}", report.len());
    }
}
