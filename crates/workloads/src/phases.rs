//! Phase behaviour for the benchmark programs.
//!
//! Real programs execute in phases, and "different phases of the
//! program exhibit different heap behavior" (§2.1) — which is why the
//! paper finds only a *subset* of the seven metrics globally stable per
//! program (1–6 of 7 in Figure 7A). The synthetic programs' steady
//! churn is naturally far flatter than reality, so each hosts a
//! [`PhaseFlipper`]: a fixed pool of nodes that alternates between a
//! linked-chain topology and an all-isolated topology.
//!
//! The flip moves a block of vertexes between degree classes
//! (indegree 0 ↔ 1, outdegree 0 ↔ 1) while keeping the node count —
//! and therefore the *shares of the untouched classes* — constant. A
//! pool sized at a few percent of the heap leaves large-baseline
//! metrics (a program's Figure 7A signature) within the stability
//! thresholds while blowing the small-baseline ones far past them:
//! exactly the paper's "locally stable" / unstable residue.

use heapmd::{Addr, HeapError, Process, NULL};

/// Node layout: `[0] = next`.
const NEXT: u64 = 0;
const NODE_SIZE: usize = 16;

/// Which pair of topologies a [`PhaseFlipper`] alternates between.
/// Each style perturbs a different subset of the seven metrics, so a
/// program can host phase behaviour without touching its signature
/// metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlipStyle {
    /// Chain ↔ all-isolated: moves mass between indegree 0/1 *and*
    /// outdegree 0/1 (Roots, Indeg=1, Leaves, Outdeg=1).
    IsolateChain,
    /// Chain ↔ fan-from-holder: node indegree stays 1; only outdegree
    /// 0/1 (Leaves, Outdeg=1) moves. Roots and the indegree metrics are
    /// untouched.
    FanChain,
    /// Single ↔ double references from the holder: only indegree 1/2
    /// (Indeg=1, Indeg=2) moves. The outdegree metrics and Roots are
    /// untouched.
    DoubleLink,
}

/// A fixed pool of nodes whose topology flips between program phases.
#[derive(Debug, Clone)]
pub struct PhaseFlipper {
    /// Holder object for the fan/double styles (slot `i` → node `i`,
    /// plus slot `k + i` for the double style's second reference).
    holder: Option<Addr>,
    nodes: Vec<Addr>,
    style: FlipStyle,
    linked: bool,
}

impl PhaseFlipper {
    /// Allocates an [`FlipStyle::IsolateChain`] pool (initially
    /// isolated).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn new(p: &mut Process, k: usize, site: &str) -> Result<Self, HeapError> {
        PhaseFlipper::with_style(p, k, site, FlipStyle::IsolateChain)
    }

    /// Allocates a pool with an explicit style (initially in the first
    /// topology of the pair: isolated / chain / single-linked).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn with_style(
        p: &mut Process,
        k: usize,
        site: &str,
        style: FlipStyle,
    ) -> Result<Self, HeapError> {
        p.enter("PhaseFlipper::new");
        let site = format!("{site}::phase_node");
        let holder = match style {
            FlipStyle::IsolateChain => None,
            FlipStyle::FanChain | FlipStyle::DoubleLink => {
                Some(p.malloc((2 * k.max(1)) * 8, &site)?)
            }
        };
        let mut nodes = Vec::with_capacity(k);
        for _ in 0..k {
            nodes.push(p.malloc(NODE_SIZE, &site)?);
        }
        let mut flipper = PhaseFlipper {
            holder,
            nodes,
            style,
            linked: false,
        };
        // The non-isolate styles keep every node referenced at all
        // times; set up the first topology now.
        match style {
            FlipStyle::IsolateChain => {}
            FlipStyle::FanChain => {
                flipper.set_chain_from_holder(p)?;
                flipper.linked = true;
            }
            FlipStyle::DoubleLink => flipper.set_single(p)?,
        }
        p.leave();
        Ok(flipper)
    }

    fn set_chain_from_holder(&mut self, p: &mut Process) -> Result<(), HeapError> {
        let holder = self.holder.expect("fan style has a holder");
        if let Some(&first) = self.nodes.first() {
            p.write_ptr(holder, first)?;
        }
        for i in 1..self.nodes.len() {
            p.write_ptr(holder.offset(i as u64 * 8), NULL)?;
            p.write_ptr(self.nodes[i - 1].offset(NEXT), self.nodes[i])?;
        }
        Ok(())
    }

    fn set_fan(&mut self, p: &mut Process) -> Result<(), HeapError> {
        let holder = self.holder.expect("fan style has a holder");
        for (i, &n) in self.nodes.iter().enumerate() {
            p.write_ptr(holder.offset(i as u64 * 8), n)?;
            p.write_ptr(n.offset(NEXT), NULL)?;
        }
        Ok(())
    }

    fn set_single(&mut self, p: &mut Process) -> Result<(), HeapError> {
        let holder = self.holder.expect("double style has a holder");
        let k = self.nodes.len() as u64;
        for (i, &n) in self.nodes.iter().enumerate() {
            p.write_ptr(holder.offset(i as u64 * 8), n)?;
            p.write_ptr(holder.offset((k + i as u64) * 8), NULL)?;
        }
        Ok(())
    }

    fn set_double(&mut self, p: &mut Process) -> Result<(), HeapError> {
        let holder = self.holder.expect("double style has a holder");
        let k = self.nodes.len() as u64;
        for (i, &n) in self.nodes.iter().enumerate() {
            p.write_ptr(holder.offset((k + i as u64) * 8), n)?;
        }
        Ok(())
    }

    /// Number of pooled nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` when the pool is currently chained.
    pub fn is_linked(&self) -> bool {
        self.linked
    }

    /// Flips to the other topology and returns the new state.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn flip(&mut self, p: &mut Process) -> Result<bool, HeapError> {
        p.enter("PhaseFlipper::flip");
        match (self.style, self.linked) {
            (FlipStyle::IsolateChain, true) => {
                for &n in &self.nodes {
                    p.write_ptr(n.offset(NEXT), NULL)?;
                }
            }
            (FlipStyle::IsolateChain, false) => {
                for w in self.nodes.windows(2) {
                    p.write_ptr(w[0].offset(NEXT), w[1])?;
                }
            }
            (FlipStyle::FanChain, true) => self.set_fan(p)?,
            (FlipStyle::FanChain, false) => self.set_chain_from_holder(p)?,
            (FlipStyle::DoubleLink, true) => self.set_single(p)?,
            (FlipStyle::DoubleLink, false) => self.set_double(p)?,
        }
        self.linked = !self.linked;
        p.leave();
        Ok(self.linked)
    }

    /// Touches every pooled node (read traffic).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn touch_all(&self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("PhaseFlipper::touch");
        for &n in &self.nodes {
            p.read(n)?;
        }
        p.leave();
        Ok(())
    }

    /// Frees the pool, consuming it.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn free_all(self, p: &mut Process) -> Result<(), HeapError> {
        p.enter("PhaseFlipper::free");
        for &n in &self.nodes {
            p.free(n)?;
        }
        if let Some(holder) = self.holder {
            p.free(holder)?;
        }
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heapmd::{MetricKind, Settings};

    fn process() -> Process {
        Process::new(Settings::builder().frq(1_000).build().unwrap())
    }

    #[test]
    fn flip_moves_degree_mass_and_back() {
        let mut p = process();
        let mut f = PhaseFlipper::new(&mut p, 10, "t").unwrap();
        assert!(!f.is_linked());
        let isolated = p.graph().metrics();
        assert_eq!(isolated.get(MetricKind::Roots), 100.0);

        assert!(f.flip(&mut p).unwrap());
        let linked = p.graph().metrics();
        assert_eq!(linked.get(MetricKind::Indeg1), 90.0);
        assert_eq!(linked.get(MetricKind::Roots), 10.0);
        p.graph().validate().unwrap();

        assert!(!f.flip(&mut p).unwrap());
        assert_eq!(p.graph().metrics(), isolated);
    }

    #[test]
    fn fan_style_only_moves_outdegree_metrics() {
        let mut p = process();
        let mut f = PhaseFlipper::with_style(&mut p, 10, "t", FlipStyle::FanChain).unwrap();
        let chain = p.graph().metrics();
        f.flip(&mut p).unwrap();
        let fan = p.graph().metrics();
        // Indegree metrics and roots untouched; leaves/outdeg=1 move.
        assert_eq!(chain.get(MetricKind::Indeg1), fan.get(MetricKind::Indeg1));
        assert_eq!(chain.get(MetricKind::Roots), fan.get(MetricKind::Roots));
        assert_ne!(chain.get(MetricKind::Leaves), fan.get(MetricKind::Leaves));
        p.graph().validate().unwrap();
    }

    #[test]
    fn double_style_only_moves_indegree_metrics() {
        let mut p = process();
        let mut f = PhaseFlipper::with_style(&mut p, 10, "t", FlipStyle::DoubleLink).unwrap();
        let single = p.graph().metrics();
        f.flip(&mut p).unwrap();
        let double = p.graph().metrics();
        assert_eq!(
            single.get(MetricKind::Leaves),
            double.get(MetricKind::Leaves)
        );
        assert_eq!(
            single.get(MetricKind::Outdeg1),
            double.get(MetricKind::Outdeg1)
        );
        assert_ne!(
            single.get(MetricKind::Indeg1),
            double.get(MetricKind::Indeg1)
        );
        assert_ne!(
            single.get(MetricKind::Indeg2),
            double.get(MetricKind::Indeg2)
        );
        p.graph().validate().unwrap();
    }

    #[test]
    fn node_count_is_invariant_across_flips() {
        let mut p = process();
        let mut f = PhaseFlipper::new(&mut p, 8, "t").unwrap();
        let n = p.graph().node_count();
        for _ in 0..5 {
            f.flip(&mut p).unwrap();
            assert_eq!(p.graph().node_count(), n);
        }
        f.touch_all(&mut p).unwrap();
        f.free_all(&mut p).unwrap();
        assert_eq!(p.heap().live_objects(), 0);
    }
}
