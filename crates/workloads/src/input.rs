//! Program inputs.
//!
//! The paper drives each program on suites of inputs (SPEC's
//! test/train/ref, 50–100 generated inputs, 50 regression tests for the
//! commercial apps). Here an input is a seed plus derived scale
//! parameters: different inputs induce different heap configurations —
//! different structure sizes and mix proportions — while the program's
//! *invariants* stay put, which is exactly the property HeapMD mines.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One program input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Input {
    /// Input number within its suite.
    pub id: u32,
    /// Seed for all randomness the input induces.
    pub seed: u64,
}

impl Input {
    /// Creates input `id` of the default suite.
    pub fn new(id: u32) -> Self {
        // splitmix-style spread so ids give uncorrelated seeds.
        let mut z = (id as u64).wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        Input {
            id,
            seed: z ^ (z >> 31),
        }
    }

    /// The first `n` inputs of the default suite.
    pub fn set(n: usize) -> Vec<Input> {
        (0..n as u32).map(Input::new).collect()
    }

    /// Inputs `from..from+n` (disjoint from [`set`](Self::set) when
    /// `from ≥` the training count — used for checking).
    pub fn range(from: u32, n: usize) -> Vec<Input> {
        (from..from + n as u32).map(Input::new).collect()
    }

    /// A fresh deterministic RNG for this input.
    pub fn rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.seed)
    }

    /// A size multiplier in `[0.6, 1.6]`, derived from the seed: inputs
    /// differ in workload size the way regression inputs do.
    pub fn scale(&self) -> f64 {
        0.6 + (self.seed % 1000) as f64 / 999.0
    }

    /// A secondary shape parameter in `[0, 1]`, independent of
    /// [`scale`](Self::scale).
    pub fn shape(&self) -> f64 {
        ((self.seed >> 20) % 1000) as f64 / 999.0
    }

    /// Scales an integer quantity by [`scale`](Self::scale), keeping a
    /// floor of 1.
    pub fn scaled(&self, base: usize) -> usize {
        ((base as f64 * self.scale()) as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn inputs_are_deterministic() {
        assert_eq!(Input::new(7), Input::new(7));
        assert_ne!(Input::new(7).seed, Input::new(8).seed);
        let mut a = Input::new(3).rng();
        let mut b = Input::new(3).rng();
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn set_and_range_are_consistent() {
        let s = Input::set(5);
        assert_eq!(s.len(), 5);
        assert_eq!(s[2], Input::new(2));
        let r = Input::range(5, 3);
        assert_eq!(r[0], Input::new(5));
        assert!(s.iter().all(|i| !r.contains(i)), "disjoint suites");
    }

    #[test]
    fn scale_and_shape_are_bounded() {
        for input in Input::set(200) {
            let s = input.scale();
            assert!((0.6..=1.6).contains(&s), "scale {s}");
            let sh = input.shape();
            assert!((0.0..=1.0).contains(&sh), "shape {sh}");
        }
    }

    #[test]
    fn scaled_floors_at_one() {
        let i = Input::new(0);
        assert!(i.scaled(100) >= 60);
        assert_eq!(i.scaled(0), 1);
    }

    #[test]
    fn scales_vary_across_inputs() {
        let scales: Vec<f64> = Input::set(20).iter().map(Input::scale).collect();
        let min = scales.iter().copied().fold(f64::INFINITY, f64::min);
        let max = scales.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 0.3,
            "inputs should differ in size: {min}..{max}"
        );
    }
}
