//! The bug catalog: the 40 heap bugs of the paper's Table 2, plus the
//! SWAT-only leak scenarios behind Table 1.
//!
//! Every entry names a *fault id* consulted at a specific call-site in
//! one commercial program. Enabling an entry's fault (usually via
//! [`BugSpec::plan`]) turns that program buggy in exactly the way the
//! paper's taxonomy describes; the Table 2 experiment trains a clean
//! model per program and then checks each bug individually.

use faults::{FaultConfig, FaultId, FaultPlan};
use heapmd::{BugCategory, DetectionClass, MetricKind};

/// One catalogued bug.
#[derive(Debug, Clone, Copy)]
pub struct BugSpec {
    /// The fault id consulted at the buggy call-site.
    pub fault: FaultId,
    /// Which commercial program hosts it.
    pub app: &'static str,
    /// Root-cause category (Figures 8/9, Table 2 columns).
    pub category: BugCategory,
    /// How HeapMD is expected to see it.
    pub detection: DetectionClass,
    /// The metric most likely to report it (a hint, not a contract —
    /// any stable-metric violation counts as detection).
    pub expected_metric: MetricKind,
    /// Activation schedule used when injecting (systemic bugs fire on a
    /// period; startup bugs fire once).
    pub every: u64,
    /// One-line description.
    pub description: &'static str,
}

impl BugSpec {
    /// A fault plan with only this bug enabled.
    pub fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        plan.enable(self.fault, FaultConfig::every(self.every));
        plan
    }
}

/// A leak scenario outside HeapMD's reach, used by the Table 1
/// comparison (SWAT finds these; HeapMD must not).
#[derive(Debug, Clone, Copy)]
pub struct SwatOnlyLeak {
    /// The fault id.
    pub fault: FaultId,
    /// The hosting program.
    pub app: &'static str,
    /// Why HeapMD misses it.
    pub detection: DetectionClass,
    /// Activation schedule.
    pub every: u64,
    /// Activation cap (small leaks stay small).
    pub limit: Option<u64>,
    /// One-line description.
    pub description: &'static str,
}

impl SwatOnlyLeak {
    /// A fault plan with only this leak enabled.
    pub fn plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::new();
        let mut config = FaultConfig::every(self.every);
        if let Some(limit) = self.limit {
            config = config.limit(limit);
        }
        plan.enable(self.fault, config);
        plan
    }
}

macro_rules! bug {
    ($fault:expr, $app:expr, $cat:ident, $det:ident, $metric:ident, $every:expr, $desc:expr) => {
        BugSpec {
            fault: FaultId($fault),
            app: $app,
            category: BugCategory::$cat,
            detection: DetectionClass::$det,
            expected_metric: MetricKind::$metric,
            every: $every,
            description: $desc,
        }
    };
}

/// The 40 bugs of Table 2 (11 programming typos, 6 shared-state, 17
/// data-structure-invariant, 6 indirect).
pub const CATALOG: [BugSpec; 40] = [
    // ---- Multimedia: 2 typos, 2 shared, 3 DS-invariant, 1 indirect ----
    bug!(
        "mm.codec_props.typo_leak",
        "multimedia",
        ProgrammingTypo,
        HeapAnomaly,
        Roots,
        1,
        "Fig.11 index typo detaches codec property lists"
    ),
    bug!(
        "mm.playlist.pop_leak",
        "multimedia",
        ProgrammingTypo,
        HeapAnomaly,
        Roots,
        1,
        "playlist pop forgets the free"
    ),
    bug!(
        "mm.stream_ring.free_shared_head",
        "multimedia",
        SharedState,
        HeapAnomaly,
        Indeg1,
        1,
        "Fig.12 stream ring head freed while tail still points at it"
    ),
    bug!(
        "mm.mixer_ring.free_shared_head",
        "multimedia",
        SharedState,
        HeapAnomaly,
        Indeg1,
        1,
        "mixer ring shares the Fig.12 mistake at a second site"
    ),
    bug!(
        "mm.track_dlist.skip_prev",
        "multimedia",
        DataStructureInvariant,
        HeapAnomaly,
        Indeg1,
        1,
        "Fig.1 track list insert skips prev pointers"
    ),
    bug!(
        "mm.scene_tree.skip_parent",
        "multimedia",
        DataStructureInvariant,
        HeapAnomaly,
        Indeg1,
        1,
        "overlay tree nodes miss parent pointers"
    ),
    bug!(
        "mm.index_btree.skip_sibling",
        "multimedia",
        DataStructureInvariant,
        HeapAnomaly,
        Roots,
        1,
        "media index B-tree split loses the new sibling link"
    ),
    bug!(
        "mm.codec_table.degenerate_hash",
        "multimedia",
        Indirect,
        HeapAnomaly,
        Outdeg1,
        1,
        "Fig.9 codec table hash collapses to one bucket"
    ),
    // ---- Interactive web-app: 4 typos, 5 DS-invariant, 1 indirect ----
    bug!(
        "webapp.session_props.typo_leak",
        "webapp",
        ProgrammingTypo,
        HeapAnomaly,
        Roots,
        1,
        "session property lists leaked by the Fig.11 typo"
    ),
    bug!(
        "webapp.req_log.pop_leak",
        "webapp",
        ProgrammingTypo,
        HeapAnomaly,
        Roots,
        1,
        "request log pop forgets the free"
    ),
    bug!(
        "webapp.tmpl_props.typo_leak",
        "webapp",
        ProgrammingTypo,
        HeapAnomaly,
        Roots,
        1,
        "template property lists leaked by a second Fig.11 typo"
    ),
    bug!(
        "webapp.cookie_list.pop_leak",
        "webapp",
        ProgrammingTypo,
        HeapAnomaly,
        Roots,
        1,
        "cookie list pop forgets the free"
    ),
    bug!(
        "webapp.dom_tree.skip_parent",
        "webapp",
        DataStructureInvariant,
        HeapAnomaly,
        Indeg1,
        1,
        "DOM nodes inserted without parent back-pointers"
    ),
    bug!(
        "webapp.form_tree.skip_parent",
        "webapp",
        DataStructureInvariant,
        HeapAnomaly,
        Indeg1,
        1,
        "form tree repeats the missing-parent mistake"
    ),
    bug!(
        "webapp.session_dlist.skip_prev",
        "webapp",
        DataStructureInvariant,
        HeapAnomaly,
        Indeg1,
        1,
        "session list insert skips prev pointers"
    ),
    bug!(
        "webapp.index_btree.skip_sibling",
        "webapp",
        DataStructureInvariant,
        HeapAnomaly,
        Roots,
        1,
        "URL index B-tree split loses the new sibling link"
    ),
    bug!(
        "webapp.nav_dlist.skip_prev",
        "webapp",
        DataStructureInvariant,
        HeapAnomaly,
        Indeg1,
        1,
        "navigation history list skips prev pointers"
    ),
    bug!(
        "webapp.sitegraph.atypical",
        "webapp",
        Indirect,
        HeapAnomaly,
        Indeg1,
        1,
        "Fig.9 localization bug renders the site graph as a star"
    ),
    // ---- PC game (simulation): 3 typos, 3 shared, 2 DS-inv, 1 indirect ----
    bug!(
        "gs.unit_props.typo_leak",
        "game_sim",
        ProgrammingTypo,
        HeapAnomaly,
        Roots,
        1,
        "unit property lists leaked by the Fig.11 typo"
    ),
    bug!(
        "gs.order_queue.pop_leak",
        "game_sim",
        ProgrammingTypo,
        HeapAnomaly,
        Roots,
        1,
        "order queue pop forgets the free"
    ),
    bug!(
        "gs.path_props.typo_leak",
        "game_sim",
        ProgrammingTypo,
        HeapAnomaly,
        Roots,
        1,
        "path cache property lists leaked by a typo"
    ),
    bug!(
        "gs.event_ring.free_shared_head",
        "game_sim",
        SharedState,
        HeapAnomaly,
        Indeg1,
        1,
        "event ring head freed while shared"
    ),
    bug!(
        "gs.anim_ring.free_shared_head",
        "game_sim",
        SharedState,
        HeapAnomaly,
        Indeg1,
        1,
        "animation ring head freed while shared"
    ),
    bug!(
        "gs.sound_ring.free_shared_head",
        "game_sim",
        SharedState,
        HeapAnomaly,
        Indeg1,
        1,
        "sound ring head freed while shared"
    ),
    bug!(
        "gs.unit_dlist.skip_prev",
        "game_sim",
        DataStructureInvariant,
        HeapAnomaly,
        Indeg1,
        1,
        "unit roster insert skips prev pointers"
    ),
    bug!(
        "gs.terrain_btree.skip_sibling",
        "game_sim",
        DataStructureInvariant,
        HeapAnomaly,
        Roots,
        1,
        "terrain index B-tree split loses the new sibling"
    ),
    bug!(
        "gs.collision_hash.degenerate",
        "game_sim",
        Indirect,
        HeapAnomaly,
        Outdeg1,
        1,
        "Fig.9 collision hash collapses to one bucket"
    ),
    // ---- PC game (action): 2 typos, 1 shared, 3 DS-inv, 2 indirect ----
    bug!(
        "ga.asset_props.typo_leak",
        "game_action",
        ProgrammingTypo,
        HeapAnomaly,
        Roots,
        1,
        "asset property lists leaked by the Fig.11 typo"
    ),
    bug!(
        "ga.decal_list.pop_leak",
        "game_action",
        ProgrammingTypo,
        HeapAnomaly,
        Roots,
        1,
        "decal list pop forgets the free"
    ),
    bug!(
        "ga.particle_ring.free_shared_head",
        "game_action",
        SharedState,
        HeapAnomaly,
        Indeg1,
        1,
        "particle ring head freed while shared"
    ),
    bug!(
        "ga.scene_tree.skip_parent",
        "game_action",
        DataStructureInvariant,
        HeapAnomaly,
        Indeg1,
        1,
        "THE Figure 10 bug: scene-tree nodes missing parent pointers"
    ),
    bug!(
        "ga.asset_dlist.skip_prev",
        "game_action",
        DataStructureInvariant,
        HeapAnomaly,
        Indeg1,
        1,
        "Fig.1 asset list insert skips prev pointers"
    ),
    bug!(
        "ga.world_octree.alias",
        "game_action",
        DataStructureInvariant,
        PoorlyDisguised,
        Indeg1,
        1,
        "oct-tree construction produces an oct-DAG at startup"
    ),
    bug!(
        "ga.lod_tree.single_child",
        "game_action",
        Indirect,
        HeapAnomaly,
        Outdeg1,
        1,
        "Fig.9 LOD tree vertexes get a single child instead of two"
    ),
    bug!(
        "ga.portal_graph.atypical",
        "game_action",
        Indirect,
        HeapAnomaly,
        Indeg1,
        1,
        "portal graph generated with an atypical star shape"
    ),
    // ---- Productivity: 4 DS-invariant, 1 indirect ----
    bug!(
        "prod.piece_btree.skip_sibling",
        "productivity",
        DataStructureInvariant,
        HeapAnomaly,
        Roots,
        1,
        "piece-table B-tree split loses the new sibling"
    ),
    bug!(
        "prod.outline_tree.skip_parent",
        "productivity",
        DataStructureInvariant,
        HeapAnomaly,
        Indeg1,
        1,
        "outline nodes inserted without parent pointers"
    ),
    bug!(
        "prod.style_dlist.skip_prev",
        "productivity",
        DataStructureInvariant,
        HeapAnomaly,
        Indeg1,
        1,
        "style chain insert skips prev pointers"
    ),
    bug!(
        "prod.anno_dlist.skip_prev",
        "productivity",
        DataStructureInvariant,
        HeapAnomaly,
        Indeg1,
        1,
        "annotation chain insert skips prev pointers"
    ),
    bug!(
        "prod.ref_hash.degenerate",
        "productivity",
        Indirect,
        HeapAnomaly,
        Outdeg1,
        1,
        "Fig.9 cross-reference hash collapses to one bucket"
    ),
];

/// Leak scenarios only SWAT can see (Table 1's gap): reachable leaks
/// (HeapMD-invisible) and tiny bounded leaks (well disguised).
pub const SWAT_ONLY: [SwatOnlyLeak; 8] = [
    SwatOnlyLeak {
        fault: FaultId("mm.registry.reachable_leak"),
        app: "multimedia",
        detection: DetectionClass::Invisible,
        every: 1,
        limit: None,
        description: "codec registry grows forever but stays reachable",
    },
    SwatOnlyLeak {
        fault: FaultId("mm.thumb_list.tiny_leak"),
        app: "multimedia",
        detection: DetectionClass::WellDisguised,
        every: 1,
        limit: Some(4),
        description: "four thumbnail records leak — too few to move a metric",
    },
    SwatOnlyLeak {
        fault: FaultId("webapp.res_registry.reachable_leak"),
        app: "webapp",
        detection: DetectionClass::Invisible,
        every: 1,
        limit: None,
        description: "resource registry grows forever but stays reachable",
    },
    SwatOnlyLeak {
        fault: FaultId("webapp.blob_registry.reachable_leak"),
        app: "webapp",
        detection: DetectionClass::Invisible,
        every: 1,
        limit: None,
        description: "blob registry grows forever but stays reachable",
    },
    SwatOnlyLeak {
        fault: FaultId("webapp.hist_registry.reachable_leak"),
        app: "webapp",
        detection: DetectionClass::Invisible,
        every: 1,
        limit: None,
        description: "history registry grows forever but stays reachable",
    },
    SwatOnlyLeak {
        fault: FaultId("webapp.tmp_list.tiny_leak"),
        app: "webapp",
        detection: DetectionClass::WellDisguised,
        every: 1,
        limit: Some(4),
        description: "four temp-file records leak",
    },
    SwatOnlyLeak {
        fault: FaultId("webapp.frag_list.tiny_leak"),
        app: "webapp",
        detection: DetectionClass::WellDisguised,
        every: 1,
        limit: Some(4),
        description: "four fragment records leak",
    },
    SwatOnlyLeak {
        fault: FaultId("gs.replay_list.tiny_leak"),
        app: "game_sim",
        detection: DetectionClass::WellDisguised,
        every: 1,
        limit: Some(4),
        description: "four replay records leak",
    },
];

/// Every catalogued bug hosted by `app`.
pub fn for_app(app: &str) -> Vec<&'static BugSpec> {
    CATALOG.iter().filter(|b| b.app == app).collect()
}

/// SWAT-only leaks hosted by `app`.
pub fn swat_only_for_app(app: &str) -> Vec<&'static SwatOnlyLeak> {
    SWAT_ONLY.iter().filter(|l| l.app == app).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn catalog_counts_match_table_2() {
        assert_eq!(CATALOG.len(), 40);
        let mut by_cat: HashMap<BugCategory, usize> = HashMap::new();
        let mut by_app: HashMap<&str, usize> = HashMap::new();
        for b in &CATALOG {
            *by_cat.entry(b.category).or_default() += 1;
            *by_app.entry(b.app).or_default() += 1;
        }
        assert_eq!(by_cat[&BugCategory::ProgrammingTypo], 11);
        assert_eq!(by_cat[&BugCategory::SharedState], 6);
        assert_eq!(by_cat[&BugCategory::DataStructureInvariant], 17);
        assert_eq!(by_cat[&BugCategory::Indirect], 6);
        assert_eq!(by_app["multimedia"], 8);
        assert_eq!(by_app["webapp"], 10);
        assert_eq!(by_app["game_sim"], 9);
        assert_eq!(by_app["game_action"], 8);
        assert_eq!(by_app["productivity"], 5);
    }

    #[test]
    fn table1_leak_counts_are_consistent() {
        // SWAT totals per Table 1 app = HeapMD-visible typo leaks +
        // SWAT-only extras: multimedia 2+2=4, webapp 4+5=9, game_sim 3+1=4.
        for (app, swat_total) in [("multimedia", 4), ("webapp", 9), ("game_sim", 4)] {
            let typos = for_app(app)
                .iter()
                .filter(|b| b.category == BugCategory::ProgrammingTypo)
                .count();
            let extras = swat_only_for_app(app).len();
            assert_eq!(typos + extras, swat_total, "{app}");
        }
    }

    #[test]
    fn fault_ids_are_unique() {
        let mut ids: Vec<&str> = CATALOG.iter().map(|b| b.fault.0).collect();
        ids.extend(SWAT_ONLY.iter().map(|l| l.fault.0));
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate fault ids");
    }

    #[test]
    fn plans_enable_exactly_one_fault() {
        let b = &CATALOG[0];
        let plan = b.plan();
        assert!(plan.is_enabled(b.fault));
        assert_eq!(plan.enabled().len(), 1);
        let l = &SWAT_ONLY[1];
        let plan = l.plan();
        assert!(plan.is_enabled(l.fault));
    }

    #[test]
    fn only_the_octree_bug_is_poorly_disguised() {
        let poorly: Vec<_> = CATALOG
            .iter()
            .filter(|b| b.detection == DetectionClass::PoorlyDisguised)
            .collect();
        assert_eq!(poorly.len(), 1);
        assert_eq!(poorly[0].fault.0, "ga.world_octree.alias");
    }
}
