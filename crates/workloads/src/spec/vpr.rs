//! `vpr`-like FPGA place-and-route: net connection chains over a sea of
//! leaf routing-resource records. Chain share varies a lot between
//! inputs, so *Outdeg=1* is stable within a run but spans a wide band
//! across inputs (paper Figure 7A: Outdeg=1 stable, 3.7–36.8 %).
//! A routing-usage registry — an array of once-referenced records —
//! grows through the run, which keeps *In=Out* drifting, especially on
//! small inputs: the instability Figures 4–6 show.

use crate::{Input, Workload, WorkloadKind};
use faults::FaultPlan;
use heapmd::{HeapError, Process};
use rand::Rng;
use sim_ds::{BufferPool, SimList};

/// The vpr-like place-and-route workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Vpr;

impl Workload for Vpr {
    fn name(&self) -> &'static str {
        "vpr"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Spec
    }

    fn default_frq(&self) -> u64 {
        220
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let mut rng = input.rng();
        // The input decides how chain-heavy the netlist is.
        let net_count = 16 + (input.shape() * 48.0) as usize;
        let net_len = 3 + (input.shape() * 7.0) as usize;
        let rr_records = input.scaled(260);
        let iterations = input.scaled(1600);

        p.enter("vpr::main");
        let mut rr = BufferPool::new(rr_records, "vpr.rr_node");
        p.enter("vpr::build_rr_graph");
        for _ in 0..rr_records {
            rr.acquire(p, 48)?;
        }
        p.leave();

        // Netlist: fixed population of connection chains.
        let mut nets: Vec<SimList> = (0..net_count).map(|_| SimList::new("vpr.net")).collect();
        p.enter("vpr::read_netlist");
        for net in &mut nets {
            for k in 0..net_len {
                net.push_front(p, k as u64)?;
            }
        }
        p.leave();

        // The routing-usage registry: all usage records are allocated
        // up front (isolated, indegree = outdegree = 0), and the run
        // progressively registers them in the usage table. Each
        // registration converts a (0,0) vertex into a (1,0) one, so
        // In=Out drains steadily over the run while the outdegree
        // metrics stay put — the drift behind Figures 4–6.
        let usage_cap = iterations / 3 + 1;
        p.enter("vpr::alloc_usage_table");
        let usage_table = p.malloc(usage_cap * 8, "vpr.usage_table")?;
        let mut usage_records: Vec<heapmd::Addr> = Vec::new();
        for _ in 0..usage_cap {
            usage_records.push(p.malloc(16, "vpr.usage_record")?);
        }
        let mut usage_count: usize = 0;
        p.leave();

        for i in 0..iterations {
            p.enter("vpr::place_iteration");
            // Rip-up and re-route one net: free its chain, rebuild it.
            let n = rng.gen_range(0..nets.len());
            nets[n].free_all(p)?;
            for k in 0..net_len {
                nets[n].push_front(p, k as u64)?;
            }
            rr.acquire(p, 48)?; // churn one rr record
            if i % 3 == 0 && usage_count < usage_cap {
                let rec = usage_records[usage_count];
                p.write_ptr(usage_table.offset(usage_count as u64 * 8), rec)?;
                usage_count += 1;
            }
            if i % 50 == 0 {
                nets[n].walk(p)?;
            }
            p.leave();
        }

        p.enter("vpr::cleanup");
        for mut net in nets {
            net.free_all(p)?;
        }
        for rec in usage_records {
            p.free(rec)?;
        }
        p.free(usage_table)?;
        rr.drain(p)?;
        p.leave();
        p.leave();
        let _ = plan;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_once, settings_for, train};
    use heapmd::MetricKind;

    #[test]
    fn outdeg1_is_stable_for_vpr() {
        let outcome = train(&Vpr, &Input::set(4));
        let sm = outcome
            .model
            .stable_metric(MetricKind::Outdeg1)
            .expect("Outdeg=1 must be globally stable for vpr");
        assert!(sm.std_change < 5.0);
    }

    #[test]
    fn outdeg1_band_varies_across_inputs() {
        // The paper's vpr row has a wide min..max across inputs.
        let w = Vpr;
        let settings = settings_for(&w);
        let mut mins = Vec::new();
        for input in Input::set(6) {
            let r = run_once(&w, &input, &mut FaultPlan::new(), &settings);
            let series = r.trimmed_series(MetricKind::Outdeg1, &settings);
            let mean = series.iter().sum::<f64>() / series.len() as f64;
            mins.push(mean);
        }
        let lo = mins.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = mins.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            hi - lo > 5.0,
            "expected a wide cross-input band: {lo:.1}..{hi:.1}"
        );
    }
}
