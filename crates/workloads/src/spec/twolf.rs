//! `twolf`-like standard-cell placer: the heap is full of *cell*
//! records that each point at exactly two net terminals, so
//! *Outdeg=2* sits near the cell share of the heap and stays there
//! (paper Figure 7A: Outdeg=2 stable, 26.4–32.3 %, and twolf has the
//! most stable metrics of any benchmark — 6).

use crate::{Input, Workload, WorkloadKind};
use faults::FaultPlan;
use heapmd::{Addr, HeapError, Process};
use rand::Rng;

/// Cell layout: `[0] = left terminal, [8] = right terminal`.
const CELL_SIZE: usize = 24;
/// Terminals are pointer-free records.
const TERM_SIZE: usize = 16;

/// The twolf-like placement workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Twolf;

/// One placed cell and its two terminals.
struct Placed {
    cell: Addr,
    left: Addr,
    right: Addr,
}

impl Twolf {
    fn place_cell(p: &mut Process, rng: &mut impl Rng) -> Result<Placed, HeapError> {
        p.enter("twolf::place_cell");
        let cell = p.malloc(CELL_SIZE, "twolf.cell")?;
        let left = p.malloc(TERM_SIZE, "twolf.terminal")?;
        let right = p.malloc(TERM_SIZE, "twolf.terminal")?;
        p.write_ptr(cell, left)?;
        p.write_ptr(cell.offset(8), right)?;
        p.write_scalar(cell.offset(16))?; // placement coordinates
        let _ = rng;
        p.leave();
        Ok(Placed { cell, left, right })
    }

    fn rip_cell(p: &mut Process, placed: Placed) -> Result<(), HeapError> {
        p.enter("twolf::rip_cell");
        p.free(placed.cell)?;
        p.free(placed.left)?;
        p.free(placed.right)?;
        p.leave();
        Ok(())
    }
}

impl Workload for Twolf {
    fn name(&self) -> &'static str {
        "twolf"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Spec
    }

    fn default_frq(&self) -> u64 {
        160
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let _ = plan; // twolf hosts no catalog bugs
        let mut rng = input.rng();
        let population = input.scaled(120);
        let iterations = input.scaled(1800);

        p.enter("twolf::main");
        // Row-assignment scratch: rebuilt between annealing temperature
        // steps (a fan↔chain flip leaves Outdeg=2 and the indegree
        // metrics alone).
        let mut rows = crate::PhaseFlipper::with_style(
            p,
            input.scaled(10),
            "twolf.rows",
            crate::FlipStyle::FanChain,
        )?;
        let mut placed: Vec<Placed> = Vec::with_capacity(population);
        p.enter("twolf::initial_placement");
        for _ in 0..population {
            placed.push(Self::place_cell(p, &mut rng)?);
        }
        p.leave();

        // Simulated annealing: swap = rip up one cell, place another.
        for i in 0..iterations {
            p.enter("twolf::anneal_step");
            let k = rng.gen_range(0..placed.len());
            let old = placed.swap_remove(k);
            Self::rip_cell(p, old)?;
            placed.push(Self::place_cell(p, &mut rng)?);
            if i % 40 == 0 {
                // Cost evaluation touches a sample of cells.
                for _ in 0..4 {
                    let j = rng.gen_range(0..placed.len());
                    p.read(placed[j].cell)?;
                }
                rows.touch_all(p)?;
            }
            p.leave();
            if i % 320 == 319 {
                rows.flip(p)?;
            }
        }

        p.enter("twolf::cleanup");
        rows.free_all(p)?;
        for cell in placed {
            Self::rip_cell(p, cell)?;
        }
        p.leave();
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train;
    use heapmd::MetricKind;

    #[test]
    fn outdeg2_is_stable_near_one_third() {
        let outcome = train(&Twolf, &Input::set(3));
        let sm = outcome
            .model
            .stable_metric(MetricKind::Outdeg2)
            .expect("Outdeg=2 must be globally stable for twolf");
        assert!(
            sm.min > 20.0 && sm.max < 45.0,
            "cell share should be near 1/3: [{:.1}, {:.1}]",
            sm.min,
            sm.max
        );
    }

    #[test]
    fn twolf_has_many_stable_metrics() {
        // The paper's most-stable benchmark (6 of 7). The steady
        // swap churn should leave nearly everything flat.
        let outcome = train(&Twolf, &Input::set(3));
        assert!(
            outcome.model.stable.len() >= 5,
            "expected ≥5 stable metrics, got {}",
            outcome.model.stable.len()
        );
    }
}
