//! `gzip`-like compressor: the heap is dominated by large, pointer-free
//! window/block buffers, so *Leaves* sits in the high 80s and stays
//! there (paper Figure 7A: Leaves stable, 82.9–90.2 %).

use crate::{Input, Workload, WorkloadKind};
use faults::FaultPlan;
use heapmd::{HeapError, Process};
use rand::Rng;
use sim_ds::{BufferPool, SimList};

/// The gzip-like compressor workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gzip;

impl Workload for Gzip {
    fn name(&self) -> &'static str {
        "gzip"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Spec
    }

    fn default_frq(&self) -> u64 {
        120
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let mut rng = input.rng();
        // Window buffers dominate; a small chain of block descriptors
        // rides along. The input's shape nudges the buffer:descriptor
        // ratio, moving Leaves% a few points between inputs.
        let window_slots = input.scaled(180);
        let desc_target = 12 + (input.shape() * 28.0) as usize;
        let iterations = input.scaled(2200);

        p.enter("gzip::main");
        let mut windows = BufferPool::new(window_slots, "gzip.window");
        let mut descs = SimList::new("gzip.block_desc");
        // Huffman-table scratch: alternates between built (chained) and
        // torn-down per compression phase. Small next to the window
        // buffers, so Leaves stays stable while the low-baseline
        // indegree/outdegree=1 metrics do not.
        let mut huffman = crate::PhaseFlipper::new(p, input.scaled(8), "gzip.huffman")?;

        // Startup: prime the window.
        p.enter("gzip::init");
        for _ in 0..window_slots {
            windows.acquire(p, 256 + rng.gen_range(0..256))?;
        }
        p.leave();

        for i in 0..iterations {
            p.enter("gzip::deflate_block");
            windows.acquire(p, 256 + rng.gen_range(0..256))?;
            if descs.len() < desc_target || rng.gen_bool(0.5) {
                descs.push_front(p, i as u64)?;
            }
            if descs.len() > desc_target {
                descs.pop_front(p, plan)?;
            }
            if i % 64 == 0 {
                descs.walk(p)?;
                windows.touch_all(p)?;
                huffman.touch_all(p)?;
            }
            p.leave();
            if i % 300 == 299 {
                huffman.flip(p)?;
            }
        }

        // Shutdown.
        p.enter("gzip::cleanup");
        huffman.free_all(p)?;
        windows.drain(p)?;
        descs.free_all(p)?;
        p.leave();
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{settings_for, train};
    use heapmd::MetricKind;

    #[test]
    fn leaves_is_stable_in_the_high_80s() {
        let w = Gzip;
        let outcome = train(&w, &Input::set(4));
        let model = outcome.model;
        let sm = model
            .stable_metric(MetricKind::Leaves)
            .expect("Leaves must be globally stable for gzip");
        assert!(
            sm.min > 70.0 && sm.max <= 100.0,
            "Leaves range off: [{:.1}, {:.1}]",
            sm.min,
            sm.max
        );
        assert!(sm.avg_change.abs() <= 1.0);
    }

    #[test]
    fn runs_are_deterministic_per_input() {
        let w = Gzip;
        let settings = settings_for(&w);
        let a = crate::harness::run_once(&w, &Input::new(1), &mut FaultPlan::new(), &settings);
        let b = crate::harness::run_once(&w, &Input::new(1), &mut FaultPlan::new(), &settings);
        assert_eq!(a.samples, b.samples);
    }
}
