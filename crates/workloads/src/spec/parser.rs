//! `parser`-like link parser: sentences become short linkage chains —
//! heads and tails outnumber interiors, so *In=Out* sits in the
//! mid-teens and holds (paper Figure 7A: In=Out stable, 14.2–17.7 %).

use crate::{Input, Workload, WorkloadKind};
use faults::FaultPlan;
use heapmd::{HeapError, Process};
use rand::Rng;
use sim_ds::SimList;

/// The parser-like linkage workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Parser;

impl Workload for Parser {
    fn name(&self) -> &'static str {
        "parser"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Spec
    }

    fn default_frq(&self) -> u64 {
        240
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let mut rng = input.rng();
        // Two fixed chain lengths: "short" parses (length 2 — head and
        // tail only, contributing nothing to In=Out) and "long" parses
        // (length 5 — three In=Out interiors each). Each sentence slot
        // keeps its length for the whole run, so re-parsing does not
        // random-walk the composition — the long:short ratio (set by
        // the input) pins In=Out.
        let sentences = input.scaled(130);
        let long_period = 3 + (input.shape() * 3.0) as usize; // every Nth sentence is long
        let lengths: Vec<usize> = (0..sentences)
            .map(|k| if k % long_period == 0 { 5 } else { 2 })
            .collect();
        let iterations = input.scaled(1500);

        p.enter("parser::main");
        // Expression-stack scratch: built and torn down per batch of
        // sentences — the phase residue that keeps parser at ~1 stable
        // metric in the paper rather than 7.
        let mut scratch = crate::PhaseFlipper::new(p, input.scaled(18), "parser.scratch")?;
        let build = |p: &mut Process, len: usize| -> Result<SimList, HeapError> {
            let mut l = SimList::new("parser.linkage");
            for k in 0..len {
                l.push_front(p, k as u64)?;
            }
            Ok(l)
        };

        p.enter("parser::read_dict");
        let mut parses: Vec<SimList> = Vec::with_capacity(sentences);
        for &len in &lengths {
            parses.push(build(p, len)?);
        }
        p.leave();

        for i in 0..iterations {
            p.enter("parser::parse_sentence");
            // Re-parse one sentence: free its linkage, build anew at
            // the same length.
            let k = rng.gen_range(0..parses.len());
            parses[k].free_all(p)?;
            parses[k] = build(p, lengths[k])?;
            if i % 60 == 0 {
                parses[k].walk(p)?;
                scratch.touch_all(p)?;
            }
            p.leave();
            if i % 250 == 249 {
                scratch.flip(p)?;
            }
        }

        p.enter("parser::cleanup");
        scratch.free_all(p)?;
        for mut l in parses {
            l.free_all(p)?;
        }
        p.leave();
        p.leave();
        let _ = plan;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train;
    use heapmd::MetricKind;

    #[test]
    fn in_eq_out_is_stable_in_the_teens() {
        let outcome = train(&Parser, &Input::set(3));
        let sm = outcome
            .model
            .stable_metric(MetricKind::InEqOut)
            .expect("In=Out must be globally stable for parser");
        assert!(
            sm.min > 5.0 && sm.max < 45.0,
            "interior share off: [{:.1}, {:.1}]",
            sm.min,
            sm.max
        );
    }
}
