//! `vortex`-like object database: B-tree indexes over object chains.
//! Most vertexes are referenced exactly once (index child slots, chain
//! links), so *Indeg=1* is the stable signature (paper Figure 7A:
//! Indeg=1 stable, 37.8–69.5 %).

use crate::{Input, Workload, WorkloadKind};
use faults::FaultPlan;
use heapmd::{HeapError, Process};
use rand::Rng;
use sim_ds::{SimBTree, SimDList};

/// The vortex-like object-database workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Vortex;

impl Workload for Vortex {
    fn name(&self) -> &'static str {
        "vortex"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Spec
    }

    fn default_frq(&self) -> u64 {
        200
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let mut rng = input.rng();
        // The shape decides how index-heavy vs. list-heavy the database
        // is; indeg=1 moves with the B-tree share.
        let index_keys = input.scaled(150 + (input.shape() * 250.0) as usize);
        let part_lists = 4 + (input.shape() * 8.0) as usize;
        let list_len = 8;
        let iterations = input.scaled(1400);

        p.enter("vortex::main");
        let mut index = SimBTree::new(p, "vortex.index")?;
        p.enter("vortex::load_db");
        for k in 0..index_keys as u64 {
            index.insert(p, plan, k.wrapping_mul(2654435761) % 1_000_000)?;
        }
        let mut parts: Vec<SimDList> = Vec::new();
        for i in 0..part_lists {
            let mut l = SimDList::new(p, "vortex.part")?;
            for j in 0..list_len {
                l.push_back(p, plan, (i * list_len + j) as u64)?;
            }
            parts.push(l);
        }
        p.leave();

        for i in 0..iterations {
            p.enter("vortex::transaction");
            // Lookups dominate; inserts trickle in.
            index.contains(p, rng.gen_range(0..1_000_000))?;
            if i % 6 == 0 {
                index.insert(p, plan, rng.gen_range(0..1_000_000))?;
            }
            // Part-list churn: remove one node, append one.
            let k = rng.gen_range(0..parts.len());
            if let Some(front) = parts[k].front(p)? {
                parts[k].remove(p, front)?;
                parts[k].push_back(p, plan, i as u64)?;
            }
            p.leave();
        }

        p.enter("vortex::cleanup");
        for l in parts {
            l.free_all(p)?;
        }
        index.free_all(p)?;
        p.leave();
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train;
    use heapmd::MetricKind;

    #[test]
    fn indeg1_is_stable_for_vortex() {
        let outcome = train(&Vortex, &Input::set(3));
        let sm = outcome
            .model
            .stable_metric(MetricKind::Indeg1)
            .expect("Indeg=1 must be globally stable for vortex");
        assert!(
            sm.min > 25.0,
            "index-dominated heap: [{:.1}, {:.1}]",
            sm.min,
            sm.max
        );
    }
}
