//! SPEC-2000-like benchmark programs.
//!
//! Each module models the heap behaviour its namesake is known for —
//! not its computation. What matters for HeapMD is the mix of
//! structures, the steady-state churn, and the input-dependence, which
//! together decide which degree metrics are stable (paper Figure 7A).

mod crafty;
mod gcc;
mod gzip;
mod mcf;
mod parser;
mod twolf;
mod vortex;
mod vpr;

pub use crafty::Crafty;
pub use gcc::Gcc;
pub use gzip::Gzip;
pub use mcf::Mcf;
pub use parser::Parser;
pub use twolf::Twolf;
pub use vortex::Vortex;
pub use vpr::Vpr;

#[cfg(test)]
mod tests {
    use crate::harness::{run_once, settings_for};
    use crate::{spec_registry, Input, WorkloadKind};
    use faults::FaultPlan;

    #[test]
    fn every_spec_program_runs_clean_and_samples() {
        for w in spec_registry() {
            assert_eq!(w.kind(), WorkloadKind::Spec);
            let settings = settings_for(w.as_ref());
            let report = run_once(w.as_ref(), &Input::new(0), &mut FaultPlan::new(), &settings);
            assert!(
                report.len() >= 30,
                "{} produced only {} samples",
                w.name(),
                report.len()
            );
            // Heap must be non-trivial mid-run.
            let mid = &report.samples[report.len() / 2];
            assert!(
                mid.nodes >= 50,
                "{} mid-run heap too small: {} nodes",
                w.name(),
                mid.nodes
            );
        }
    }
}
