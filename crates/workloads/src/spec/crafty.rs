//! `crafty`-like chess engine: a transposition hash table whose entries
//! are almost all singleton chains, plus board/history buffers —
//! nearly everything is a leaf (paper Figure 7A: Leaves stable,
//! 85.3–97.1 %).

use crate::{Input, Workload, WorkloadKind};
use faults::FaultPlan;
use heapmd::{HeapError, Process};
use rand::Rng;
use sim_ds::{BufferPool, SimHashTable};

/// The crafty-like chess-engine workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Crafty;

impl Workload for Crafty {
    fn name(&self) -> &'static str {
        "crafty"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Spec
    }

    fn default_frq(&self) -> u64 {
        140
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let mut rng = input.rng();
        let tt_buckets = input.scaled(384);
        let boards = input.scaled(60);
        let iterations = input.scaled(1900);
        // Load factor < 1 keeps most chains singleton ⇒ leaf entries.
        let tt_target = (tt_buckets as f64 * (0.25 + input.shape() * 0.2)) as u64;

        p.enter("crafty::main");
        let mut tt = SimHashTable::new(p, tt_buckets, "crafty.ttable")?;
        let mut board_pool = BufferPool::new(boards, "crafty.board");
        // Killer-move chains: rebuilt between search phases.
        let mut killers = crate::PhaseFlipper::new(p, input.scaled(10), "crafty.killers")?;
        p.enter("crafty::init");
        for _ in 0..boards {
            board_pool.acquire(p, 128)?;
        }
        p.leave();

        let mut next_key = 0u64;
        let mut live: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        for i in 0..iterations {
            p.enter("crafty::search_node");
            board_pool.acquire(p, 128)?;
            // Probe, then store: keep the table near its target size.
            let probe = rng.gen_range(0..next_key.max(1));
            tt.lookup(p, probe)?;
            if (tt.len() as u64) < tt_target || rng.gen_bool(0.5) {
                tt.insert(p, plan, next_key)?;
                live.push_back(next_key);
                next_key += 1;
            }
            if tt.len() as u64 > tt_target {
                // Replacement: age out the oldest entry.
                if let Some(victim) = live.pop_front() {
                    tt.remove(p, victim)?;
                }
            }
            if i % 100 == 0 {
                board_pool.touch_all(p)?;
                killers.touch_all(p)?;
            }
            p.leave();
            if i % 350 == 349 {
                killers.flip(p)?;
            }
        }

        p.enter("crafty::cleanup");
        killers.free_all(p)?;
        board_pool.drain(p)?;
        tt.free_all(p)?;
        p.leave();
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train;
    use heapmd::MetricKind;

    #[test]
    fn leaves_dominate_crafty() {
        let outcome = train(&Crafty, &Input::set(3));
        let sm = outcome
            .model
            .stable_metric(MetricKind::Leaves)
            .expect("Leaves must be globally stable for crafty");
        assert!(
            sm.min > 60.0 && sm.max > 80.0,
            "crafty should be leaf-dominated: [{:.1}, {:.1}]",
            sm.min,
            sm.max
        );
    }
}
