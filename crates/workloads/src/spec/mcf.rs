//! `mcf`-like network simplex: one large arc/node network where nearly
//! every object is referenced by something, so *Roots* hovers just
//! above zero (paper Figure 7A: Root stable, 0–5.4 %).

use crate::{Input, Workload, WorkloadKind};
use faults::FaultPlan;
use heapmd::{HeapError, Process};
use rand::Rng;
use sim_ds::{GraphShape, SimGraph, SimList};

/// The mcf-like network-simplex workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Mcf;

impl Workload for Mcf {
    fn name(&self) -> &'static str {
        "mcf"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Spec
    }

    fn default_frq(&self) -> u64 {
        60
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let mut rng = input.rng();
        let nodes = input.scaled(90);
        let avg_degree = 2 + (input.shape() * 2.0) as usize;
        let iterations = input.scaled(1500);

        p.enter("mcf::main");
        // The network is built once and stays; pricing sweeps touch it.
        let mut network = SimGraph::generate(
            p,
            plan,
            nodes,
            avg_degree,
            GraphShape::Uniform,
            input.seed,
            "mcf.network",
        )?;

        // Candidate-arc lists churn in a steady cycle.
        let mut candidates = SimList::new("mcf.candidate");
        let cand_target = 10 + (input.shape() * 10.0) as usize;
        // Basis scratch: restructured at each refactorization (fan↔chain
        // leaves Roots — mcf's signature — untouched).
        let mut basis = crate::PhaseFlipper::with_style(
            p,
            input.scaled(8),
            "mcf.basis",
            crate::FlipStyle::FanChain,
        )?;

        for i in 0..iterations {
            p.enter("mcf::simplex_iteration");
            if candidates.len() < cand_target || rng.gen_bool(0.5) {
                candidates.push_front(p, i as u64)?;
            }
            if candidates.len() > cand_target {
                candidates.pop_front(p, plan)?;
            }
            if i % 8 == 0 {
                // Pricing: walk part of the network.
                network.bfs_touch(p)?;
            }
            if i % 200 == 0 {
                // Occasionally densify the basis with a fresh arc.
                let a = rng.gen_range(0..nodes);
                let b = rng.gen_range(0..nodes);
                network.add_edge(p, a, b, "mcf.network")?;
            }
            if i % 64 == 0 {
                basis.touch_all(p)?;
            }
            p.leave();
            if i % 270 == 269 {
                basis.flip(p)?;
            }
        }

        p.enter("mcf::cleanup");
        basis.free_all(p)?;
        candidates.free_all(p)?;
        network.free_all(p)?;
        p.leave();
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train;
    use heapmd::MetricKind;

    #[test]
    fn roots_stay_near_zero_for_mcf() {
        let outcome = train(&Mcf, &Input::set(3));
        let sm = outcome
            .model
            .stable_metric(MetricKind::Roots)
            .expect("Roots must be globally stable for mcf");
        assert!(
            sm.max < 20.0,
            "a connected network has few roots: [{:.1}, {:.1}]",
            sm.min,
            sm.max
        );
    }
}
