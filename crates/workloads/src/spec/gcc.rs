//! `gcc`-like compiler: alternating front-end (token/statement chains)
//! and middle-end (expression trees) phases over a pool of RTL leaf
//! records. The chain share varies with the input, giving a stable but
//! wide-banded *Outdeg=1* (paper Figure 7A: Outdeg=1 stable,
//! 8.7–37.1 %), while the phase alternation keeps several other
//! metrics only locally stable.

use crate::{Input, Workload, WorkloadKind};
use faults::FaultPlan;
use heapmd::{HeapError, Process};
use rand::Rng;
use sim_ds::{BufferPool, SimBinTree, SimList};

/// The gcc-like compiler workload.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gcc;

impl Workload for Gcc {
    fn name(&self) -> &'static str {
        "gcc"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Spec
    }

    fn default_frq(&self) -> u64 {
        260
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let mut rng = input.rng();
        let chain_count = 10 + (input.shape() * 60.0) as usize;
        let chain_len = 6;
        let rtl_records = input.scaled(150);
        let functions = input.scaled(24);

        p.enter("gcc::main");
        let mut rtl = BufferPool::new(rtl_records, "gcc.rtl");
        p.enter("gcc::init");
        for _ in 0..rtl_records {
            rtl.acquire(p, 64)?;
        }
        let mut chains: Vec<SimList> = Vec::new();
        for _ in 0..chain_count {
            let mut c = SimList::new("gcc.insn_chain");
            for k in 0..chain_len {
                c.push_front(p, k as u64)?;
            }
            chains.push(c);
        }
        p.leave();

        // Compile one "function" per phase pair: parse builds trees,
        // optimize tears them down — classic phase behaviour.
        for f in 0..functions {
            p.enter("gcc::parse_function");
            let mut ast = SimBinTree::new("gcc.ast");
            let ast_size = 40 + rng.gen_range(0..40);
            for _ in 0..ast_size {
                ast.insert(p, plan, rng.gen_range(0..1_000_000))?;
            }
            // Insn chains churn alongside.
            for _ in 0..30 {
                let k = rng.gen_range(0..chains.len());
                chains[k].free_all(p)?;
                for j in 0..chain_len {
                    chains[k].push_front(p, j as u64)?;
                }
                rtl.acquire(p, 64)?;
            }
            p.leave();

            p.enter("gcc::optimize_function");
            for _ in 0..20 {
                ast.contains(p, rng.gen_range(0..1_000_000))?;
                rtl.acquire(p, 64)?;
            }
            ast.free_all(p)?;
            p.leave();
            let _ = f;
        }

        p.enter("gcc::cleanup");
        for mut c in chains {
            c.free_all(p)?;
        }
        rtl.drain(p)?;
        p.leave();
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train;
    use heapmd::MetricKind;

    #[test]
    fn outdeg1_is_stable_for_gcc() {
        let outcome = train(&Gcc, &Input::set(3));
        assert!(
            outcome.model.is_stable(MetricKind::Outdeg1),
            "Outdeg=1 must be globally stable for gcc; stable set: {:?}",
            outcome
                .model
                .stable
                .iter()
                .map(|s| s.kind)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn gcc_does_not_stabilize_everything() {
        // The parse/optimize phases must leave at least one metric
        // non-globally-stable (gcc has 2 stable of 7 in the paper).
        let outcome = train(&Gcc, &Input::set(3));
        assert!(
            outcome.model.stable.len() < 7,
            "phase behaviour should leave some metrics unstable"
        );
    }
}
