//! The PC game (simulation): unit rosters, order queues, event/anim/
//! sound rings, a terrain index, a collision hash, and a spatial graph
//! (paper Figure 7A/B: Outdeg=1 stable).
//!
//! Hosts 9 of the Table 2 bugs, one tiny leak, and the benign AI cache
//! behind SWAT's Table 1 false positive.

use crate::{Input, Workload, WorkloadKind};
use faults::{FaultId, FaultPlan};
use heapmd::{HeapError, Process};
use rand::Rng;
use sim_ds::{
    GraphShape, SimBTree, SimCircularList, SimDList, SimGraph, SimHashTable, SimList, StaleCache,
    TableDescriptors,
};

/// The simulation-game-like workload.
#[derive(Debug, Clone, Copy)]
pub struct GameSim {
    version: u8,
}

impl GameSim {
    /// The program at development version `version` (1–5).
    pub fn new(version: u8) -> Self {
        assert!((1..=5).contains(&version), "versions are 1..=5");
        GameSim { version }
    }

    /// The development version.
    pub fn version(&self) -> u8 {
        self.version
    }
}

impl Workload for GameSim {
    fn name(&self) -> &'static str {
        "game_sim"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Commercial
    }

    fn default_frq(&self) -> u64 {
        400
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let mut rng = input.rng();
        let vscale = 1.0 + 0.04 * (self.version as f64 - 1.0);
        let sized = |base: usize| ((base as f64 * input.scale() * vscale) as usize).max(1);

        let unit_target = sized(60);
        let order_lists = sized(20);
        let order_len = 4;
        let ring_count = sized(18);
        let ring_size = 6;
        let terrain_baseline = sized(80);
        let hash_buckets = sized(96);
        let hash_target = sized(120) as u64;
        let ticks = sized(1300);

        p.enter("gs::main");

        p.enter("gs::load_map");
        let mut units = SimDList::with_fault(p, "gs.units", FaultId("gs.unit_dlist.skip_prev"))?;
        for k in 0..unit_target {
            units.push_back(p, plan, k as u64)?;
        }
        let mut orders: Vec<SimList> = (0..order_lists)
            .map(|_| SimList::with_fault("gs.order_queue", FaultId("gs.order_queue.pop_leak")))
            .collect();
        for q in &mut orders {
            for k in 0..order_len {
                q.push_front(p, k as u64)?;
            }
        }
        let mut rings: Vec<SimCircularList> = Vec::new();
        for r in 0..ring_count {
            let fault = match r % 3 {
                0 => FaultId("gs.event_ring.free_shared_head"),
                1 => FaultId("gs.anim_ring.free_shared_head"),
                _ => FaultId("gs.sound_ring.free_shared_head"),
            };
            let mut ring = SimCircularList::with_fault("gs.ring", fault);
            for k in 0..ring_size {
                ring.push(p, k as u64)?;
            }
            rings.push(ring);
        }
        let terrain_shard_size = (terrain_baseline / 4).max(4);
        let mut terrain: Vec<SimBTree> = Vec::new();
        for _ in 0..4 {
            let mut shard =
                SimBTree::with_fault(p, "gs.terrain", FaultId("gs.terrain_btree.skip_sibling"))?;
            for _ in 0..terrain_shard_size {
                shard.insert(p, plan, rng.gen_range(0..1_000_000))?;
            }
            terrain.push(shard);
        }
        let mut collisions = SimHashTable::with_fault(
            p,
            hash_buckets,
            "gs.collision",
            FaultId("gs.collision_hash.degenerate"),
        )?;
        let mut next_key = 0u64;
        let mut live_keys: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        while (collisions.len() as u64) < hash_target {
            collisions.insert(p, plan, next_key)?;
            live_keys.push_back(next_key);
            next_key += 1;
        }
        let mut unit_props = TableDescriptors::with_fault(
            p,
            20,
            "gs.unit_props",
            FaultId("gs.unit_props.typo_leak"),
        )?;
        let mut path_props = TableDescriptors::with_fault(
            p,
            20,
            "gs.path_props",
            FaultId("gs.path_props.typo_leak"),
        )?;
        for j in 0..20 {
            unit_props.set_props(p, j, 2)?;
            path_props.set_props(p, j, 2)?;
        }
        let spatial = SimGraph::generate(
            p,
            plan,
            sized(36),
            2,
            GraphShape::Uniform,
            input.seed,
            "gs.spatial",
        )?;
        let mut ai_cache =
            StaleCache::with_fault(p, sized(24), "gs.ai_cache", FaultId("gs.ai_cache.never"))?;
        for k in 0..sized(24) {
            ai_cache.insert(p, plan, k as u64)?;
        }
        let mut replays =
            SimList::with_fault("gs.replay_list", FaultId("gs.replay_list.tiny_leak"));
        for k in 0..8 {
            replays.push_front(p, k)?;
        }
        // Formation scratch: units gain a second reference while
        // grouped (double-link flips leave Outdeg=1 — the signature —
        // and Roots untouched).
        let mut formations = crate::PhaseFlipper::with_style(
            p,
            sized(22),
            "gs.formations",
            crate::FlipStyle::DoubleLink,
        )?;
        p.leave();

        let rebuild_period = 300;
        for i in 0..ticks {
            p.enter("gs::tick");
            // Unit roster churn.
            if let Some(front) = units.front(p)? {
                units.remove(p, front)?;
            }
            units.push_back(p, plan, i as u64)?;
            // Order queues: one pop (the leak call-site) + one push.
            let q = i % orders.len();
            orders[q].pop_front(p, plan)?;
            orders[q].push_front(p, i as u64)?;
            // Rings schedule events.
            let r = i % rings.len();
            rings[r].push(p, i as u64)?;
            rings[r].rotate_free_head(p, plan)?;
            // Collision hash churn.
            collisions.lookup(p, rng.gen_range(0..next_key.max(1)))?;
            collisions.insert(p, plan, next_key)?;
            live_keys.push_back(next_key);
            next_key += 1;
            if collisions.len() as u64 > hash_target {
                if let Some(victim) = live_keys.pop_front() {
                    collisions.remove(p, victim)?;
                }
            }
            // Terrain streaming trickles split traffic.
            if i % 5 == 0 {
                terrain[rng.gen_range(0..4)].insert(p, plan, rng.gen_range(0..1_000_000))?;
            }
            // Pathfinding touches the spatial graph.
            if i % 12 == 0 {
                spatial.bfs_touch(p)?;
            }
            // Property refreshes (the Fig.11 call-sites).
            if i % 10 == 0 {
                let j = rng.gen_range(0..20);
                unit_props.collect_props(p, plan, j)?;
                unit_props.set_props(p, j, 2)?;
                let j = rng.gen_range(0..20);
                path_props.collect_props(p, plan, j)?;
                path_props.set_props(p, j, 2)?;
            }
            if i % 16 == 0 {
                replays.push_front(p, i as u64)?;
                replays.pop_front(p, plan)?;
            }
            if i % 290 == 289 {
                formations.flip(p)?;
            }
            // Maintenance sweep: game state is hot every few dozen
            // ticks; the AI cache stays cold on purpose.
            if i % 40 == 17 {
                p.enter("gs::sweep");
                formations.touch_all(p)?;
                for ring in &rings {
                    ring.walk(p)?;
                }
                spatial.touch_all(p)?;
                for shard in &terrain {
                    shard.touch_all(p)?;
                }
                units.walk(p)?;
                for q in &orders {
                    q.walk(p)?;
                }
                replays.walk(p)?;
                collisions.longest_chain(p)?;
                for j in 0..20 {
                    unit_props.walk_props(p, j)?;
                    path_props.walk_props(p, j)?;
                }
                p.leave();
            }
            p.leave();

            if i % rebuild_period == rebuild_period - 1 {
                p.enter("gs::stream_terrain");
                let shard_idx = (i / rebuild_period) % terrain.len();
                let mut fresh = SimBTree::with_fault(
                    p,
                    "gs.terrain",
                    FaultId("gs.terrain_btree.skip_sibling"),
                )?;
                for _ in 0..terrain_shard_size {
                    fresh.insert(p, plan, rng.gen_range(0..1_000_000))?;
                }
                std::mem::replace(&mut terrain[shard_idx], fresh).free_all(p)?;
                p.leave();
            }
        }

        p.enter("gs::shutdown");
        units.free_all(p)?;
        for mut q in orders {
            q.free_all(p)?;
        }
        for ring in rings {
            ring.free_all(p)?;
        }
        for shard in terrain {
            shard.free_all(p)?;
        }
        collisions.free_all(p)?;
        unit_props.free_all(p)?;
        path_props.free_all(p)?;
        spatial.free_all(p)?;
        ai_cache.free_all(p)?;
        replays.free_all(p)?;
        formations.free_all(p)?;
        p.leave();
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train;
    use heapmd::MetricKind;

    #[test]
    fn outdeg1_is_stable_for_game_sim() {
        let outcome = train(&GameSim::new(1), &Input::set(3));
        assert!(
            outcome.model.is_stable(MetricKind::Outdeg1),
            "Outdeg=1 must be stable for game_sim; stable: {:?}",
            outcome
                .model
                .stable
                .iter()
                .map(|s| s.kind)
                .collect::<Vec<_>>()
        );
    }
}
