//! The productivity application: a piece-table B-tree for document
//! text, an outline tree, style and annotation chains, and a
//! cross-reference hash (paper Figure 7A/B: Leaves stable,
//! 27.9–41.1 %).
//!
//! Hosts 5 of the Table 2 bugs (4 data-structure invariants, 1
//! indirect) — the paper's productivity app had no typo or shared-state
//! bugs.

use crate::{Input, Workload, WorkloadKind};
use faults::{FaultId, FaultPlan};
use heapmd::{HeapError, Process};
use rand::Rng;
use sim_ds::{BufferPool, SimBTree, SimBinTree, SimDList, SimHashTable};

/// The office-suite-like workload.
#[derive(Debug, Clone, Copy)]
pub struct Productivity {
    version: u8,
}

impl Productivity {
    /// The program at development version `version` (1–5).
    pub fn new(version: u8) -> Self {
        assert!((1..=5).contains(&version), "versions are 1..=5");
        Productivity { version }
    }

    /// The development version.
    pub fn version(&self) -> u8 {
        self.version
    }
}

impl Workload for Productivity {
    fn name(&self) -> &'static str {
        "productivity"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Commercial
    }

    fn default_frq(&self) -> u64 {
        400
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let mut rng = input.rng();
        let vscale = 1.0 + 0.04 * (self.version as f64 - 1.0);
        let sized = |base: usize| ((base as f64 * input.scale() * vscale) as usize).max(1);

        let piece_baseline = sized(130);
        let outline_baseline = sized(60);
        let style_target = sized(40);
        let anno_target = sized(30);
        let para_buffers = sized(80);
        let xref_buckets = sized(64);
        let xref_target = sized(90) as u64;
        let edits = sized(1300);

        p.enter("prod::main");

        p.enter("prod::open_document");
        let piece_shard_size = (piece_baseline / 4).max(4);
        let mut pieces: Vec<SimBTree> = Vec::new();
        for _ in 0..4 {
            let mut shard =
                SimBTree::with_fault(p, "prod.pieces", FaultId("prod.piece_btree.skip_sibling"))?;
            for _ in 0..piece_shard_size {
                shard.insert(p, plan, rng.gen_range(0..1_000_000))?;
            }
            pieces.push(shard);
        }
        let mut outline = SimBinTree::with_faults(
            "prod.outline",
            FaultId("prod.outline_tree.skip_parent"),
            FaultId("prod.outline_tree.single_child.unused"),
        );
        for _ in 0..outline_baseline {
            outline.insert(p, plan, rng.gen_range(0..1_000_000))?;
        }
        let mut styles =
            SimDList::with_fault(p, "prod.styles", FaultId("prod.style_dlist.skip_prev"))?;
        for k in 0..style_target {
            styles.push_back(p, plan, k as u64)?;
        }
        let mut annos =
            SimDList::with_fault(p, "prod.annotations", FaultId("prod.anno_dlist.skip_prev"))?;
        for k in 0..anno_target {
            annos.push_back(p, plan, k as u64)?;
        }
        let mut paragraphs = BufferPool::new(para_buffers, "prod.paragraph");
        for _ in 0..para_buffers {
            paragraphs.acquire(p, 96 + rng.gen_range(0..64))?;
        }
        let mut xrefs = SimHashTable::with_fault(
            p,
            xref_buckets,
            "prod.xrefs",
            FaultId("prod.ref_hash.degenerate"),
        )?;
        let mut next_ref = 0u64;
        let mut live_refs: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        while (xrefs.len() as u64) < xref_target {
            xrefs.insert(p, plan, next_ref)?;
            live_refs.push_back(next_ref);
            next_ref += 1;
        }
        // Clipboard scratch: populated while editing a selection,
        // dropped on paste.
        let mut clipboard = crate::PhaseFlipper::new(p, sized(14), "prod.clipboard")?;
        p.leave();

        let rebuild_period = 120;
        for i in 0..edits {
            p.enter("prod::apply_edit");
            // Piece-table updates (the skip-sibling call-site splits):
            // steady split traffic across the shards.
            if i % 3 == 0 {
                pieces[rng.gen_range(0..4)].insert(p, plan, rng.gen_range(0..1_000_000))?;
            }
            pieces[i % 4].contains(p, rng.gen_range(0..1_000_000))?;
            // Outline restructure: balanced churn.
            outline.insert(p, plan, rng.gen_range(0..1_000_000))?;
            outline.pop_leaf(p)?;
            // Style/annotation chains churn.
            if let Some(front) = styles.front(p)? {
                styles.remove(p, front)?;
            }
            styles.push_back(p, plan, i as u64)?;
            if i % 2 == 0 {
                if let Some(front) = annos.front(p)? {
                    annos.remove(p, front)?;
                }
                annos.push_back(p, plan, i as u64)?;
            }
            // Maintenance sweep: repagination and autosave touch the
            // whole document model.
            if i % 40 == 17 {
                p.enter("prod::sweep");
                for shard in &pieces {
                    shard.touch_all(p)?;
                }
                outline.touch_all(p)?;
                styles.walk(p)?;
                annos.walk(p)?;
                paragraphs.touch_all(p)?;
                clipboard.touch_all(p)?;
                xrefs.longest_chain(p)?;
                p.leave();
            }
            // Paragraph buffers recycle; xrefs churn.
            paragraphs.acquire(p, 96 + rng.gen_range(0..64))?;
            xrefs.lookup(p, rng.gen_range(0..next_ref.max(1)))?;
            xrefs.insert(p, plan, next_ref)?;
            live_refs.push_back(next_ref);
            next_ref += 1;
            if xrefs.len() as u64 > xref_target {
                if let Some(victim) = live_refs.pop_front() {
                    xrefs.remove(p, victim)?;
                }
            }
            p.leave();

            if i % 260 == 259 {
                clipboard.flip(p)?;
            }
            if i % rebuild_period == rebuild_period - 1 {
                p.enter("prod::repaginate");
                let shard_idx = (i / rebuild_period) % pieces.len();
                let mut fresh = SimBTree::with_fault(
                    p,
                    "prod.pieces",
                    FaultId("prod.piece_btree.skip_sibling"),
                )?;
                for _ in 0..piece_shard_size {
                    fresh.insert(p, plan, rng.gen_range(0..1_000_000))?;
                }
                std::mem::replace(&mut pieces[shard_idx], fresh).free_all(p)?;
                p.leave();
            }
        }

        p.enter("prod::close_document");
        for shard in pieces {
            shard.free_all(p)?;
        }
        outline.free_all(p)?;
        styles.free_all(p)?;
        annos.free_all(p)?;
        paragraphs.drain(p)?;
        clipboard.free_all(p)?;
        xrefs.free_all(p)?;
        p.leave();
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train;
    use heapmd::MetricKind;

    #[test]
    fn leaves_is_stable_for_productivity() {
        let outcome = train(&Productivity::new(1), &Input::set(3));
        assert!(
            outcome.model.is_stable(MetricKind::Leaves),
            "Leaves must be stable for productivity; stable: {:?}",
            outcome
                .model
                .stable
                .iter()
                .map(|s| s.kind)
                .collect::<Vec<_>>()
        );
    }
}
