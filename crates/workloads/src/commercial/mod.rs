//! Commercial-application-like programs.
//!
//! These five programs model the paper's large Microsoft applications:
//! heterogeneous heaps (several structure families at once, no single
//! dominant structure), long runs, five development versions each, and
//! the call-sites that host the Table 2 bug catalog.

mod game_action;
mod game_sim;
mod multimedia;
mod productivity;
mod webapp;

pub use game_action::GameAction;
pub use game_sim::GameSim;
pub use multimedia::Multimedia;
pub use productivity::Productivity;
pub use webapp::WebApp;

#[cfg(test)]
mod tests {
    use crate::harness::{run_once, settings_for};
    use crate::{commercial_registry, Input, WorkloadKind};
    use faults::FaultPlan;

    #[test]
    fn every_commercial_program_runs_clean_and_samples() {
        for w in commercial_registry() {
            assert_eq!(w.kind(), WorkloadKind::Commercial);
            let settings = settings_for(w.as_ref());
            let report = run_once(w.as_ref(), &Input::new(0), &mut FaultPlan::new(), &settings);
            assert!(
                report.len() >= 30,
                "{} produced only {} samples",
                w.name(),
                report.len()
            );
            let mid = &report.samples[report.len() / 2];
            assert!(
                mid.nodes >= 100,
                "{} mid-run heap too small: {} nodes",
                w.name(),
                mid.nodes
            );
        }
    }
}
