//! The multimedia application: codec tables, stream rings, track
//! lists, and property descriptors (paper Figure 7A/B: In=Out stable).
//!
//! Hosts 8 of the Table 2 bugs plus two SWAT-only leaks — see
//! [`crate::bugs`].

use crate::{Input, Workload, WorkloadKind};
use faults::{FaultId, FaultPlan};
use heapmd::{HeapError, Process};
use rand::Rng;
use sim_ds::{
    SimBTree, SimBinTree, SimCircularList, SimDList, SimHashTable, SimList, StaleCache,
    TableDescriptors,
};

/// The multimedia-player-like workload.
#[derive(Debug, Clone, Copy)]
pub struct Multimedia {
    version: u8,
}

impl Multimedia {
    /// The program at development version `version` (1–5).
    pub fn new(version: u8) -> Self {
        assert!((1..=5).contains(&version), "versions are 1..=5");
        Multimedia { version }
    }

    /// The development version.
    pub fn version(&self) -> u8 {
        self.version
    }
}

impl Workload for Multimedia {
    fn name(&self) -> &'static str {
        "multimedia"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Commercial
    }

    fn default_frq(&self) -> u64 {
        400
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let mut rng = input.rng();
        // Successive versions grow the workload slightly without
        // changing the structure mix — the Figure 7B property.
        let vscale = 1.0 + 0.04 * (self.version as f64 - 1.0);
        let sized = |base: usize| ((base as f64 * input.scale() * vscale) as usize).max(1);

        let codec_buckets = sized(192);
        let codec_target = sized(260) as u64;
        let ring_count = sized(24);
        let ring_size = 6;
        let track_target = sized(40);
        let playlist_target = sized(24);
        let tree_baseline = sized(36);
        let iterations = sized(1300);

        p.enter("mm::main");

        // --- Startup ---------------------------------------------------
        p.enter("mm::startup");
        let mut codecs = SimHashTable::with_fault(
            p,
            codec_buckets,
            "mm.codec",
            FaultId("mm.codec_table.degenerate_hash"),
        )?;
        let mut next_codec = 0u64;
        let mut live_codecs: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        while (codecs.len() as u64) < codec_target {
            codecs.insert(p, plan, next_codec)?;
            live_codecs.push_back(next_codec);
            next_codec += 1;
        }
        let mut rings: Vec<SimCircularList> = Vec::new();
        for r in 0..ring_count {
            let fault = if r % 2 == 0 {
                FaultId("mm.stream_ring.free_shared_head")
            } else {
                FaultId("mm.mixer_ring.free_shared_head")
            };
            let mut ring = SimCircularList::with_fault("mm.ring", fault);
            for k in 0..ring_size {
                ring.push(p, k as u64)?;
            }
            rings.push(ring);
        }
        let mut tracks = SimDList::with_fault(p, "mm.tracks", FaultId("mm.track_dlist.skip_prev"))?;
        for k in 0..track_target {
            tracks.push_back(p, plan, k as u64)?;
        }
        let mut playlist = SimList::with_fault("mm.playlist", FaultId("mm.playlist.pop_leak"));
        for k in 0..playlist_target {
            playlist.push_front(p, k as u64)?;
        }
        let mut overlay = SimBinTree::with_faults(
            "mm.overlay",
            FaultId("mm.scene_tree.skip_parent"),
            FaultId("mm.scene_tree.single_child.unused"),
        );
        for _ in 0..tree_baseline {
            overlay.insert(p, plan, rng.gen_range(0..1_000_000))?;
        }
        let index_shard_size = (tree_baseline / 4).max(4);
        let mut media_index: Vec<SimBTree> = Vec::new();
        for _ in 0..4 {
            let mut shard =
                SimBTree::with_fault(p, "mm.media_index", FaultId("mm.index_btree.skip_sibling"))?;
            for _ in 0..index_shard_size {
                shard.insert(p, plan, rng.gen_range(0..1_000_000))?;
            }
            media_index.push(shard);
        }
        let mut codec_props = TableDescriptors::with_fault(
            p,
            16,
            "mm.codec_props",
            FaultId("mm.codec_props.typo_leak"),
        )?;
        for j in 0..16 {
            codec_props.set_props(p, j, 1 + (j % 2))?;
        }
        let mut registry =
            StaleCache::with_fault(p, 8, "mm.registry", FaultId("mm.registry.reachable_leak"))?;
        let mut thumbs = SimList::with_fault("mm.thumb_list", FaultId("mm.thumb_list.tiny_leak"));
        for k in 0..8 {
            thumbs.push_front(p, k)?;
        }
        // Demux scratch: built per title, torn down between titles.
        let mut demux = crate::PhaseFlipper::new(p, sized(24), "mm.demux")?;
        p.leave();

        // --- Playback loop ----------------------------------------------
        let rebuild_period = 260;
        for i in 0..iterations {
            p.enter("mm::decode_frame");
            // Codec table churn.
            codecs.lookup(p, rng.gen_range(0..next_codec.max(1)))?;
            codecs.insert(p, plan, next_codec)?;
            live_codecs.push_back(next_codec);
            next_codec += 1;
            if codecs.len() as u64 > codec_target {
                if let Some(victim) = live_codecs.pop_front() {
                    codecs.remove(p, victim)?;
                }
            }
            // Ring scheduling: produce one node, consume one.
            let r = i % rings.len();
            rings[r].push(p, i as u64)?;
            rings[r].rotate_free_head(p, plan)?;
            // Track list churn.
            if let Some(front) = tracks.front(p)? {
                tracks.remove(p, front)?;
            }
            tracks.push_back(p, plan, i as u64)?;
            // Playlist rotation (pop + push: the leak call-site).
            playlist.pop_front(p, plan)?;
            playlist.push_front(p, i as u64)?;
            // Index updates trickle split traffic through the B-tree.
            if i % 6 == 0 {
                let shard_idx = rng.gen_range(0..media_index.len());
                media_index[shard_idx].insert(p, plan, rng.gen_range(0..1_000_000))?;
            }
            // Rebuild a shard more often than the big epoch so shard
            // growth stays a ripple, not a drift.
            if i % 64 == 63 {
                let shard_idx = (i / 64) % media_index.len();
                let mut fresh = SimBTree::with_fault(
                    p,
                    "mm.media_index",
                    FaultId("mm.index_btree.skip_sibling"),
                )?;
                for _ in 0..index_shard_size {
                    fresh.insert(p, plan, rng.gen_range(0..1_000_000))?;
                }
                std::mem::replace(&mut media_index[shard_idx], fresh).free_all(p)?;
            }
            // Property refresh every few frames (the Fig.11 call-site).
            if i % 12 == 0 {
                let j = rng.gen_range(0..16);
                codec_props.collect_props(p, plan, j)?;
                codec_props.set_props(p, j, 1 + (j % 2))?;
            }
            // Registry rotates briskly when healthy (the reachable
            // leak disables its eviction, and only the hot tail keeps
            // being read); thumbnails tick over.
            if i % 48 == 0 {
                registry.insert(p, plan, i as u64)?;
            }
            if i % 8 == 4 {
                registry.touch_recent(p, 8)?;
            }
            if i % 10 == 0 {
                thumbs.push_front(p, i as u64)?;
                thumbs.pop_front(p, plan)?;
            }
            // Maintenance sweep: long-running media apps revisit their
            // working set (render, seek, save); the registry cache is
            // deliberately left cold.
            if i % 40 == 17 {
                p.enter("mm::sweep");
                for ring in &rings {
                    ring.walk(p)?;
                }
                for shard in &media_index {
                    shard.touch_all(p)?;
                }
                overlay.touch_all(p)?;
                tracks.walk(p)?;
                playlist.walk(p)?;
                thumbs.walk(p)?;
                codecs.longest_chain(p)?;
                demux.touch_all(p)?;
                for j in 0..16 {
                    codec_props.walk_props(p, j)?;
                }
                p.leave();
            }
            p.leave();
            if i % 280 == 279 {
                demux.flip(p)?;
            }

            // Epoch: rebuild one index shard and the overlay tree —
            // staggered, so the transient stays a small fraction of
            // the heap.
            if i % rebuild_period == rebuild_period - 1 {
                p.enter("mm::rebuild_indexes");
                overlay.free_all(p)?;
                for _ in 0..tree_baseline {
                    overlay.insert(p, plan, rng.gen_range(0..1_000_000))?;
                }
                let shard_idx = (i / rebuild_period) % media_index.len();
                let mut fresh = SimBTree::with_fault(
                    p,
                    "mm.media_index",
                    FaultId("mm.index_btree.skip_sibling"),
                )?;
                for _ in 0..index_shard_size {
                    fresh.insert(p, plan, rng.gen_range(0..1_000_000))?;
                }
                std::mem::replace(&mut media_index[shard_idx], fresh).free_all(p)?;
                p.leave();
            }
        }

        // --- Shutdown ----------------------------------------------------
        p.enter("mm::shutdown");
        overlay.free_all(p)?;
        for shard in media_index {
            shard.free_all(p)?;
        }
        tracks.free_all(p)?;
        playlist.free_all(p)?;
        for ring in rings {
            ring.free_all(p)?;
        }
        codecs.free_all(p)?;
        codec_props.free_all(p)?;
        registry.free_all(p)?;
        thumbs.free_all(p)?;
        demux.free_all(p)?;
        p.leave();
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train;

    #[test]
    fn multimedia_has_stable_metrics() {
        let outcome = train(&Multimedia::new(1), &Input::set(3));
        assert!(
            !outcome.model.stable.is_empty(),
            "multimedia must calibrate at least one stable metric"
        );
        // With only 3 training inputs an occasional run may stray just
        // outside the others' calibrated envelope — the paper treats
        // such training inputs as suspect, not as an error.
        assert!(outcome.flagged_runs.len() <= 1, "too many flagged runs");
    }

    #[test]
    fn versions_share_stable_metrics() {
        let m1 = train(&Multimedia::new(1), &Input::set(3)).model;
        let m4 = train(&Multimedia::new(4), &Input::set(3)).model;
        let k1: Vec<_> = m1.stable.iter().map(|s| s.kind).collect();
        let k4: Vec<_> = m4.stable.iter().map(|s| s.kind).collect();
        assert!(
            k1.iter().any(|k| k4.contains(k)),
            "v1 {:?} and v4 {:?} share no stable metric",
            k1,
            k4
        );
    }
}
