//! The interactive web application: DOM and form trees, session and
//! navigation lists, a URL index, render caches (paper Figure 7A/B:
//! Indeg=1 stable).
//!
//! Hosts 10 of the Table 2 bugs, three reachable leaks, one tiny leak,
//! and the benign stale render cache that makes SWAT false-positive in
//! Table 1.

use crate::{Input, Workload, WorkloadKind};
use faults::{FaultId, FaultPlan};
use heapmd::{HeapError, Process};
use rand::Rng;
use sim_ds::{
    GraphShape, SimBTree, SimBinTree, SimDList, SimGraph, SimList, StaleCache, TableDescriptors,
};

/// The interactive-web-app-like workload.
#[derive(Debug, Clone, Copy)]
pub struct WebApp {
    version: u8,
}

impl WebApp {
    /// The program at development version `version` (1–5).
    pub fn new(version: u8) -> Self {
        assert!((1..=5).contains(&version), "versions are 1..=5");
        WebApp { version }
    }

    /// The development version.
    pub fn version(&self) -> u8 {
        self.version
    }
}

impl Workload for WebApp {
    fn name(&self) -> &'static str {
        "webapp"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Commercial
    }

    fn default_frq(&self) -> u64 {
        400
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let mut rng = input.rng();
        let vscale = 1.0 + 0.04 * (self.version as f64 - 1.0);
        let sized = |base: usize| ((base as f64 * input.scale() * vscale) as usize).max(1);

        let dom_baseline = sized(140);
        let form_baseline = sized(60);
        let index_baseline = sized(90);
        let session_target = sized(36);
        let nav_target = sized(24);
        let requests = sized(1200);

        p.enter("webapp::main");

        p.enter("webapp::startup");
        let mut dom = SimBinTree::with_faults(
            "webapp.dom",
            FaultId("webapp.dom_tree.skip_parent"),
            FaultId("webapp.dom_tree.single_child.unused"),
        );
        for _ in 0..dom_baseline {
            dom.insert(p, plan, rng.gen_range(0..1_000_000))?;
        }
        let mut form = SimBinTree::with_faults(
            "webapp.form",
            FaultId("webapp.form_tree.skip_parent"),
            FaultId("webapp.form_tree.single_child.unused"),
        );
        for _ in 0..form_baseline {
            form.insert(p, plan, rng.gen_range(0..1_000_000))?;
        }
        let index_shard_size = (index_baseline / 4).max(4);
        let mut index: Vec<SimBTree> = Vec::new();
        for _ in 0..4 {
            let mut shard = SimBTree::with_fault(
                p,
                "webapp.url_index",
                FaultId("webapp.index_btree.skip_sibling"),
            )?;
            for _ in 0..index_shard_size {
                shard.insert(p, plan, rng.gen_range(0..1_000_000))?;
            }
            index.push(shard);
        }
        let mut sessions = SimDList::with_fault(
            p,
            "webapp.sessions",
            FaultId("webapp.session_dlist.skip_prev"),
        )?;
        for k in 0..session_target {
            sessions.push_back(p, plan, k as u64)?;
        }
        let mut nav = SimDList::with_fault(p, "webapp.nav", FaultId("webapp.nav_dlist.skip_prev"))?;
        for k in 0..nav_target {
            nav.push_back(p, plan, k as u64)?;
        }
        let mut session_props = TableDescriptors::with_fault(
            p,
            24,
            "webapp.session_props",
            FaultId("webapp.session_props.typo_leak"),
        )?;
        let mut tmpl_props = TableDescriptors::with_fault(
            p,
            24,
            "webapp.tmpl_props",
            FaultId("webapp.tmpl_props.typo_leak"),
        )?;
        for j in 0..24 {
            session_props.set_props(p, j, 2)?;
            tmpl_props.set_props(p, j, 2)?;
        }
        let mut req_log = SimList::with_fault("webapp.req_log", FaultId("webapp.req_log.pop_leak"));
        let mut cookies =
            SimList::with_fault("webapp.cookie_list", FaultId("webapp.cookie_list.pop_leak"));
        for k in 0..16 {
            req_log.push_front(p, k)?;
            cookies.push_front(p, k)?;
        }
        // Site graph: regenerated per navigation epoch; the atypical
        // fault turns it into a star.
        let mut sitegraph = SimGraph::generate_with_fault(
            p,
            plan,
            sized(40),
            2,
            GraphShape::Uniform,
            input.seed,
            "webapp.sitegraph",
            FaultId("webapp.sitegraph.atypical"),
        )?;
        // Caches & registries: the benign render cache (SWAT's false
        // positive) plus the three reachable-leak registries.
        let mut render_cache = StaleCache::with_fault(
            p,
            sized(30),
            "webapp.render_cache",
            FaultId("webapp.render_cache.never"),
        )?;
        for k in 0..sized(30) {
            render_cache.insert(p, plan, k as u64)?;
        }
        let mut res_registry = StaleCache::with_fault(
            p,
            8,
            "webapp.res_registry",
            FaultId("webapp.res_registry.reachable_leak"),
        )?;
        let mut blob_registry = StaleCache::with_fault(
            p,
            8,
            "webapp.blob_registry",
            FaultId("webapp.blob_registry.reachable_leak"),
        )?;
        let mut hist_registry = StaleCache::with_fault(
            p,
            8,
            "webapp.hist_registry",
            FaultId("webapp.hist_registry.reachable_leak"),
        )?;
        let mut tmp_files =
            SimList::with_fault("webapp.tmp_list", FaultId("webapp.tmp_list.tiny_leak"));
        let mut fragments =
            SimList::with_fault("webapp.frag_list", FaultId("webapp.frag_list.tiny_leak"));
        for k in 0..8 {
            tmp_files.push_front(p, k)?;
            fragments.push_front(p, k)?;
        }
        // Shared-node scratch: DOM nodes briefly double-referenced
        // while a render transaction pins them. Small enough that the
        // Indeg=1 signature stays within thresholds while Indeg=2 does
        // not.
        let mut pins = crate::PhaseFlipper::with_style(
            p,
            sized(14),
            "webapp.pins",
            crate::FlipStyle::DoubleLink,
        )?;
        p.leave();

        let rebuild_period = 240;
        for i in 0..requests {
            p.enter("webapp::handle_request");
            // DOM churn: balanced insert + leaf removal keeps the tree
            // at its baseline size while exercising the buggy insert.
            dom.insert(p, plan, rng.gen_range(0..1_000_000))?;
            dom.pop_leaf(p)?;
            form.insert(p, plan, rng.gen_range(0..1_000_000))?;
            form.pop_leaf(p)?;
            index[i % 4].contains(p, rng.gen_range(0..1_000_000))?;
            if i % 4 == 0 {
                index[rng.gen_range(0..4)].insert(p, plan, rng.gen_range(0..1_000_000))?;
            }
            // Session/navigation list churn.
            if let Some(front) = sessions.front(p)? {
                sessions.remove(p, front)?;
            }
            sessions.push_back(p, plan, i as u64)?;
            if let Some(front) = nav.front(p)? {
                nav.remove(p, front)?;
            }
            nav.push_back(p, plan, i as u64)?;
            // Logs rotate (the pop-leak call-sites).
            req_log.push_front(p, i as u64)?;
            req_log.pop_front(p, plan)?;
            cookies.push_front(p, i as u64)?;
            cookies.pop_front(p, plan)?;
            // Property refreshes (the Fig.11 call-sites).
            if i % 6 == 0 {
                let j = rng.gen_range(0..24);
                session_props.collect_props(p, plan, j)?;
                session_props.set_props(p, j, 2)?;
                let j = rng.gen_range(0..24);
                tmpl_props.collect_props(p, plan, j)?;
                tmpl_props.set_props(p, j, 2)?;
            }
            if i % 260 == 259 {
                pins.flip(p)?;
            }
            // Maintenance sweep: sessions, DOM, and indexes are hot;
            // the render cache and the leak-prone registries stay cold.
            if i % 40 == 17 {
                p.enter("webapp::sweep");
                pins.touch_all(p)?;
                dom.touch_all(p)?;
                form.touch_all(p)?;
                for shard in &index {
                    shard.touch_all(p)?;
                }
                sessions.walk(p)?;
                nav.walk(p)?;
                req_log.walk(p)?;
                cookies.walk(p)?;
                tmp_files.walk(p)?;
                fragments.walk(p)?;
                for j in 0..24 {
                    session_props.walk_props(p, j)?;
                    tmpl_props.walk_props(p, j)?;
                }
                sitegraph.touch_all(p)?;
                p.leave();
            }
            // Registries trickle slowly (a leaked registry must stay a
            // sliver of the heap — reachable leaks are invisible to
            // HeapMD precisely because they do not bend the shape);
            // the render cache is read only rarely.
            if i % 40 == 0 {
                res_registry.insert(p, plan, i as u64)?;
                blob_registry.insert(p, plan, i as u64)?;
                hist_registry.insert(p, plan, i as u64)?;
            }
            if i % 16 == 9 {
                // Only the hot tail of each registry is consulted; a
                // leaked (ever-growing) registry accumulates a stale
                // body behind it.
                res_registry.touch_recent(p, 8)?;
                blob_registry.touch_recent(p, 8)?;
                hist_registry.touch_recent(p, 8)?;
            }
            if i % 8 == 0 {
                tmp_files.push_front(p, i as u64)?;
                tmp_files.pop_front(p, plan)?;
                fragments.push_front(p, i as u64)?;
                fragments.pop_front(p, plan)?;
            }
            p.leave();

            if i % rebuild_period == rebuild_period - 1 {
                p.enter("webapp::navigate");
                dom.free_all(p)?;
                for _ in 0..dom_baseline {
                    dom.insert(p, plan, rng.gen_range(0..1_000_000))?;
                }
                form.free_all(p)?;
                for _ in 0..form_baseline {
                    form.insert(p, plan, rng.gen_range(0..1_000_000))?;
                }
                let fresh = SimGraph::generate_with_fault(
                    p,
                    plan,
                    sized(40),
                    2,
                    GraphShape::Uniform,
                    input.seed ^ i as u64,
                    "webapp.sitegraph",
                    FaultId("webapp.sitegraph.atypical"),
                )?;
                std::mem::replace(&mut sitegraph, fresh).free_all(p)?;
                let shard_idx = (i / rebuild_period) % index.len();
                let mut fresh = SimBTree::with_fault(
                    p,
                    "webapp.url_index",
                    FaultId("webapp.index_btree.skip_sibling"),
                )?;
                for _ in 0..index_shard_size {
                    fresh.insert(p, plan, rng.gen_range(0..1_000_000))?;
                }
                std::mem::replace(&mut index[shard_idx], fresh).free_all(p)?;
                p.leave();
            }
        }

        p.enter("webapp::shutdown");
        dom.free_all(p)?;
        form.free_all(p)?;
        for shard in index {
            shard.free_all(p)?;
        }
        sessions.free_all(p)?;
        nav.free_all(p)?;
        session_props.free_all(p)?;
        tmpl_props.free_all(p)?;
        req_log.free_all(p)?;
        cookies.free_all(p)?;
        sitegraph.free_all(p)?;
        render_cache.free_all(p)?;
        res_registry.free_all(p)?;
        blob_registry.free_all(p)?;
        hist_registry.free_all(p)?;
        tmp_files.free_all(p)?;
        fragments.free_all(p)?;
        pins.free_all(p)?;
        p.leave();
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::train;
    use heapmd::MetricKind;

    #[test]
    fn indeg1_is_stable_for_webapp() {
        let outcome = train(&WebApp::new(1), &Input::set(3));
        assert!(
            outcome.model.is_stable(MetricKind::Indeg1),
            "Indeg=1 must be stable for webapp; stable: {:?}",
            outcome
                .model
                .stable
                .iter()
                .map(|s| s.kind)
                .collect::<Vec<_>>()
        );
    }
}
