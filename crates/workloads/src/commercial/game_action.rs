//! The PC game (action): a startup-built world oct-tree, a scene tree
//! with parent pointers, asset lists, LOD trees, portal graphs, and a
//! large asset buffer pool (paper Figure 7A/B: Indeg=1 stable,
//! 13.2–18.5 % — the Figure 10 program).
//!
//! Hosts 8 of the Table 2 bugs, including the two headline cases: the
//! Figure 10 scene-tree parent-pointer bug (heap anomaly) and the
//! oct-DAG construction bug (the paper's only *poorly disguised* bug).

use crate::{Input, Workload, WorkloadKind};
use faults::{FaultId, FaultPlan};
use heapmd::{HeapError, Process};
use rand::Rng;
use sim_ds::{
    BufferPool, GraphShape, SimBinTree, SimCircularList, SimDList, SimGraph, SimList, SimOctTree,
    TableDescriptors,
};

/// The action-game-like workload.
#[derive(Debug, Clone, Copy)]
pub struct GameAction {
    version: u8,
}

impl GameAction {
    /// The program at development version `version` (1–5).
    pub fn new(version: u8) -> Self {
        assert!((1..=5).contains(&version), "versions are 1..=5");
        GameAction { version }
    }

    /// The development version.
    pub fn version(&self) -> u8 {
        self.version
    }
}

impl Workload for GameAction {
    fn name(&self) -> &'static str {
        "game_action"
    }

    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Commercial
    }

    fn default_frq(&self) -> u64 {
        400
    }

    fn run(&self, p: &mut Process, plan: &mut FaultPlan, input: &Input) -> Result<(), HeapError> {
        let mut rng = input.rng();
        let vscale = 1.0 + 0.04 * (self.version as f64 - 1.0);
        let sized = |base: usize| ((base as f64 * input.scale() * vscale) as usize).max(1);

        let asset_buffers = sized(260);
        let asset_list_target = sized(70);
        let scene_baseline = sized(70);
        let lod_baseline = sized(30);
        let frames = sized(1300);

        p.enter("ga::main");

        // --- Startup: level load ---------------------------------------
        p.enter("ga::load_level");
        // The world oct-tree is built once at startup — where the
        // oct-DAG bug lives (a poorly disguised bug: it pins Indeg=1 at
        // an extreme from the very first samples).
        let world =
            SimOctTree::build_with_fault(p, plan, 2, "ga.world", FaultId("ga.world_octree.alias"))?;
        let mut assets = BufferPool::new(asset_buffers, "ga.asset_blob");
        for _ in 0..asset_buffers {
            assets.acquire(p, 160 + rng.gen_range(0..160))?;
        }
        let mut asset_list =
            SimDList::with_fault(p, "ga.assets", FaultId("ga.asset_dlist.skip_prev"))?;
        for k in 0..asset_list_target {
            asset_list.push_back(p, plan, k as u64)?;
        }
        let mut scene = SimBinTree::with_faults(
            "ga.scene",
            FaultId("ga.scene_tree.skip_parent"),
            FaultId("ga.scene_tree.single_child.unused"),
        );
        for _ in 0..scene_baseline {
            scene.insert(p, plan, rng.gen_range(0..1_000_000))?;
        }
        let mut lod = SimBinTree::with_faults(
            "ga.lod",
            FaultId("ga.lod_tree.skip_parent.unused"),
            FaultId("ga.lod_tree.single_child"),
        );
        for _ in 0..lod_baseline {
            lod.insert(p, plan, rng.gen_range(0..1_000_000))?;
        }
        let mut portals = SimGraph::generate_with_fault(
            p,
            plan,
            sized(30),
            2,
            GraphShape::Uniform,
            input.seed,
            "ga.portals",
            FaultId("ga.portal_graph.atypical"),
        )?;
        let mut particles: Vec<SimCircularList> = Vec::new();
        for _ in 0..sized(16) {
            let mut ring = SimCircularList::with_fault(
                "ga.particles",
                FaultId("ga.particle_ring.free_shared_head"),
            );
            for k in 0..6 {
                ring.push(p, k)?;
            }
            particles.push(ring);
        }
        let mut decals = SimList::with_fault("ga.decal_list", FaultId("ga.decal_list.pop_leak"));
        for k in 0..16 {
            decals.push_front(p, k)?;
        }
        let mut asset_props = TableDescriptors::with_fault(
            p,
            16,
            "ga.asset_props",
            FaultId("ga.asset_props.typo_leak"),
        )?;
        for j in 0..16 {
            asset_props.set_props(p, j, 2)?;
        }
        // Draw-batch scratch: batched nodes gain a second reference
        // while grouped. Sized so the Indeg=1 signature (large
        // baseline) stays within thresholds while Indeg=2 (small
        // baseline) does not.
        let mut batches = crate::PhaseFlipper::with_style(
            p,
            sized(12),
            "ga.batches",
            crate::FlipStyle::DoubleLink,
        )?;
        p.leave();

        // --- Frame loop ---------------------------------------------------
        let rebuild_period = 220;
        for i in 0..frames {
            p.enter("ga::render_frame");
            // Asset streaming.
            assets.acquire(p, 160 + rng.gen_range(0..160))?;
            if let Some(front) = asset_list.front(p)? {
                asset_list.remove(p, front)?;
            }
            asset_list.push_back(p, plan, i as u64)?;
            // Scene updates (the Figure 10 call-site): balanced churn.
            scene.insert(p, plan, rng.gen_range(0..1_000_000))?;
            scene.pop_leaf(p)?;
            // LOD selection.
            lod.insert(p, plan, rng.gen_range(0..1_000_000))?;
            lod.pop_leaf(p)?;
            lod.contains(p, rng.gen_range(0..1_000_000))?;
            // Particles cycle; decals rotate.
            let ring = i % particles.len();
            particles[ring].push(p, i as u64)?;
            particles[ring].rotate_free_head(p, plan)?;
            decals.push_front(p, i as u64)?;
            decals.pop_front(p, plan)?;
            // Visibility query.
            if i % 12 == 0 {
                portals.bfs_touch(p)?;
                world.touch_all(p)?;
            }
            // Property refreshes (the Fig.11 call-site).
            if i % 10 == 0 {
                let j = rng.gen_range(0..16);
                asset_props.collect_props(p, plan, j)?;
                asset_props.set_props(p, j, 2)?;
            }
            if i % 310 == 309 {
                batches.flip(p)?;
            }
            // Maintenance sweep: everything a frame renderer touches.
            if i % 40 == 17 {
                p.enter("ga::sweep");
                batches.touch_all(p)?;
                for ring in &particles {
                    ring.walk(p)?;
                }
                portals.touch_all(p)?;
                scene.touch_all(p)?;
                lod.touch_all(p)?;
                asset_list.walk(p)?;
                decals.walk(p)?;
                assets.touch_all(p)?;
                for j in 0..16 {
                    asset_props.walk_props(p, j)?;
                }
                p.leave();
            }
            p.leave();

            if i % rebuild_period == rebuild_period - 1 {
                p.enter("ga::stream_world_chunk");
                scene.free_all(p)?;
                for _ in 0..scene_baseline {
                    scene.insert(p, plan, rng.gen_range(0..1_000_000))?;
                }
                lod.free_all(p)?;
                for _ in 0..lod_baseline {
                    lod.insert(p, plan, rng.gen_range(0..1_000_000))?;
                }
                let fresh = SimGraph::generate_with_fault(
                    p,
                    plan,
                    sized(30),
                    2,
                    GraphShape::Uniform,
                    input.seed ^ i as u64,
                    "ga.portals",
                    FaultId("ga.portal_graph.atypical"),
                )?;
                std::mem::replace(&mut portals, fresh).free_all(p)?;
                p.leave();
            }
        }

        // --- Shutdown -------------------------------------------------------
        p.enter("ga::shutdown");
        scene.free_all(p)?;
        lod.free_all(p)?;
        asset_list.free_all(p)?;
        decals.free_all(p)?;
        for ring in particles {
            ring.free_all(p)?;
        }
        portals.free_all(p)?;
        asset_props.free_all(p)?;
        batches.free_all(p)?;
        assets.drain(p)?;
        world.free_all(p)?;
        p.leave();
        p.leave();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{check, train};

    #[test]
    fn indeg1_is_stable_for_game_action() {
        let outcome = train(&GameAction::new(1), &Input::set(3));
        assert!(
            outcome.model.is_stable(heapmd::MetricKind::Indeg1),
            "Indeg=1 must be stable for game_action; stable: {:?}",
            outcome
                .model
                .stable
                .iter()
                .map(|s| s.kind)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn fig10_bug_is_detected() {
        let w = GameAction::new(1);
        let model = train(&w, &Input::set(4)).model;
        let spec = crate::bugs::CATALOG
            .iter()
            .find(|b| b.fault.0 == "ga.scene_tree.skip_parent")
            .expect("catalogued");
        let bugs = check(&w, &model, &Input::new(60), &mut spec.plan());
        assert!(
            !bugs.is_empty(),
            "the Figure 10 bug must raise an anomaly report"
        );
    }
}
