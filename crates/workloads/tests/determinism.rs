//! Determinism: the whole pipeline is reproducible — same input, same
//! events, same samples, same detections. (The experiments depend on
//! this: trained models and archived results must be regenerable.)

use faults::{FaultConfig, FaultPlan};
use sim_ds::fault_ids::DLIST_SKIP_PREV;
use workloads::harness::{run_once, settings_for};
use workloads::{commercial_at_version, Input};

#[test]
fn clean_runs_are_bit_identical() {
    for name in ["gzip", "multimedia"] {
        let w = commercial_at_version("multimedia", 1); // placeholder binding
        let w = if name == "gzip" {
            Box::new(workloads::spec::Gzip) as Box<dyn workloads::Workload>
        } else {
            w
        };
        let settings = settings_for(w.as_ref());
        let a = run_once(w.as_ref(), &Input::new(3), &mut FaultPlan::new(), &settings);
        let b = run_once(w.as_ref(), &Input::new(3), &mut FaultPlan::new(), &settings);
        assert_eq!(a.samples, b.samples, "{name} is nondeterministic");
    }
}

#[test]
fn buggy_runs_are_reproducible_too() {
    let w = commercial_at_version("game_action", 1);
    let settings = settings_for(w.as_ref());
    let plan = || {
        let mut p = FaultPlan::new();
        p.enable(DLIST_SKIP_PREV, FaultConfig::every(4).after(10));
        p
    };
    let a = run_once(w.as_ref(), &Input::new(9), &mut plan(), &settings);
    let b = run_once(w.as_ref(), &Input::new(9), &mut plan(), &settings);
    assert_eq!(a.samples, b.samples);
}

#[test]
fn different_inputs_differ_and_versions_share_shape() {
    let w = commercial_at_version("productivity", 1);
    let settings = settings_for(w.as_ref());
    let a = run_once(w.as_ref(), &Input::new(0), &mut FaultPlan::new(), &settings);
    let b = run_once(w.as_ref(), &Input::new(1), &mut FaultPlan::new(), &settings);
    assert_ne!(a.samples, b.samples, "inputs must induce different heaps");

    // Versions: same structure mix, slightly larger heaps.
    let v5 = commercial_at_version("productivity", 5);
    let c = run_once(
        v5.as_ref(),
        &Input::new(0),
        &mut FaultPlan::new(),
        &settings,
    );
    let mid_a = &a.samples[a.len() / 2];
    let mid_c = &c.samples[c.len() / 2];
    assert!(mid_c.nodes >= mid_a.nodes, "v5 should not shrink the heap");
    // Metric profile stays recognisably the same (within a few points).
    for (kind, v) in mid_a.metrics.iter() {
        let d = (v - mid_c.metrics.get(kind)).abs();
        assert!(d < 12.0, "{kind} drifted {d:.1} points between versions");
    }
}
