//! # heapmd-mapfile — read-only memory-mapped file views
//!
//! The binary trace reader wants the whole `.hmdt` file addressable as
//! one `&[u8]` (the block index stores absolute offsets), but copying a
//! multi-gigabyte trace through `read(2)` into a `Vec` doubles the
//! memory footprint and serializes ingest behind the copy. [`Mmap`]
//! maps the file instead: open is O(1), the kernel pages bytes in on
//! first touch, and clean pages never count against the process twice.
//!
//! This is the **only** crate in the workspace that contains `unsafe`
//! code — everything else is `#![forbid(unsafe_code)]`. The unsafety is
//! confined to the two `mmap`/`munmap` FFI calls and the
//! `slice::from_raw_parts` view over the mapping, with the safety
//! argument documented at each site. Platforms without `mmap` (or
//! failures at map time — exotic filesystems, `ulimit`, 32-bit
//! address-space pressure) are handled by the caller falling back to a
//! buffered read; [`Mmap::map`] reports errors rather than panicking.
//!
//! ## Why the view stays sound
//!
//! A file shrunk *while mapped* turns reads past the new end into
//! `SIGBUS` on POSIX systems — no API contortion can make that safe in
//! general. The trace pipeline avoids the hazard by construction:
//! traces are published atomically (write-to-temp + `rename`, see
//! `heapmd::persist::write_atomic`), so a reader never maps a file that
//! a writer is still mutating in place; an unlinked-and-replaced file
//! keeps its old inode alive until the mapping drops. Callers outside
//! that discipline should prefer the buffered path.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::fs::File;
use std::io;
use std::ops::Deref;

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    //! Minimal libc FFI surface: `std` already links libc on every unix
    //! target, so declaring the two symbols needs no new dependency.

    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 1;
    /// `MAP_PRIVATE`: the mapping is copy-on-write and never writes
    /// back; value is 0x02 on every unix libc we can build against.
    const MAP_PRIVATE: i32 = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    /// A whole-file read-only private mapping.
    #[derive(Debug)]
    pub struct RawMap {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is immutable for its whole lifetime (PROT_READ,
    // MAP_PRIVATE) and owned uniquely by this struct, so sharing the
    // view across threads is no different from sharing a `&[u8]`.
    unsafe impl Send for RawMap {}
    unsafe impl Sync for RawMap {}

    impl RawMap {
        pub fn map(file: &File, len: usize) -> io::Result<RawMap> {
            // SAFETY: we pass a null hint, a length validated as non-zero
            // by the caller, and a file descriptor we hold open across
            // the call. On success the kernel returns `len` bytes of
            // readable memory that stay valid until `munmap`.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(RawMap {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: `ptr` points at a live PROT_READ mapping of exactly
            // `len` bytes (established in `map`, torn down only in
            // `drop`), and the bytes are never mutated through this
            // struct. See the crate docs for the file-shrink caveat and
            // why the trace pipeline's atomic-publish discipline
            // prevents it.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for RawMap {
        fn drop(&mut self) {
            // SAFETY: `ptr`/`len` describe the mapping returned by `mmap`
            // and nothing else unmaps it; after this the struct is gone,
            // so no `as_slice` view can outlive the call (lifetimes tie
            // them to `&self`).
            let rc = unsafe { munmap(self.ptr as *mut std::ffi::c_void, self.len) };
            debug_assert_eq!(rc, 0, "munmap failed");
        }
    }
}

/// A read-only memory-mapped view of a whole file.
///
/// Dereferences to `&[u8]`. On non-unix targets (or for the empty file,
/// which `mmap(2)` rejects) the "mapping" is a plain buffered read, so
/// callers get one type either way.
///
/// # Example
///
/// ```no_run
/// # fn main() -> std::io::Result<()> {
/// let file = std::fs::File::open("trace.hmdt")?;
/// let map = heapmd_mapfile::Mmap::map(&file)?;
/// assert!(map.len() == 0 || map[0] != 0 || map[0] == 0); // bytes!
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Mmap {
    inner: MmapInner,
}

#[derive(Debug)]
enum MmapInner {
    #[cfg(unix)]
    Mapped(sys::RawMap),
    /// Fallback storage: empty files everywhere, all files on non-unix.
    Buffered(Vec<u8>),
}

impl Mmap {
    /// Maps `file` read-only in its entirety.
    ///
    /// # Errors
    ///
    /// Returns the `mmap(2)` / metadata / read error. Callers are
    /// expected to fall back to a buffered read on failure.
    pub fn map(file: &File) -> io::Result<Mmap> {
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| {
            io::Error::new(io::ErrorKind::InvalidInput, "file exceeds address space")
        })?;
        if len == 0 {
            return Ok(Mmap {
                inner: MmapInner::Buffered(Vec::new()),
            });
        }
        #[cfg(unix)]
        {
            let raw = sys::RawMap::map(file, len)?;
            Ok(Mmap {
                inner: MmapInner::Mapped(raw),
            })
        }
        #[cfg(not(unix))]
        {
            use std::io::Read;
            let mut bytes = Vec::with_capacity(len);
            let mut f = file.try_clone()?;
            f.read_to_end(&mut bytes)?;
            Ok(Mmap {
                inner: MmapInner::Buffered(bytes),
            })
        }
    }

    /// Whether the bytes come from a real kernel mapping (as opposed to
    /// the buffered fallback).
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            MmapInner::Mapped(_) => true,
            MmapInner::Buffered(_) => false,
        }
    }
}

impl Deref for Mmap {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            MmapInner::Mapped(raw) => raw.as_slice(),
            MmapInner::Buffered(bytes) => bytes,
        }
    }
}

impl AsRef<[u8]> for Mmap {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("heapmd-mapfile-{name}-{}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        path
    }

    #[test]
    fn maps_file_contents() {
        let path = tmp("contents", b"hello mapped world");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, b"hello mapped world");
        assert_eq!(map.as_ref().len(), 18);
        #[cfg(unix)]
        assert!(map.is_mapped());
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = tmp("empty", b"");
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert!(map.is_empty());
        assert!(!map.is_mapped(), "empty files use the buffered fallback");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn view_survives_unlink() {
        // The unix idiom: replace-then-read keeps the old inode alive.
        let path = tmp("unlink", b"staying alive");
        let file = File::open(&path).unwrap();
        let map = Mmap::map(&file).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(&*map, b"staying alive");
    }

    #[test]
    fn large_file_roundtrip() {
        let bytes: Vec<u8> = (0..1usize << 20).map(|i| (i * 31 % 251) as u8).collect();
        let path = tmp("large", &bytes);
        let map = Mmap::map(&File::open(&path).unwrap()).unwrap();
        assert_eq!(&*map, &bytes[..]);
        std::fs::remove_file(path).unwrap();
    }
}
