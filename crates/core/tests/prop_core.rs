//! Property-based tests for the analysis pipeline: fluctuation
//! statistics, stability classification, plateau segmentation, model
//! construction, and range checking.

use heapmd::{
    classify, merge_ranges, percent_changes, segment, AnomalyDetector, CandidateKind,
    CandidateVector, CircularBuffer, FluctuationStats, MetricReport, MetricSample, MetricVector,
    ModelBuilder, Settings, StabilityClass, CANDIDATE_COUNT, METRIC_COUNT,
};
use proptest::prelude::*;

fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..100.0, 2..120)
}

fn samples_from(values: &[f64]) -> Vec<MetricSample> {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| MetricSample {
            seq: i,
            fn_entries: i as u64,
            tick: i as u64,
            metrics: MetricVector::from_array([v; METRIC_COUNT]),
            nodes: 10,
            edges: 5,
            dangling: 0,
            candidates: None,
        })
        .collect()
}

/// Samples carrying the full candidate family, with the paper seven
/// mirrored into the legacy vector exactly as [`heapmd::Process`] does.
fn candidate_samples_from(rows: &[Vec<f64>]) -> Vec<MetricSample> {
    rows.iter()
        .enumerate()
        .map(|(i, vals)| {
            let mut metrics = MetricVector::zero();
            let mut cand = CandidateVector::zero();
            for (j, kind) in CandidateKind::ALL.iter().enumerate() {
                cand.set(*kind, vals[j]);
                if let Some(paper) = kind.paper_kind() {
                    metrics.set(paper, vals[j]);
                }
            }
            MetricSample {
                seq: i,
                fn_entries: i as u64,
                tick: i as u64,
                metrics,
                nodes: 10,
                edges: 5,
                dangling: 0,
                candidates: Some(cand),
            }
        })
        .collect()
}

fn candidate_rows_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(
        proptest::collection::vec(0.0f64..100.0, CANDIDATE_COUNT..CANDIDATE_COUNT + 1),
        8..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // The differential pin for the candidate family: turning
    // `candidate_metrics(true)` on must not perturb ANY paper-mode
    // observable — the calibrated stable set, its ranges and
    // fluctuation stats, and the detector's verdicts on a check run
    // are bit-identical; candidate mode only *adds* the id-keyed
    // candidate calibration on top.
    #[test]
    fn candidate_mode_never_perturbs_paper_observables(
        train in proptest::collection::vec(candidate_rows_strategy(), 2..5),
        check in candidate_rows_strategy(),
    ) {
        let settings = Settings::builder().trim_frac(0.0).warmup_samples(2).build().unwrap();
        let mut paper = ModelBuilder::new(settings.clone()).program("prop");
        let mut cand = ModelBuilder::new(settings.clone()).program("prop").candidate_metrics(true);
        for (i, rows) in train.iter().enumerate() {
            let report = MetricReport::new(format!("r{i}"), candidate_samples_from(rows));
            paper.add_run(&report);
            cand.add_run(&report);
        }
        let paper_model = paper.build().model;
        let cand_model = cand.build().model;

        // Everything the paper pipeline looks at is bit-identical…
        prop_assert_eq!(&paper_model.stable, &cand_model.stable);
        prop_assert_eq!(&paper_model.unstable, &cand_model.unstable);
        prop_assert_eq!(&paper_model.locally_stable, &cand_model.locally_stable);
        // …and the paper-mode model carries no candidate calibration.
        prop_assert!(paper_model.candidate_stable.is_empty());
        prop_assert!(paper_model.candidate_unstable.is_empty());

        let report = MetricReport::new("check", candidate_samples_from(&check));
        let paper_bugs = AnomalyDetector::check_report(&paper_model, &settings, &report);
        let cand_bugs = AnomalyDetector::check_report(&cand_model, &settings, &report);
        prop_assert_eq!(paper_bugs, cand_bugs);
    }

    #[test]
    fn percent_changes_shape_and_finiteness(series in series_strategy()) {
        let changes = percent_changes(&series);
        prop_assert_eq!(changes.len(), series.len() - 1);
        prop_assert!(changes.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn fluctuation_stats_invariants(series in series_strategy()) {
        let changes = percent_changes(&series);
        let st = FluctuationStats::from_changes(&changes);
        prop_assert!(st.std_dev >= 0.0);
        prop_assert!(st.median_abs >= 0.0);
        let max_abs = changes.iter().fold(0.0f64, |m, c| m.max(c.abs()));
        prop_assert!(st.median_abs <= max_abs + 1e-9);
        prop_assert!(st.mean.abs() <= max_abs + 1e-9);
        prop_assert_eq!(st.n, changes.len());
    }

    #[test]
    fn constant_series_is_globally_stable(v in 0.0f64..100.0, n in 6usize..60) {
        let series = vec![v; n];
        let st = FluctuationStats::from_series(&series);
        prop_assert_eq!(classify(&st, &Settings::default()), StabilityClass::GloballyStable);
    }

    #[test]
    fn plateaus_partition_within_bounds(series in series_strategy(), spike in 1.0f64..50.0) {
        let plateaus = segment(&series, spike, 3);
        let mut prev_end = 0usize;
        for p in &plateaus {
            prop_assert!(p.start >= prev_end);
            prop_assert!(p.len >= 3);
            prop_assert!(p.start + p.len <= series.len());
            prop_assert!(p.min <= p.max);
            // Bounds really are the window extrema.
            let window = &series[p.start..p.start + p.len];
            let lo = window.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((p.min - lo).abs() < 1e-12 && (p.max - hi).abs() < 1e-12);
            prev_end = p.start + p.len;
        }
    }

    #[test]
    fn merged_ranges_are_sorted_disjoint_and_covering(
        series in series_strategy(),
        gap in 0.0f64..2.0
    ) {
        let plateaus = segment(&series, 5.0, 3);
        let merged = merge_ranges(&plateaus, gap);
        for w in merged.windows(2) {
            prop_assert!(w[0].1 + gap < w[1].0 + 1e-12, "ranges overlap or touch: {merged:?}");
        }
        for p in &plateaus {
            prop_assert!(
                merged.iter().any(|&(lo, hi)| lo <= p.min && p.max <= hi),
                "plateau [{}, {}] not covered by {merged:?}", p.min, p.max
            );
        }
    }

    #[test]
    fn model_entries_are_well_formed(runs in proptest::collection::vec(series_strategy(), 1..6)) {
        let settings = Settings::builder().trim_frac(0.0).build().unwrap();
        let mut b = ModelBuilder::new(settings).locally_stable(true);
        for (i, run) in runs.iter().enumerate() {
            b.add_run(&MetricReport::new(format!("r{i}"), samples_from(run)));
        }
        let model = b.build().model;
        for sm in model.stable_metrics() {
            prop_assert!(sm.min <= sm.max);
            prop_assert!(sm.stable_runs >= 1);
            prop_assert!(sm.stable_runs <= sm.total_runs);
        }
        for lm in &model.locally_stable {
            prop_assert!(!model.is_stable(lm.kind), "local entries exclude global ones");
            for w in lm.ranges.windows(2) {
                prop_assert!(w[0].1 <= w[1].0);
            }
        }
    }

    #[test]
    fn detector_is_quiet_inside_the_calibrated_band(
        base in 20.0f64..80.0,
        jitter in proptest::collection::vec(-0.4f64..0.4, 20..60)
    ) {
        // Train on a flat run at `base`; check a run jittering within
        // the margin: no reports.
        let settings = Settings::builder().trim_frac(0.0).warmup_samples(2).build().unwrap();
        let mut b = ModelBuilder::new(settings.clone());
        b.add_run(&MetricReport::new("train", samples_from(&vec![base; 40])));
        let model = b.build().model;
        prop_assert_eq!(model.stable.len(), METRIC_COUNT);
        let check: Vec<f64> = jitter.iter().map(|j| base + j).collect();
        let bugs = AnomalyDetector::check_report(
            &model,
            &settings,
            &MetricReport::new("check", samples_from(&check)),
        );
        prop_assert!(bugs.is_empty(), "{bugs:?}");
    }

    #[test]
    fn detector_catches_any_big_excursion(
        base in 20.0f64..70.0,
        delta in 5.0f64..25.0,
        at in 10usize..30
    ) {
        let settings = Settings::builder().trim_frac(0.0).warmup_samples(2).build().unwrap();
        let mut b = ModelBuilder::new(settings.clone());
        b.add_run(&MetricReport::new("train", samples_from(&vec![base; 40])));
        let model = b.build().model;
        let mut check = vec![base; 40];
        check[at] = base + delta; // a one-sample spike well past margin
        let bugs = AnomalyDetector::check_report(
            &model,
            &settings,
            &MetricReport::new("check", samples_from(&check)),
        );
        prop_assert!(
            bugs.iter().any(|bug| matches!(bug.kind, heapmd::AnomalyKind::RangeViolation { .. })
                && bug.sample_seq == at),
            "spike at {at} missed: {bugs:?}"
        );
    }

    #[test]
    fn ring_buffer_keeps_the_last_k(items in proptest::collection::vec(0u32..1000, 1..100),
                                    cap in 1usize..20) {
        let mut buf = CircularBuffer::new(cap);
        for &x in &items {
            buf.push(x);
        }
        let expect: Vec<u32> = items.iter().rev().take(cap).rev().copied().collect();
        prop_assert_eq!(buf.iter().copied().collect::<Vec<_>>(), expect);
    }
}
