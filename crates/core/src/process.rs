//! The execution logger + instrumented mutator facade.

use crate::callstack::{FuncId, FunctionTable};
use crate::error::HeapMdError;
use crate::monitor::{Monitor, MonitorCtx};
use crate::report::{MetricReport, MetricSample};
use crate::settings::Settings;
use crate::trace::Trace;
use crate::trace_codec::{BinaryTraceWriter, StreamFormat};
use crate::trace_stream::TraceWriter;
use heap_graph::GraphImage;
use heapmd_obs::SeriesRecorder;
use sim_heap::{Addr, AllocSite, HeapError, HeapEvent, SimHeap, NULL};
use std::cell::RefCell;
use std::collections::HashMap;
use std::io::Write;
use std::rc::Rc;
use swat::{SampledIngest, SamplerConfig, SamplingInfo};

/// A simulated instrumented process: the paper's `output.exe` running
/// under the execution logger.
///
/// Workload code drives the process through its mutator API (`malloc`,
/// `free`, `write_ptr`, `enter`/`leave`, …). The process:
///
/// * forwards each operation to the [`SimHeap`];
/// * keeps the heap-graph image ([`GraphImage`]) in sync;
/// * counts function entries and, once every `settings.frq` of them,
///   records a [`MetricSample`] (a *metric computation point*);
/// * fans events and samples out to attached [`Monitor`]s (the anomaly
///   detector, the SWAT baseline, …);
/// * optionally records the event stream into a [`Trace`] for offline,
///   post-mortem checking.
///
/// # Example
///
/// ```
/// use heapmd::{Process, Settings};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut p = Process::new(Settings::builder().frq(1).build()?);
/// p.enter("main");
/// let head = p.malloc(24, "list_node")?;
/// let next = p.malloc(24, "list_node")?;
/// p.write_ptr(head.offset(8), next)?;
/// p.leave();
/// let report = p.finish("example");
/// assert_eq!(report.len(), 1);
/// # Ok(())
/// # }
/// ```
pub struct Process {
    heap: SimHeap,
    graph: GraphImage,
    funcs: FunctionTable,
    stack: Vec<FuncId>,
    sites: HashMap<String, AllocSite>,
    site_names: Vec<String>,
    settings: Settings,
    fn_entries: u64,
    samples: Vec<MetricSample>,
    monitors: Vec<Rc<RefCell<dyn Monitor>>>,
    trace: Option<Trace>,
    /// Incremental crash-safe trace stream (see
    /// [`stream_trace_to`](Self::stream_trace_to)), in either wire
    /// format.
    stream: Option<TraceSink>,
    /// First error that killed the stream, kept for
    /// [`finish_stream`](Self::finish_stream) to report.
    stream_error: Option<HeapMdError>,
    /// Flight recorder: bounded time series of every metric plus
    /// alloc/free/store rates, fed at each metric computation point.
    recorder: Option<SeriesRecorder>,
    /// Heap op totals at the previous computation point, for the rate
    /// series deltas: `(allocs, frees, ptr_writes)`.
    last_op_totals: (u64, u64, u64),
    /// Production-overhead store sampling
    /// ([`enable_sampling`](Self::enable_sampling)): when installed,
    /// pointer/scalar stores the filter rejects update the simulated
    /// heap (mutator semantics stay exact) but reach neither the heap
    /// graph nor any trace/stream/monitor sink.
    sampling: Option<SampledIngest>,
}

impl Process {
    /// Creates a fresh process under the given settings.
    pub fn new(settings: Settings) -> Self {
        Process::with_shards(settings, 1)
    }

    /// Creates a process whose heap-graph image is partitioned into
    /// `shards` address-range shards (1 = the classic single-slab
    /// graph). Shard count changes storage layout only: samples,
    /// histograms, and metrics are bit-identical across counts.
    pub fn with_shards(settings: Settings, shards: usize) -> Self {
        Process {
            heap: SimHeap::new(),
            graph: GraphImage::new(shards),
            funcs: FunctionTable::new(),
            stack: Vec::new(),
            sites: HashMap::new(),
            site_names: Vec::new(),
            settings,
            fn_entries: 0,
            samples: Vec::new(),
            monitors: Vec::new(),
            trace: None,
            stream: None,
            stream_error: None,
            recorder: None,
            last_op_totals: (0, 0, 0),
            sampling: None,
        }
    }

    /// Turns on production-overhead store sampling: from now on,
    /// pointer/scalar stores are burst-sampled per allocation site by a
    /// [`SampledIngest`] filter under `config`. Alloc/free and function
    /// events always record, so object counts and the sampling schedule
    /// stay exact; a rejected store still mutates the simulated heap
    /// but is invisible to the heap graph, monitors, and any trace or
    /// stream sink — the recorded artifact is exactly what a sampled
    /// production process would have written.
    ///
    /// Enable this before driving the mutator, so the filter sees every
    /// allocation site from the start.
    pub fn enable_sampling(&mut self, config: SamplerConfig) {
        if self.sampling.is_none() {
            self.sampling = Some(SampledIngest::new(config));
        }
    }

    /// The sampling filter's measured outcome so far, when sampling is
    /// enabled.
    pub fn sampling_info(&self) -> Option<SamplingInfo> {
        self.sampling.as_ref().map(|f| f.info())
    }

    /// The effective store-sampling rate so far: `1.0` when sampling is
    /// off or no store has been observed.
    pub fn sample_rate(&self) -> f64 {
        self.sampling.as_ref().map_or(1.0, |f| f.effective_rate())
    }

    /// Runs `ev` through the sampling filter (always `true` when
    /// sampling is off). Allocs register their site as a side effect.
    #[inline]
    fn admit(&mut self, ev: &HeapEvent) -> bool {
        match self.sampling.as_mut() {
            Some(filter) => filter.admit(ev),
            None => true,
        }
    }

    /// Attaches an online monitor. Events that occurred before the
    /// attachment are not replayed.
    pub fn attach(&mut self, monitor: Rc<RefCell<dyn Monitor>>) {
        self.monitors.push(monitor);
    }

    /// Starts recording the event stream for offline checking.
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Trace::new());
        }
    }

    /// Turns on the flight recorder: from the next metric computation
    /// point on, every metric's value plus the alloc/free/store rates
    /// are captured into a bounded [`SeriesRecorder`] (at most
    /// `capacity_per_series` retained points per series; long runs are
    /// downsampled, never truncated). Monitors see the recorder via
    /// [`MonitorCtx::recorder`] and snapshot it into incident bundles.
    pub fn enable_flight_recorder(&mut self, capacity_per_series: usize) {
        if self.recorder.is_none() {
            self.recorder = Some(SeriesRecorder::new(capacity_per_series));
        }
    }

    /// The flight recorder, when enabled.
    pub fn recorder(&self) -> Option<&SeriesRecorder> {
        self.recorder.as_ref()
    }

    /// Streams every subsequent event to `sink` in the crash-safe
    /// length-framed format, incrementally — unlike
    /// [`enable_trace`](Self::enable_trace) + [`Trace::save`], events
    /// reach the sink as they happen, so whatever was flushed before a
    /// crash is recoverable with [`Trace::salvage_stream`].
    ///
    /// A write failure mid-run does **not** abort the checked process:
    /// the stream is dropped, the failure is counted
    /// (`heapmd_trace_stream_errors_total`) and surfaced by
    /// [`finish_stream`](Self::finish_stream), and execution continues.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] when the stream header cannot be
    /// written.
    pub fn stream_trace_to(&mut self, sink: Box<dyn Write>) -> Result<(), HeapMdError> {
        self.stream_trace_to_format(sink, StreamFormat::Jsonl)
    }

    /// Like [`stream_trace_to`](Self::stream_trace_to), but choosing
    /// the wire format: crash-safe framed JSONL, or the block-based
    /// binary codec ([`crate::BinaryTraceWriter`]) whose completed
    /// blocks salvage at block granularity after a crash.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] when the stream header cannot be
    /// written.
    pub fn stream_trace_to_format(
        &mut self,
        sink: Box<dyn Write>,
        format: StreamFormat,
    ) -> Result<(), HeapMdError> {
        self.stream = Some(match format {
            StreamFormat::Jsonl => TraceSink::Jsonl(TraceWriter::new(sink)?),
            StreamFormat::Binary => TraceSink::Binary(BinaryTraceWriter::new(sink)?),
        });
        self.stream_error = None;
        Ok(())
    }

    /// Ends the trace stream: writes the function-name table and the
    /// `End` trailer, flushes, and detaches the sink. Returns the
    /// number of events that reached the stream, or the error that
    /// degraded it mid-run.
    ///
    /// # Errors
    ///
    /// Returns the deferred streaming error (if the stream died
    /// mid-run) or [`HeapMdError::Io`] from the final writes.
    pub fn finish_stream(&mut self) -> Result<u64, HeapMdError> {
        if let Some(e) = self.stream_error.take() {
            return Err(e);
        }
        let Some(mut stream) = self.stream.take() else {
            return Err(HeapMdError::InvalidInput(
                "no trace stream is attached".into(),
            ));
        };
        let names: Vec<String> = (0..self.funcs.len())
            .map(|i| self.funcs.name(FuncId(i as u32)).to_string())
            .collect();
        stream.write_functions(&names)?;
        // Binary streams carry the sampling outcome as a meta block, so
        // an offline check of the artifact widens exactly as the live
        // run did. (The JSONL format has no meta frame; sampled
        // production runs use the binary codec.)
        if let Some(filter) = &self.sampling {
            stream.write_sampling_meta(&filter.info())?;
        }
        let events = stream.events_written();
        stream.finish()?;
        Ok(events)
    }

    /// The wire format of the attached trace stream, if any.
    pub fn stream_format(&self) -> Option<StreamFormat> {
        self.stream.as_ref().map(|s| match s {
            TraceSink::Jsonl(_) => StreamFormat::Jsonl,
            TraceSink::Binary(_) => StreamFormat::Binary,
        })
    }

    /// The settings in force.
    pub fn settings(&self) -> &Settings {
        &self.settings
    }

    /// The simulated heap (read-only).
    pub fn heap(&self) -> &SimHeap {
        &self.heap
    }

    /// The heap-graph image (read-only).
    pub fn graph(&self) -> &GraphImage {
        &self.graph
    }

    /// The function intern table.
    pub fn functions(&self) -> &FunctionTable {
        &self.funcs
    }

    /// Cumulative function entries.
    pub fn fn_entries(&self) -> u64 {
        self.fn_entries
    }

    /// Metric samples recorded so far.
    pub fn samples(&self) -> &[MetricSample] {
        &self.samples
    }

    /// Interns an allocation-site name, for hot paths that want to avoid
    /// repeated string lookups via [`malloc_at`](Self::malloc_at).
    pub fn intern_site(&mut self, name: &str) -> AllocSite {
        if let Some(&s) = self.sites.get(name) {
            return s;
        }
        let site = AllocSite(self.site_names.len() as u32);
        self.site_names.push(name.to_string());
        self.sites.insert(name.to_string(), site);
        site
    }

    /// The name behind an interned allocation site.
    pub fn site_name(&self, site: AllocSite) -> &str {
        &self.site_names[site.0 as usize]
    }

    /// All interned allocation-site names, indexed by [`AllocSite`]
    /// value (monitors report sites by id; this maps them back).
    pub fn site_names(&self) -> &[String] {
        &self.site_names
    }

    /// Enters a function: a potential metric computation point.
    ///
    /// Returns the interned id. Every `settings.frq` entries, the seven
    /// metrics are sampled from the heap-graph.
    pub fn enter(&mut self, name: &str) -> FuncId {
        let id = self.funcs.intern(name);
        self.stack.push(id);
        self.fn_entries += 1;
        let ev = HeapEvent::FnEnter { func: id.0 };
        self.record(&ev);
        if self.fn_entries.is_multiple_of(self.settings.frq) {
            self.sample();
        }
        id
    }

    /// Leaves the innermost function.
    ///
    /// # Panics
    ///
    /// Panics on leave without a matching enter (a workload defect).
    pub fn leave(&mut self) {
        let id = self.stack.pop().expect("leave without matching enter");
        let ev = HeapEvent::FnExit { func: id.0 };
        self.record(&ev);
    }

    /// Runs `f` inside an enter/leave pair (exception-unsafe by design:
    /// the simulation has no unwinding mutators).
    pub fn scoped<R>(&mut self, name: &str, f: impl FnOnce(&mut Process) -> R) -> R {
        self.enter(name);
        let r = f(self);
        self.leave();
        r
    }

    /// Allocates `size` bytes at the named call-site.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`] from the heap (zero size, capacity).
    pub fn malloc(&mut self, size: usize, site: &str) -> Result<Addr, HeapError> {
        let site = self.intern_site(site);
        self.malloc_at(size, site)
    }

    /// Allocates `size` bytes at a pre-interned call-site.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`] from the heap.
    pub fn malloc_at(&mut self, size: usize, site: AllocSite) -> Result<Addr, HeapError> {
        let eff = self.heap.alloc(size, site)?;
        self.graph.on_alloc(eff.id, eff.addr, eff.size);
        let ev = HeapEvent::Alloc {
            obj: eff.id,
            addr: eff.addr,
            size: eff.size,
            site,
        };
        // Allocs always pass; the filter records the object's site.
        self.admit(&ev);
        self.record(&ev);
        Ok(eff.addr)
    }

    /// Frees the object starting at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`] (double free, invalid free, …).
    pub fn free(&mut self, addr: Addr) -> Result<(), HeapError> {
        let eff = self.heap.free(addr)?;
        self.graph.on_free(eff.id);
        let ev = HeapEvent::Free {
            obj: eff.id,
            addr: eff.addr,
            size: eff.size,
        };
        self.record(&ev);
        Ok(())
    }

    /// Reallocates the object at `addr` to `new_size`, returning its new
    /// address. Surviving pointer slots move with it.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn realloc(&mut self, addr: Addr, new_size: usize, site: &str) -> Result<Addr, HeapError> {
        let site = self.intern_site(site);
        let eff = self.heap.realloc(addr, new_size, site)?;
        // The graph sees realloc as the event decomposition the paper's
        // instrumentation would observe: free, alloc, then the memcpy'd
        // pointer stores.
        self.graph.on_free(eff.freed.id);
        let free_ev = HeapEvent::Free {
            obj: eff.freed.id,
            addr: eff.freed.addr,
            size: eff.freed.size,
        };
        self.record(&free_ev);
        self.graph
            .on_alloc(eff.alloc.id, eff.alloc.addr, eff.alloc.size);
        let alloc_ev = HeapEvent::Alloc {
            obj: eff.alloc.id,
            addr: eff.alloc.addr,
            size: eff.alloc.size,
            site,
        };
        self.admit(&alloc_ev);
        self.record(&alloc_ev);
        for &(off, target) in &eff.moved_slots {
            let ev = HeapEvent::PtrWrite {
                src: eff.alloc.id,
                offset: off,
                value: target,
                old_value: None,
            };
            if self.admit(&ev) {
                self.graph.on_ptr_write(eff.alloc.id, off, target);
                self.record(&ev);
            }
        }
        Ok(eff.alloc.addr)
    }

    /// Stores pointer `value` at `slot` (inside a live heap object).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`] (wild/torn access, null slot).
    pub fn write_ptr(&mut self, slot: Addr, value: Addr) -> Result<(), HeapError> {
        let w = self.heap.write_ptr(slot, value)?;
        let ev = HeapEvent::PtrWrite {
            src: w.src,
            offset: w.offset,
            value,
            old_value: w.old_value,
        };
        // The heap already executed the store (mutator semantics are
        // exact); sampling only decides whether monitoring sees it.
        if self.admit(&ev) {
            self.graph.on_ptr_write(w.src, w.offset, value);
            self.record(&ev);
        }
        Ok(())
    }

    /// Clears the pointer slot at `slot` (store of null).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn clear_ptr(&mut self, slot: Addr) -> Result<(), HeapError> {
        self.write_ptr(slot, NULL)
    }

    /// Stores a non-pointer value at `slot`, clearing any pointer there.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn write_scalar(&mut self, slot: Addr) -> Result<(), HeapError> {
        let w = self.heap.write_scalar(slot)?;
        let ev = HeapEvent::ScalarWrite {
            src: w.src,
            offset: w.offset,
            old_value: w.old_value,
        };
        if self.admit(&ev) {
            self.graph.on_scalar_write(w.src, w.offset);
            self.record(&ev);
        }
        Ok(())
    }

    /// Reads the pointer stored at `slot`.
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn read_ptr(&mut self, slot: Addr) -> Result<Option<Addr>, HeapError> {
        let v = self.heap.read_ptr(slot)?;
        let obj = self
            .heap
            .resolve(slot)
            .expect("read_ptr succeeded on a live object")
            .id();
        let ev = HeapEvent::Read { obj };
        self.record(&ev);
        Ok(v)
    }

    /// Records a read access to the object containing `addr` (staleness
    /// signal for leak detectors).
    ///
    /// # Errors
    ///
    /// Propagates [`HeapError`].
    pub fn read(&mut self, addr: Addr) -> Result<(), HeapError> {
        let obj = self.heap.read(addr)?;
        let ev = HeapEvent::Read { obj };
        self.record(&ev);
        Ok(())
    }

    /// Ingests a recorded event slice — the offline counterpart of the
    /// mutator API. The heap-graph image, function-entry counter, call
    /// stack, and sampling schedule advance exactly as if each event had
    /// been fed individually; the simulated heap is **not** re-executed
    /// (object ids and addresses come from the recorded stream, so
    /// samples taken here carry the ingesting heap's logical clock).
    ///
    /// When no monitors, trace recorder, or stream sink are attached,
    /// graph mutations between sampling points are applied through
    /// [`heap_graph::HeapGraph::apply_batch`], amortizing per-event dispatch;
    /// throughput is reported via the `process_ingest` obs stage.
    pub fn apply_batch(&mut self, events: &[HeapEvent]) {
        if self.sampling.is_some() {
            // Filter first, then ingest the admitted stream — identical
            // to feeding the filtered events with sampling off, on both
            // the fast and slow paths below.
            let mut filtered = Vec::with_capacity(events.len());
            let filter = self.sampling.as_mut().expect("checked above");
            filtered.extend(events.iter().filter(|ev| filter.admit(ev)).copied());
            self.apply_batch_raw(&filtered);
        } else {
            self.apply_batch_raw(events);
        }
    }

    fn apply_batch_raw(&mut self, events: &[HeapEvent]) {
        let fast = self.monitors.is_empty() && self.trace.is_none() && self.stream.is_none();
        if !fast {
            for ev in events {
                self.apply_event(ev);
            }
            return;
        }
        let clock = heapmd_obs::throughput::stage_clock();
        let mut batch_start = 0;
        for (i, ev) in events.iter().enumerate() {
            match *ev {
                HeapEvent::FnEnter { func } => {
                    // Flush pending graph mutations, then advance the
                    // sampling schedule. Non-graph events inside the
                    // flushed span are ignored by the graph.
                    self.graph.apply_batch(&events[batch_start..i]);
                    batch_start = i + 1;
                    let id = self.func_id_for(func);
                    self.stack.push(id);
                    self.fn_entries += 1;
                    if self.fn_entries.is_multiple_of(self.settings.frq) {
                        self.sample();
                    }
                }
                // FnExit only pops the stack, which the graph never
                // reads — handle it in order, without a batch flush.
                HeapEvent::FnExit { .. } => {
                    self.stack.pop();
                }
                _ => {}
            }
        }
        self.graph.apply_batch(&events[batch_start..]);
        if let Some(t0) = clock {
            heapmd_obs::throughput::record_stage(
                "process_ingest",
                events.len() as u64,
                t0.elapsed().as_nanos() as u64,
            );
        }
    }

    /// Ingests one recorded event with full monitor/trace fan-out —
    /// the per-event slow path behind [`apply_batch`](Self::apply_batch).
    fn apply_event(&mut self, ev: &HeapEvent) {
        match *ev {
            HeapEvent::FnEnter { func } => {
                let id = self.func_id_for(func);
                self.stack.push(id);
                self.fn_entries += 1;
                self.record(ev);
                if self.fn_entries.is_multiple_of(self.settings.frq) {
                    self.sample();
                }
            }
            HeapEvent::FnExit { .. } => {
                self.stack.pop();
                self.record(ev);
            }
            _ => {
                self.graph.apply(ev);
                self.record(ev);
            }
        }
    }

    /// Maps a recorded function id onto this process's intern table,
    /// synthesizing an anonymous `fn#N` name for unknown ids.
    fn func_id_for(&mut self, raw: u32) -> FuncId {
        if (raw as usize) < self.funcs.len() {
            FuncId(raw)
        } else {
            self.funcs.intern(&format!("fn#{raw}"))
        }
    }

    /// Finishes the run: notifies monitors and returns the metric
    /// report.
    pub fn finish(mut self, run: impl Into<String>) -> MetricReport {
        let _span = heapmd_obs::span!("process_finish");
        let ctx = MonitorCtx {
            graph: &self.graph,
            heap: &self.heap,
            stack: &self.stack,
            funcs: &self.funcs,
            fn_entries: self.fn_entries,
            sample_rate: self.sampling.as_ref().map_or(1.0, |f| f.effective_rate()),
            recorder: self.recorder.as_ref(),
        };
        for m in &self.monitors {
            m.borrow_mut().on_finish(&ctx);
        }
        let rate = self.sample_rate();
        MetricReport::with_sample_rate(run, std::mem::take(&mut self.samples), rate)
    }

    /// The recorded trace, if tracing was enabled. Sampling metadata is
    /// attached when the trace is taken, not here.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Takes ownership of the recorded trace, if any, stamping the
    /// sampling filter's measured outcome onto it when sampling is
    /// enabled.
    pub fn take_trace(&mut self) -> Option<Trace> {
        let mut trace = self.trace.take()?;
        if let Some(filter) = &self.sampling {
            trace.set_sampling(Some(filter.info()));
        }
        Some(trace)
    }

    fn record(&mut self, ev: &HeapEvent) {
        if let Some(trace) = &mut self.trace {
            trace.push(*ev);
        }
        if let Some(stream) = &mut self.stream {
            if let Err(e) = stream.write_event(ev) {
                // Graceful degradation: losing the trace sink must not
                // take down the checked process. Drop the stream, keep
                // running, surface the error at finish_stream.
                heapmd_obs::count!("heapmd_trace_stream_errors_total");
                heapmd_obs::warn!("trace stream failed, continuing without it: {e}");
                self.stream = None;
                self.stream_error = Some(e);
            }
        }
        if !self.monitors.is_empty() {
            let ctx = MonitorCtx {
                graph: &self.graph,
                heap: &self.heap,
                stack: &self.stack,
                funcs: &self.funcs,
                fn_entries: self.fn_entries,
                sample_rate: self.sampling.as_ref().map_or(1.0, |f| f.effective_rate()),
                recorder: self.recorder.as_ref(),
            };
            for m in &self.monitors {
                m.borrow_mut().on_event(&ctx, ev);
            }
        }
    }

    fn sample(&mut self) {
        let _span = heapmd_obs::span!("metric_computation_point");
        self.graph.reconcile();
        let ext = self.graph.extended_metrics();
        let sample = MetricSample {
            seq: self.samples.len(),
            fn_entries: self.fn_entries,
            tick: self.heap.tick(),
            metrics: self.graph.metrics(),
            nodes: ext.nodes,
            edges: ext.edges,
            dangling: ext.dangling_slots,
            candidates: Some(self.graph.candidates()),
        };
        self.samples.push(sample);
        if let Some(rec) = self.recorder.as_mut() {
            let x = sample.seq as u64;
            for (kind, value) in sample.metrics.iter() {
                let mut name = String::from("metric.");
                name.push_str(kind.short_name());
                rec.record(&name, x, value);
            }
            let stats = self.heap.stats();
            let (allocs, frees, stores) = (stats.allocs, stats.frees, stats.ptr_writes);
            let (pa, pf, ps) = self.last_op_totals;
            rec.record("rate.allocs", x, (allocs - pa) as f64);
            rec.record("rate.frees", x, (frees - pf) as f64);
            rec.record("rate.ptr_writes", x, (stores - ps) as f64);
            self.last_op_totals = (allocs, frees, stores);
        }
        heapmd_obs::count!("heapmd_samples_total");
        heapmd_obs::gauge_set!("heapmd_graph_nodes", ext.nodes);
        heapmd_obs::gauge_set!("heapmd_graph_edges", ext.edges);
        heapmd_obs::gauge_set!("heapmd_graph_dangling_slots", ext.dangling_slots);
        heapmd_obs::export::emit_event("heartbeat", |o| {
            o.field_u64("seq", sample.seq as u64)
                .field_u64("fn_entries", sample.fn_entries)
                .field_u64("tick", sample.tick)
                .field_u64("nodes", ext.nodes)
                .field_u64("edges", ext.edges)
                .field_u64("dangling", ext.dangling_slots)
                .field_f64("mean_degree", ext.mean_degree);
            let mut metrics = heapmd_obs::json::JsonObject::new();
            for (kind, value) in sample.metrics.iter() {
                metrics.field_f64(kind.short_name(), value);
            }
            o.field_raw("metrics", &metrics.finish());
        });
        if !self.monitors.is_empty() {
            let ctx = MonitorCtx {
                graph: &self.graph,
                heap: &self.heap,
                stack: &self.stack,
                funcs: &self.funcs,
                fn_entries: self.fn_entries,
                sample_rate: self.sampling.as_ref().map_or(1.0, |f| f.effective_rate()),
                recorder: self.recorder.as_ref(),
            };
            for m in &self.monitors {
                m.borrow_mut().on_sample(&ctx, &sample);
            }
        }
    }
}

/// The trace stream sink behind [`Process::stream_trace_to_format`]:
/// one wire format per attached stream. An enum (not a trait object)
/// because `finish` consumes the writer.
enum TraceSink {
    Jsonl(TraceWriter<Box<dyn Write>>),
    Binary(BinaryTraceWriter<Box<dyn Write>>),
}

impl TraceSink {
    fn write_event(&mut self, ev: &HeapEvent) -> Result<(), HeapMdError> {
        match self {
            TraceSink::Jsonl(w) => w.write_event(ev),
            TraceSink::Binary(w) => w.write_event(ev),
        }
    }

    fn write_functions(&mut self, names: &[String]) -> Result<(), HeapMdError> {
        match self {
            TraceSink::Jsonl(w) => w.write_functions(names),
            TraceSink::Binary(w) => w.write_functions(names),
        }
    }

    fn write_sampling_meta(&mut self, info: &SamplingInfo) -> Result<(), HeapMdError> {
        match self {
            // The framed-JSONL format has no meta record; sampling
            // metadata rides only on the binary codec.
            TraceSink::Jsonl(_) => Ok(()),
            TraceSink::Binary(w) => {
                w.write_meta(&crate::trace_codec::encode_sampling_meta(info))
            }
        }
    }

    fn events_written(&self) -> u64 {
        match self {
            TraceSink::Jsonl(w) => w.events_written(),
            TraceSink::Binary(w) => w.events_written(),
        }
    }

    fn finish(self) -> Result<(), HeapMdError> {
        match self {
            TraceSink::Jsonl(w) => w.finish().map(drop),
            TraceSink::Binary(w) => w.finish().map(drop),
        }
    }
}

impl std::fmt::Debug for Process {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Process")
            .field("fn_entries", &self.fn_entries)
            .field("samples", &self.samples.len())
            .field("live_objects", &self.heap.live_objects())
            .field("monitors", &self.monitors.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settings(frq: u64) -> Settings {
        Settings::builder().frq(frq).build().unwrap()
    }

    #[test]
    fn sampling_happens_every_frq_entries() {
        let mut p = Process::new(settings(3));
        for _ in 0..10 {
            p.enter("f");
            p.leave();
        }
        assert_eq!(p.samples().len(), 3);
        assert_eq!(p.samples()[0].fn_entries, 3);
        assert_eq!(p.samples()[2].fn_entries, 9);
    }

    #[test]
    fn graph_stays_in_sync_with_heap() {
        let mut p = Process::new(settings(1));
        p.enter("main");
        let a = p.malloc(24, "a").unwrap();
        let b = p.malloc(24, "b").unwrap();
        p.write_ptr(a, b).unwrap();
        assert_eq!(p.graph().edge_count(), 1);
        p.free(b).unwrap();
        assert_eq!(p.graph().edge_count(), 0);
        assert_eq!(p.graph().dangling_count(), 1);
        assert_eq!(p.graph().node_count(), 1);
        p.graph().validate().unwrap();
        p.leave();
    }

    #[test]
    fn realloc_moves_edges() {
        let mut p = Process::new(settings(1));
        let a = p.malloc(32, "a").unwrap();
        let t = p.malloc(16, "t").unwrap();
        p.write_ptr(a, t).unwrap();
        let a2 = p.realloc(a, 64, "a").unwrap();
        assert_ne!(a, a2);
        assert_eq!(p.graph().edge_count(), 1);
        assert_eq!(p.read_ptr(a2).unwrap(), Some(t));
        p.graph().validate().unwrap();
    }

    #[test]
    fn scoped_pairs_enter_and_leave() {
        let mut p = Process::new(settings(1));
        let out = p.scoped("outer", |p| p.scoped("inner", |p| p.fn_entries()));
        assert_eq!(out, 2);
        assert_eq!(p.fn_entries(), 2);
        // Stack is balanced again: another enter/leave works.
        p.enter("again");
        p.leave();
    }

    #[test]
    #[should_panic(expected = "leave without matching enter")]
    fn unbalanced_leave_panics() {
        let mut p = Process::new(settings(1));
        p.leave();
    }

    #[test]
    fn site_interning_round_trips() {
        let mut p = Process::new(settings(1));
        let s1 = p.intern_site("ListInsert");
        let s2 = p.intern_site("ListInsert");
        assert_eq!(s1, s2);
        assert_eq!(p.site_name(s1), "ListInsert");
        let a = p.malloc_at(16, s1).unwrap();
        assert_eq!(p.heap().object_at(a).unwrap().site(), s1);
    }

    #[test]
    fn finish_returns_all_samples() {
        let mut p = Process::new(settings(2));
        for _ in 0..8 {
            p.enter("w");
            p.malloc(16, "x").unwrap();
            p.leave();
        }
        let r = p.finish("myrun");
        assert_eq!(r.run, "myrun");
        assert_eq!(r.len(), 4);
        // The 4th sample fires at the 8th `enter`, before that
        // iteration's malloc — so 7 objects are live.
        assert_eq!(r.samples[3].nodes, 7);
    }

    #[test]
    fn apply_batch_fast_and_slow_paths_agree() {
        // Record a real run's event stream...
        let mut src = Process::new(settings(3));
        src.enable_trace();
        let mut prev = None;
        for i in 0..40 {
            src.enter("build");
            let node = src.malloc(16, "node").unwrap();
            if let Some(prev) = prev {
                src.write_ptr(node.offset(8), prev).unwrap();
            }
            prev = Some(node);
            if i % 7 == 0 {
                src.write_scalar(node).unwrap();
            }
            src.leave();
        }
        let trace = src.take_trace().unwrap();
        let online = src.finish("online");

        // ...then ingest it through both apply_batch paths: fast (no
        // sinks) and slow (trace recorder forces per-event fan-out).
        let mut fast = Process::new(settings(3));
        fast.apply_batch(trace.events());
        let fast_report = fast.finish("fast");

        let mut slow = Process::new(settings(3));
        slow.enable_trace();
        slow.apply_batch(trace.events());
        assert_eq!(slow.take_trace().unwrap(), trace);
        let slow_report = slow.finish("slow");

        assert_eq!(fast_report.samples, slow_report.samples);
        assert_eq!(fast_report.len(), online.len());
        for (a, b) in fast_report.samples.iter().zip(&online.samples) {
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.fn_entries, b.fn_entries);
        }
    }

    #[test]
    fn trace_records_events_when_enabled() {
        let mut p = Process::new(settings(1));
        p.enable_trace();
        p.enter("f");
        let a = p.malloc(16, "x").unwrap();
        p.free(a).unwrap();
        p.leave();
        let t = p.take_trace().unwrap();
        assert_eq!(t.len(), 4); // enter, alloc, free, exit
        assert!(p.trace().is_none());
    }

    #[test]
    fn streamed_trace_matches_in_memory_trace() {
        use std::io::Write;
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut p = Process::new(settings(1));
        p.enable_trace();
        p.stream_trace_to(Box::new(SharedBuf(Arc::clone(&buf))))
            .unwrap();
        p.enter("f");
        let a = p.malloc(16, "x").unwrap();
        p.free(a).unwrap();
        p.leave();
        let streamed_events = p.finish_stream().unwrap();
        assert_eq!(streamed_events, 4);
        let mut expected = p.take_trace().unwrap();
        expected.set_functions(vec!["f".to_string()]);

        let bytes = buf.lock().unwrap().clone();
        let back = crate::trace_stream::TraceReader::strict(&bytes[..]).unwrap();
        assert_eq!(back, expected);
    }

    #[test]
    fn binary_streamed_trace_matches_in_memory_trace() {
        use std::io::Write;
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Arc::new(Mutex::new(Vec::new()));
        let mut p = Process::new(settings(1));
        p.enable_trace();
        p.stream_trace_to_format(Box::new(SharedBuf(Arc::clone(&buf))), StreamFormat::Binary)
            .unwrap();
        assert_eq!(p.stream_format(), Some(StreamFormat::Binary));
        p.enter("f");
        let a = p.malloc(16, "x").unwrap();
        p.free(a).unwrap();
        p.leave();
        let streamed_events = p.finish_stream().unwrap();
        assert_eq!(streamed_events, 4);
        let mut expected = p.take_trace().unwrap();
        expected.set_functions(vec!["f".to_string()]);

        let bytes = buf.lock().unwrap().clone();
        let back = crate::trace_codec::BinaryTraceReader::strict(&bytes[..]).unwrap();
        assert_eq!(back, expected);
    }

    #[test]
    fn failing_stream_degrades_without_aborting_the_run() {
        struct FailAfter(usize);
        impl std::io::Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.0 == 0 {
                    return Err(std::io::Error::other("sink died"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let mut p = Process::new(settings(1));
        // Header + 2 event records succeed, then the sink dies.
        p.stream_trace_to(Box::new(FailAfter(3))).unwrap();
        for _ in 0..5 {
            p.enter("w");
            p.malloc(16, "x").unwrap();
            p.leave();
        }
        // The run itself survived; the error is reported at the end.
        assert_eq!(p.fn_entries(), 5);
        assert!(matches!(p.finish_stream(), Err(HeapMdError::Io(_))));
        // A second finish reports the stream as gone.
        assert!(matches!(
            p.finish_stream(),
            Err(HeapMdError::InvalidInput(_))
        ));
    }

    #[test]
    fn heap_errors_propagate_without_corrupting_graph() {
        let mut p = Process::new(settings(1));
        let a = p.malloc(16, "x").unwrap();
        p.free(a).unwrap();
        assert!(p.free(a).is_err());
        p.graph().validate().unwrap();
        assert_eq!(p.graph().node_count(), 0);
    }
}
