//! Resumable fleet clients: bounded retry with jittered exponential
//! backoff, connect/write timeouts, and a local spill buffer of
//! unacked blocks.
//!
//! [`SessionClient`] is a [`Write`] sink that speaks the v2 session
//! protocol (see [`super::session`]). Bytes written to it are split
//! back into the `.hmdt` block frames the [`BinaryTraceWriter`]
//! upstream produces, each frame is assigned a sequence number and
//! parked in a spill buffer, and a background-free pump pushes frames
//! over the wire and retires them as the daemon's acks come back. When
//! the connection dies — or was never up — the client redials with
//! exponential backoff (deterministically jittered, so a fleet of
//! restarting clients doesn't thunder in lockstep), replays the
//! preamble, learns the daemon's resume point from the hello ack, and
//! retransmits everything unacked. `flush()` after the end-of-stream
//! frame blocks until the daemon's final ack, so a successful
//! [`push_trace_resumable`] means the verdict is durably in flight on
//! the daemon, not just in a socket buffer.

use super::session::{decode_ack, ACK_FINAL, ACK_LEN, SERVE_PREAMBLE_V2};
use super::{connect_any, valid_tenant, AnyStream};
use crate::error::HeapMdError;
use crate::trace::Trace;
use crate::trace_codec::{BinaryTraceWriter, BLOCK_HEADER_LEN, FOOTER_LEN, HEADER_LEN, KIND_INDEX};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// How long to wait for ack bytes in one pump step before rechecking
/// for work.
const ACK_POLL: Duration = Duration::from_millis(5);

/// A bidirectional, timeout-capable transport the session client can
/// drive. Implemented by the built-in TCP/Unix transports; tests
/// implement it over fault-injecting wrappers to chaos-test the
/// resume protocol.
pub trait Conn: Read + Write + Send {
    /// Bounds subsequent reads; `None` blocks indefinitely.
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()>;
}

impl Conn for AnyStream {
    fn set_read_timeout(&mut self, dur: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout_opt(dur)
    }
}

/// Dials one connection attempt to `addr`.
pub type Dialer = Box<dyn FnMut(&str) -> io::Result<Box<dyn Conn>> + Send>;

/// Bounded-retry policy with exponential backoff.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Consecutive failed connect/transfer cycles tolerated before the
    /// client gives up (successful ack progress resets the count).
    pub max_attempts: u32,
    /// First backoff delay; doubles per consecutive failure.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    /// 8 attempts, 100 ms base, 5 s ceiling.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(5),
        }
    }
}

/// Options for [`connect_session`] / [`push_trace_resumable`].
pub struct SessionOptions {
    /// Session id (1–32 chars of `[A-Za-z0-9._:-]`); defaults to a
    /// time+pid-derived id unique enough for one tenant.
    pub session: Option<String>,
    /// Reconnect policy.
    pub retry: RetryPolicy,
    /// Spill-buffer cap in bytes. Writes block (pumping the wire)
    /// while the unacked backlog is above the cap.
    pub spill_limit: usize,
    /// Connect timeout, write timeout, and the ack-progress deadline
    /// after which an apparently-alive but silent connection is
    /// considered dead.
    pub io_timeout: Duration,
    /// Transport override for tests (fault injection); `None` dials
    /// TCP/Unix per the address.
    pub dialer: Option<Dialer>,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            session: None,
            retry: RetryPolicy::default(),
            spill_limit: 8 << 20,
            io_timeout: Duration::from_secs(10),
            dialer: None,
        }
    }
}

impl std::fmt::Debug for SessionOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionOptions")
            .field("session", &self.session)
            .field("retry", &self.retry)
            .field("spill_limit", &self.spill_limit)
            .field("io_timeout", &self.io_timeout)
            .field("dialer", &self.dialer.as_ref().map(|_| "custom"))
            .finish()
    }
}

/// Splits the byte stream a [`BinaryTraceWriter`] produces back into
/// whole wire frames: the 8-byte file header is swallowed (v2 carries
/// no header — the daemon journals its own), every block becomes one
/// frame, and the index block pulls the 20-byte footer along with it.
struct BlockSplitter {
    buf: Vec<u8>,
    header_left: usize,
    /// Payload (+footer) bytes the current block still needs, once its
    /// header is complete.
    ended: bool,
}

impl BlockSplitter {
    fn new() -> Self {
        BlockSplitter {
            buf: Vec::new(),
            header_left: HEADER_LEN,
            ended: false,
        }
    }

    /// Feeds bytes; returns every frame completed by them.
    fn push(&mut self, mut bytes: &[u8]) -> Vec<Vec<u8>> {
        if self.header_left > 0 {
            let n = self.header_left.min(bytes.len());
            self.header_left -= n;
            bytes = &bytes[n..];
        }
        self.buf.extend_from_slice(bytes);
        let mut frames = Vec::new();
        loop {
            if self.buf.len() < BLOCK_HEADER_LEN {
                break;
            }
            let kind = self.buf[4];
            let len = u32::from_le_bytes(self.buf[9..13].try_into().unwrap()) as usize;
            let mut frame_len = BLOCK_HEADER_LEN + len;
            if kind == KIND_INDEX {
                frame_len += FOOTER_LEN;
            }
            if self.buf.len() < frame_len {
                break;
            }
            let rest = self.buf.split_off(frame_len);
            frames.push(std::mem::replace(&mut self.buf, rest));
            if kind == KIND_INDEX {
                self.ended = true;
                break;
            }
        }
        frames
    }
}

/// Deterministic xorshift64* jitter stream, seeded from the tenant and
/// session ids (FNV-1a): no OS randomness, reproducible under test,
/// and distinct across a fleet of clients.
struct Jitter {
    state: u64,
}

impl Jitter {
    fn new(tenant: &str, session: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in tenant.bytes().chain([0]).chain(session.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Jitter {
            state: if h == 0 { 0x9e37_79b9 } else { h },
        }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Buckets (milliseconds) of the client retry-backoff histogram.
pub use heapmd_obs::fleet::RETRY_BACKOFF_BUCKETS_MS;

fn record_backoff(ms: u64) {
    if heapmd_obs::obs_enabled() {
        heapmd_obs::registry()
            .histogram("heapmd_client_retry_backoff_ms", RETRY_BACKOFF_BUCKETS_MS)
            .observe(ms);
    }
}

/// A resumable session sink (see the module docs).
pub struct SessionClient {
    addr: String,
    tenant: String,
    session: String,
    retry: RetryPolicy,
    spill_limit: usize,
    io_timeout: Duration,
    dialer: Dialer,
    jitter: Jitter,

    conn: Option<Box<dyn Conn>>,
    splitter: BlockSplitter,
    /// Unacked frames, seq-ordered; front's sequence is `acked`.
    spill: VecDeque<Vec<u8>>,
    spill_bytes: usize,
    /// Sequence assigned to the next frame the splitter completes.
    next_seq: u64,
    /// Everything below this sequence is daemon-acknowledged.
    acked: u64,
    /// Next sequence to (re)transmit on the current connection.
    cursor: u64,
    /// Partial ack frame read so far.
    ack_buf: Vec<u8>,
    final_acked: bool,
    /// Reconnects performed (first successful dial not counted).
    reconnects: u64,
    last_progress: Instant,
}

impl SessionClient {
    fn new(addr: &str, tenant: &str, opts: SessionOptions) -> Self {
        let session = opts.session.unwrap_or_else(default_session_id);
        let io_timeout = opts.io_timeout;
        let dialer = opts.dialer.unwrap_or_else(|| default_dialer(io_timeout));
        SessionClient {
            jitter: Jitter::new(tenant, &session),
            addr: addr.to_string(),
            tenant: tenant.to_string(),
            session,
            retry: opts.retry,
            spill_limit: opts.spill_limit.max(1),
            io_timeout,
            dialer,
            conn: None,
            splitter: BlockSplitter::new(),
            spill: VecDeque::new(),
            spill_bytes: 0,
            next_seq: 0,
            acked: 0,
            cursor: 0,
            ack_buf: Vec::new(),
            final_acked: false,
            reconnects: 0,
            last_progress: Instant::now(),
        }
    }

    /// The session id in use (generated if none was supplied).
    pub fn session_id(&self) -> &str {
        &self.session
    }

    /// Reconnects performed after the initial successful dial.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn drop_conn(&mut self) {
        self.conn = None;
        self.ack_buf.clear();
    }

    /// Sleeps the jittered exponential backoff for failure number
    /// `attempt` (1-based) and records it in the client histogram.
    fn backoff_sleep(&mut self, attempt: u32) {
        let base = self.retry.base_delay.as_millis() as u64;
        let cap = self.retry.max_delay.as_millis() as u64;
        let exp = base
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
            .min(cap);
        // Jitter into [exp/2, exp]: stays exponential, never syncs.
        let half = exp / 2;
        let ms = half + self.jitter.next() % (exp - half + 1);
        record_backoff(ms);
        std::thread::sleep(Duration::from_millis(ms));
    }

    /// One dial + handshake attempt. On success the spill cursor is
    /// rewound to the daemon's resume point.
    fn try_connect(&mut self) -> io::Result<()> {
        let mut conn = (self.dialer)(&self.addr)?;
        conn.write_all(
            format!(
                "{SERVE_PREAMBLE_V2} {} {} {}\n",
                self.tenant, self.session, self.acked
            )
            .as_bytes(),
        )?;
        conn.flush()?;
        conn.set_read_timeout(Some(self.io_timeout))?;
        let mut hello = [0u8; ACK_LEN];
        conn.read_exact(&mut hello)?;
        let Some((daemon_acked, flags)) = decode_ack(&hello) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "daemon sent a malformed ack",
            ));
        };
        if flags & ACK_FINAL != 0 {
            self.final_acked = true;
        } else if daemon_acked < self.acked {
            // The daemon acked these blocks before but no longer has
            // them (restarted without its journal). The spill already
            // dropped them, so the session cannot be resumed.
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "daemon lost session state: resumes at block {daemon_acked}, \
                     client already dropped blocks below {}",
                    self.acked
                ),
            ));
        }
        self.retire_below(daemon_acked.max(self.acked));
        self.cursor = self.acked;
        if self.reconnects > 0 || self.conn.is_some() {
            // (re)dial counted by the caller via reconnects.
        }
        self.conn = Some(conn);
        self.ack_buf.clear();
        self.last_progress = Instant::now();
        Ok(())
    }

    /// Drops acked frames off the spill front.
    fn retire_below(&mut self, acked: u64) {
        while self.acked < acked {
            if let Some(front) = self.spill.pop_front() {
                self.spill_bytes -= front.len();
            }
            self.acked += 1;
        }
    }

    /// Sends every not-yet-transmitted spill frame on the live
    /// connection.
    fn send_pending(&mut self) -> io::Result<bool> {
        let mut sent = false;
        while self.cursor < self.next_seq {
            let idx = (self.cursor - self.acked) as usize;
            let Some(frame) = self.spill.get(idx) else {
                break;
            };
            let mut msg = Vec::with_capacity(8 + frame.len());
            msg.extend_from_slice(&self.cursor.to_le_bytes());
            msg.extend_from_slice(frame);
            let conn = self.conn.as_mut().expect("send_pending with live conn");
            conn.write_all(&msg)?;
            self.cursor += 1;
            sent = true;
        }
        if sent {
            self.conn.as_mut().unwrap().flush()?;
        }
        Ok(sent)
    }

    /// Reads whatever acks are available within `wait`; returns whether
    /// the acked watermark advanced.
    fn poll_acks(&mut self, wait: Duration) -> io::Result<bool> {
        let conn = self.conn.as_mut().expect("poll_acks with live conn");
        conn.set_read_timeout(Some(wait.max(Duration::from_millis(1))))?;
        let before = self.acked;
        let mut chunk = [0u8; 64];
        loop {
            match self.conn.as_mut().unwrap().read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "daemon closed the connection",
                    ))
                }
                Ok(n) => {
                    self.ack_buf.extend_from_slice(&chunk[..n]);
                    while self.ack_buf.len() >= ACK_LEN {
                        let frame: Vec<u8> = self.ack_buf.drain(..ACK_LEN).collect();
                        let Some((acked, flags)) = decode_ack(&frame) else {
                            return Err(io::Error::new(
                                io::ErrorKind::InvalidData,
                                "daemon sent a malformed ack",
                            ));
                        };
                        self.retire_below(acked.max(self.acked));
                        if flags & ACK_FINAL != 0 {
                            self.final_acked = true;
                        }
                    }
                    if self.final_acked {
                        break;
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    break
                }
                Err(e) => return Err(e),
            }
        }
        Ok(self.acked > before || self.final_acked)
    }

    /// Pumps the wire until `goal` holds, redialing with backoff on
    /// failure. Fails after `retry.max_attempts` consecutive cycles
    /// without ack progress.
    fn pump_until(&mut self, goal: impl Fn(&Self) -> bool) -> io::Result<()> {
        let mut attempts: u32 = 0;
        let mut last_err = io::Error::other("session pump never attempted");
        loop {
            if goal(self) {
                return Ok(());
            }
            if attempts >= self.retry.max_attempts {
                return Err(io::Error::new(
                    last_err.kind(),
                    format!(
                        "giving up on {} after {attempts} attempts (session {}): {last_err}",
                        self.addr, self.session
                    ),
                ));
            }
            if self.conn.is_none() {
                if attempts > 0 {
                    self.backoff_sleep(attempts);
                }
                let had_conn_before = self.reconnects > 0 || self.acked > 0 || self.cursor > 0;
                match self.try_connect() {
                    Ok(()) => {
                        if had_conn_before {
                            self.reconnects += 1;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
                    Err(e) => {
                        attempts += 1;
                        last_err = e;
                        continue;
                    }
                }
                continue;
            }
            let step = (|| -> io::Result<bool> {
                let sent = self.send_pending()?;
                let acked = self.poll_acks(ACK_POLL)?;
                Ok(sent || acked)
            })();
            match step {
                Ok(true) => {
                    attempts = 0;
                    self.last_progress = Instant::now();
                }
                Ok(false) => {
                    if self.last_progress.elapsed() > self.io_timeout {
                        // Alive socket, silent daemon: treat as dead.
                        self.drop_conn();
                        attempts += 1;
                        last_err = io::Error::new(
                            io::ErrorKind::TimedOut,
                            "no ack progress within the io timeout",
                        );
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
                Err(e) => {
                    self.drop_conn();
                    attempts += 1;
                    last_err = e;
                }
            }
        }
    }

    fn enqueue(&mut self, frame: Vec<u8>) {
        self.spill_bytes += frame.len();
        self.spill.push_back(frame);
        self.next_seq += 1;
    }
}

impl Write for SessionClient {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        for frame in self.splitter.push(buf) {
            self.enqueue(frame);
        }
        // Opportunistic pump: push frames and retire acks without
        // blocking the producer...
        if self.conn.is_some() {
            let step = (|| -> io::Result<()> {
                self.send_pending()?;
                self.poll_acks(Duration::from_millis(1))?;
                Ok(())
            })();
            if step.is_err() {
                self.drop_conn();
            }
        }
        // ...unless the spill is over its cap: then block (with the
        // full retry loop) until the daemon drains it.
        if self.spill_bytes > self.spill_limit {
            let limit = self.spill_limit;
            self.pump_until(|c| c.spill_bytes <= limit)?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.splitter.ended {
            self.pump_until(|c| c.final_acked)
        } else {
            self.pump_until(|c| c.conn.is_some())?;
            self.conn.as_mut().unwrap().flush()
        }
    }
}

fn default_session_id() -> String {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    format!("s{:x}-{:x}", nanos, std::process::id())
}

fn default_dialer(io_timeout: Duration) -> Dialer {
    Box::new(move |addr: &str| {
        if addr.strip_prefix("unix:").is_none() {
            // TCP: bounded connect + write timeouts.
            use std::net::{TcpStream, ToSocketAddrs};
            let target = addr
                .to_socket_addrs()?
                .next()
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "address resolved empty"))?;
            let stream = TcpStream::connect_timeout(&target, io_timeout)?;
            stream.set_write_timeout(Some(io_timeout))?;
            return Ok(Box::new(AnyStream::Tcp(stream)) as Box<dyn Conn>);
        }
        let stream = connect_any(addr).map_err(|e| io::Error::other(e.to_string()))?;
        stream.set_write_timeout_opt(Some(io_timeout))?;
        Ok(Box::new(stream) as Box<dyn Conn>)
    })
}

/// Connects a resumable session to a daemon, returning a [`Write`]
/// sink for [`crate::Process::stream_trace_to_format`] with
/// [`crate::StreamFormat::Binary`]. The initial dial retries per the
/// policy; afterwards every write transparently survives connection
/// loss until the retry budget is exhausted.
///
/// # Errors
///
/// [`HeapMdError::InvalidInput`] for a bad tenant or session id,
/// [`HeapMdError::Io`] when the daemon stays unreachable through the
/// whole retry budget.
pub fn connect_session(
    addr: &str,
    tenant: &str,
    opts: SessionOptions,
) -> Result<SessionClient, HeapMdError> {
    if !valid_tenant(tenant) {
        return Err(HeapMdError::InvalidInput(format!(
            "invalid tenant name {tenant:?} (want 1-64 chars of [A-Za-z0-9._:-])"
        )));
    }
    if let Some(session) = &opts.session {
        if !super::session::valid_session(session) {
            return Err(HeapMdError::InvalidInput(format!(
                "invalid session id {session:?} (want 1-32 chars of [A-Za-z0-9._:-])"
            )));
        }
    }
    let mut client = SessionClient::new(addr, tenant, opts);
    client.pump_until(|c| c.conn.is_some() || c.final_acked)?;
    Ok(client)
}

/// Pushes a recorded trace through a resumable session, surviving
/// connection loss, daemon restarts (with a journal), and injected
/// network faults as long as the retry budget holds out. Returns the
/// number of events sent and the reconnect count.
///
/// # Errors
///
/// Same as [`connect_session`], plus encode/transport failures after
/// the retry budget is spent.
pub fn push_trace_resumable(
    addr: &str,
    tenant: &str,
    trace: &Trace,
    opts: SessionOptions,
) -> Result<(u64, u64), HeapMdError> {
    let client = connect_session(addr, tenant, opts)?;
    let mut writer = BinaryTraceWriter::new(io::BufWriter::new(client))?;
    // Sampling schedule first, so daemon-side live gauges widen from
    // the first sample on (matching [`super::push_trace`]).
    if let Some(info) = trace.sampling() {
        writer.write_meta(&crate::trace_codec::encode_sampling_meta(&info))?;
    }
    for ev in trace.events() {
        writer.write_event(ev)?;
    }
    writer.write_functions(trace.functions())?;
    let mut buf = writer.finish()?;
    buf.flush()?;
    let client = buf
        .into_inner()
        .map_err(|e| HeapMdError::Io(io::Error::other(e.to_string())))?;
    Ok((trace.len() as u64, client.reconnects()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_codec::EVENTS_PER_BLOCK;
    use sim_heap::HeapEvent;

    #[test]
    fn splitter_reassembles_writer_frames() {
        // Encode a two-block trace (events + functions + index) and
        // feed it through the splitter in awkward chunk sizes.
        let mut w = BinaryTraceWriter::new(Vec::new()).unwrap();
        for i in 0..(EVENTS_PER_BLOCK + 3) {
            w.write_event(&HeapEvent::Alloc {
                obj: sim_heap::ObjectId(i as u64),
                addr: sim_heap::Addr::new(0x1000 + i as u64 * 16),
                size: 16,
                site: sim_heap::AllocSite(1),
            })
            .unwrap();
        }
        w.write_functions(&["main".to_string()]).unwrap();
        let bytes = w.finish().unwrap();

        for chunk in [1usize, 7, 64, 4096] {
            let mut sp = BlockSplitter::new();
            let mut frames = Vec::new();
            for part in bytes.chunks(chunk) {
                frames.extend(sp.push(part));
            }
            assert!(sp.ended, "chunk {chunk}: index frame seen");
            let total: usize = frames.iter().map(Vec::len).sum();
            assert_eq!(
                total,
                bytes.len() - HEADER_LEN,
                "chunk {chunk}: frames cover everything but the header"
            );
            assert_eq!(frames.len(), 4, "events x2 + functions + index+footer");
            let reassembled: Vec<u8> = bytes[..HEADER_LEN]
                .iter()
                .copied()
                .chain(frames.iter().flatten().copied())
                .collect();
            assert_eq!(reassembled, bytes, "chunk {chunk}: byte-identical");
        }
    }

    #[test]
    fn jitter_is_deterministic_and_session_dependent() {
        let a: Vec<u64> = {
            let mut j = Jitter::new("web", "s1");
            (0..4).map(|_| j.next()).collect()
        };
        let b: Vec<u64> = {
            let mut j = Jitter::new("web", "s1");
            (0..4).map(|_| j.next()).collect()
        };
        let c: Vec<u64> = {
            let mut j = Jitter::new("web", "s2");
            (0..4).map(|_| j.next()).collect()
        };
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, c, "different session, different stream");
    }

    #[test]
    fn retire_below_tracks_spill_bytes() {
        let mut c = SessionClient::new("127.0.0.1:1", "t", SessionOptions::default());
        c.enqueue(vec![0u8; 10]);
        c.enqueue(vec![0u8; 20]);
        c.enqueue(vec![0u8; 30]);
        assert_eq!(c.spill_bytes, 60);
        c.retire_below(2);
        assert_eq!(c.acked, 2);
        assert_eq!(c.spill_bytes, 30);
        c.retire_below(2); // idempotent
        assert_eq!(c.spill_bytes, 30);
    }
}
