//! `heapmd serve`: a long-running fleet daemon that ingests concurrent
//! binary trace streams from many processes and checks each tenant
//! against a calibrated model.
//!
//! # Architecture
//!
//! ```text
//!  client ──HMDSERVE1 tenant\n───────────────┐
//!  client ──HMDSERVE2 tenant sess acked\n────┤ accept loop ──(hash(tenant) % N)──▶ shard 0..N
//!  client ───.hmdt blocks (+seq on v2)───────┘      │                                 │
//!            ◀── HMAK acks (v2) ──                  ▼                                 ▼
//!                                              FleetRegistry ◀── live gauges ── Replayer + model
//!                                                   │                                 │
//!                     HTTP /metrics /fleet.tsv /fleet.jsonl /shutdown            IncidentLog
//! ```
//!
//! - **Wire format (v1).** A connection is one text preamble line
//!   (`HMDSERVE1 <tenant>\n`) followed by a raw `.hmdt` binary trace —
//!   the same length-framed, CRC-checked block codec
//!   ([`crate::trace_codec`]) that `record --format binary` writes, so
//!   a process can stream to a file and a daemon with identical bytes.
//!   Frames decode through [`WireReader`]; any structural damage evicts
//!   exactly the offending tenant (salvaging the buffered prefix into a
//!   partial verdict first), never the daemon.
//! - **Wire format (v2, resumable).** `HMDSERVE2 <tenant> <session>
//!   <acked>\n` attaches (or re-attaches) a client session. Each block
//!   travels with a `u64` sequence number and the daemon acknowledges
//!   journaled blocks back on the same socket, so a client that loses
//!   its connection reconnects and resumes from the first unacked
//!   block. See [`session`] for the protocol and crash-only recovery.
//! - **Sharding & backpressure.** Tenants hash-assign to one of N
//!   worker shards over bounded per-tenant queues (a pending-event
//!   counter shared between the connection handler and the shard). A
//!   full queue backpressures the client for as long as the shard keeps
//!   draining it; only a queue that makes no progress for a whole grace
//!   window gets its tenant evicted as stalled.
//! - **Verdicts.** Shards feed a resumable [`Replayer`] per tenant for
//!   live per-metric gauges, and buffer the event stream; on clean end
//!   of stream the buffered trace runs through the exact
//!   [`Trace::check_logged`] path, so the daemon verdict is
//!   bit-identical to `heapmd check` on the same trace, with incident
//!   bundles captured into a per-tenant [`IncidentLog`] directory. Each
//!   tenant checks against the shared model, or its own override from
//!   [`ServeConfig::model_dir`].
//! - **Shutdown.** The toolchain forbids `unsafe`, so there is no
//!   signal handler; graceful shutdown arrives via the HTTP control
//!   endpoint (`GET /shutdown`) or [`Server::shutdown`]. In-flight
//!   streams drain whatever the kernel already buffered, the prefixes
//!   are finalized as partial verdicts, every incident bundle flushed,
//!   and the final Prometheus dump written. Session journals survive
//!   shutdown untouched, so a restarted daemon replays them and lets
//!   clients resume mid-stream.

pub mod client;
pub mod session;

use crate::bug::BugReport;
use crate::error::HeapMdError;
use crate::incident::IncidentLog;
use crate::model::HeapModel;
use crate::report::MetricSample;
use crate::run_rows::{rows_from_samples, unix_time_now, RowSource};
use crate::trace::{Replayer, Trace};
use crate::trace_codec::{BinaryTraceWriter, BlockIndex, WireFrame, WireReader};
use heapmd_obs::fleet::{
    FleetRegistry, MetricGauge, MetricVerdict, TenantStats, STATUS_NEAR_EDGE, STATUS_OK, STATUS_OUT,
};
use heapmd_runstore::{RowKind, RunStore};
use sim_heap::HeapEvent;
use swat::{SamplerConfig, SamplingInfo};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub use client::{
    connect_session, push_trace_resumable, Conn, Dialer, RetryPolicy, SessionClient, SessionOptions,
};
pub use session::SERVE_PREAMBLE_V2;

/// First token of the v1 connection preamble line.
pub const SERVE_PREAMBLE: &str = "HMDSERVE1";

/// Idle poll period of the nonblocking accept loops.
const ACCEPT_POLL: Duration = Duration::from_millis(10);
/// How long a full per-tenant queue may go without draining a single
/// event before the tenant is evicted as stalled. Progress resets the
/// clock, so a merely slow shard backpressures instead of evicting.
const BACKPRESSURE_GRACE: Duration = Duration::from_secs(5);
/// Poll period while waiting for queue room.
const BACKPRESSURE_POLL: Duration = Duration::from_millis(5);
/// Read timeout on ingest sockets: the latency with which a blocked
/// connection handler notices the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(25);
/// Window over which per-tenant ingest rates are computed.
const RATE_WINDOW: Duration = Duration::from_millis(250);
/// Longest accepted preamble line (token + 64-char tenant + 32-char
/// session id + a 20-digit ack, space-separated).
const MAX_PREAMBLE: usize = 160;
/// How often the accept loop sweeps for expired disconnected sessions.
const SWEEP_PERIOD: Duration = Duration::from_millis(500);

/// Whether `name` is a valid tenant name: 1–64 bytes of
/// `[A-Za-z0-9._:-]`. The restriction keeps names safe as label
/// values, file names, and TSV cells.
pub fn valid_tenant(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b':' | b'-'))
}

// ---------------------------------------------------------------------
// Transport: TCP or Unix sockets behind one façade
// ---------------------------------------------------------------------

enum AnyListener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl AnyListener {
    /// Binds `spec`: `unix:<path>` for a Unix socket (replacing a stale
    /// socket file), anything else as a TCP `host:port`. Returns the
    /// listener (nonblocking) and its resolved address string.
    fn bind(spec: &str) -> io::Result<(AnyListener, String)> {
        if let Some(path) = spec.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                return Ok((AnyListener::Unix(listener), spec.to_string()));
            }
            #[cfg(not(unix))]
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix sockets are unavailable on this platform",
            ));
        }
        let listener = TcpListener::bind(spec)?;
        let addr = listener.local_addr()?.to_string();
        listener.set_nonblocking(true)?;
        Ok((AnyListener::Tcp(listener), addr))
    }

    fn accept(&self) -> io::Result<AnyStream> {
        match self {
            AnyListener::Tcp(l) => l.accept().map(|(s, _)| AnyStream::Tcp(s)),
            #[cfg(unix)]
            AnyListener::Unix(l) => l.accept().map(|(s, _)| AnyStream::Unix(s)),
        }
    }
}

pub(crate) enum AnyStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl AnyStream {
    fn set_blocking(&self) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_nonblocking(false),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_nonblocking(false),
        }
    }

    /// Bounds every read so a blocked handler can notice the shutdown
    /// flag without the socket being torn down under it.
    fn set_read_timeout(&self, dur: Duration) -> io::Result<()> {
        self.set_read_timeout_opt(Some(dur))
    }

    pub(crate) fn set_read_timeout_opt(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_read_timeout(dur),
        }
    }

    pub(crate) fn set_write_timeout_opt(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.set_write_timeout(dur),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.set_write_timeout(dur),
        }
    }
}

/// Read adapter that turns the shutdown flag into a clean end of
/// stream. While the daemon runs, read timeouts simply retry; once
/// shutdown is flagged, bytes the kernel already buffered still read
/// out normally and the first timeout after that reports EOF. Handlers
/// therefore salvage everything the client managed to send — force
/// closing the socket instead would discard the buffered tail (and
/// with it, typically, the function table at the end of the stream).
pub(crate) struct DrainingStream {
    inner: AnyStream,
    shutdown: Arc<AtomicBool>,
}

impl Read for DrainingStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.inner.read(buf) {
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.shutdown.load(Relaxed) {
                        return Ok(0);
                    }
                }
                other => return other,
            }
        }
    }
}

impl Write for DrainingStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Read for AnyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for AnyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            AnyStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            AnyStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            AnyStream::Unix(s) => s.flush(),
        }
    }
}

// ---------------------------------------------------------------------
// Configuration and outcomes
// ---------------------------------------------------------------------

/// Daemon configuration (transport addresses travel separately, see
/// [`Server::start`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The shared calibrated model tenants check against by default.
    pub model: HeapModel,
    /// Worker shard count (tenants hash-assign; min 1).
    pub shards: usize,
    /// Per-tenant pending-event bound before backpressure, then
    /// eviction, kicks in.
    pub queue_events: u64,
    /// Root directory for per-tenant incident bundles (one
    /// subdirectory per tenant), if incident capture is on.
    pub incident_dir: Option<PathBuf>,
    /// Where the final Prometheus dump (registry + fleet section) is
    /// written at shutdown.
    pub prom_dump: Option<PathBuf>,
    /// Directory of per-tenant session journals (`<tenant>.hmdt` +
    /// `<tenant>.session.json`). With a journal, v2 sessions are
    /// crash-only recoverable across daemon restarts; without one they
    /// still resume across reconnects within a daemon's lifetime.
    pub journal_dir: Option<PathBuf>,
    /// Directory of per-tenant model overrides: `<tenant>.hmdm` checks
    /// that tenant instead of the shared model.
    pub model_dir: Option<PathBuf>,
    /// How long a disconnected, incomplete v2 session is held for
    /// resumption before it is evicted (its buffered prefix salvaged
    /// into a partial verdict).
    pub session_timeout: Duration,
    /// Columnar run-store directory: every finalized tenant verdict
    /// appends its replayed sample series as `kind="serve"` rows.
    pub run_store: Option<PathBuf>,
    /// Daemon-side production-overhead mode: full-fidelity tenant
    /// streams are re-sampled through the adaptive filter before the
    /// authoritative check (streams that arrive already sampled keep
    /// their recorded schedule — re-decimating would double-drop).
    pub sampler: Option<SamplerConfig>,
}

impl ServeConfig {
    /// Defaults: 4 shards, 65 536 queued events per tenant, no incident
    /// capture, no final dump, no journal or model override directory,
    /// 30 s session timeout.
    pub fn new(model: HeapModel) -> Self {
        ServeConfig {
            model,
            shards: 4,
            queue_events: 1 << 16,
            incident_dir: None,
            prom_dump: None,
            journal_dir: None,
            model_dir: None,
            session_timeout: Duration::from_secs(30),
            run_store: None,
            sampler: None,
        }
    }
}

/// How one tenant's stream ended.
#[derive(Debug)]
pub struct TenantOutcome {
    /// Tenant name.
    pub tenant: String,
    /// Events ingested and replayed.
    pub events: u64,
    /// The detector's verdict (bit-identical to `check` on the same
    /// trace when the stream completed cleanly).
    pub bugs: Vec<BugReport>,
    /// Incident bundles flushed for this tenant.
    pub bundle_paths: Vec<PathBuf>,
    /// The stream never reached its index/footer; the verdict covers
    /// the buffered prefix (shutdown, or an eviction mid-stream).
    pub partial: bool,
    /// Why the tenant was kicked, when it was. Eviction still salvages
    /// the buffered prefix: `bugs`/`bundle_paths` cover it.
    pub evicted: Option<String>,
    /// Replay/check failure, if the buffered trace was unusable.
    pub error: Option<String>,
}

/// Everything the daemon produced over its lifetime.
#[derive(Debug, Default)]
pub struct ServeSummary {
    /// Final outcome per tenant (a reconnecting tenant keeps its last).
    pub tenants: BTreeMap<String, TenantOutcome>,
    /// Set when the final Prometheus dump could not be written; the
    /// CLI turns this into a typed warning and a distinct exit code.
    pub prom_dump_error: Option<String>,
}

// ---------------------------------------------------------------------
// Shard workers
// ---------------------------------------------------------------------

pub(crate) enum ShardMsg {
    Start {
        tenant: String,
        stats: Arc<TenantStats>,
        pending: Arc<AtomicU64>,
        /// The model this tenant checks against (shared or per-tenant
        /// override, resolved by the connection handler).
        model: Arc<HeapModel>,
        /// A reconnecting v2 session keeps its accumulated state; a
        /// fresh stream replaces it.
        resume: bool,
    },
    Events {
        tenant: String,
        events: Vec<HeapEvent>,
    },
    Functions {
        tenant: String,
        names: Vec<String>,
    },
    /// Sampling metadata from a production-overhead client: the stream
    /// was store-decimated at the sender, and the verdict must widen
    /// ranges by the recorded rate.
    Sampling {
        tenant: String,
        info: SamplingInfo,
    },
    End {
        tenant: String,
        index: BlockIndex,
        /// Journal files to delete once the verdict is closed.
        cleanup: Vec<PathBuf>,
    },
    Abort {
        tenant: String,
        reason: String,
        /// Mark the outcome evicted (corrupt stream, stalled queue,
        /// expired session) instead of a plain partial (shutdown). The
        /// buffered prefix is salvaged into a partial verdict either
        /// way.
        evict: bool,
        /// Journal files to delete once the verdict is closed.
        cleanup: Vec<PathBuf>,
    },
}

struct ShardTenant {
    stats: Arc<TenantStats>,
    pending: Arc<AtomicU64>,
    model: Arc<HeapModel>,
    events: Vec<HeapEvent>,
    functions: Vec<String>,
    replayer: Replayer,
    /// Sampling metadata announced by the stream (last one wins),
    /// stamped onto the finalize-time trace so the daemon verdict
    /// matches an offline check of the same sampled artifact.
    sampling: Option<SamplingInfo>,
    /// Per stable metric: was the last live sample out of range.
    last_out: Vec<bool>,
    window_start: Instant,
    window_events: u64,
}

fn shard_for(tenant: &str, shards: usize) -> usize {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    tenant.hash(&mut h);
    (h.finish() % shards as u64) as usize
}

/// Looks `kind` up in a sample's metric vector.
fn metric_value(sample: &MetricSample, kind: heap_graph::MetricKind) -> f64 {
    sample.metrics.get(kind)
}

/// Folds a batch of new live samples into the tenant's gauges: latest
/// value/distance/status per calibrated metric (the paper's stable
/// seven plus any calibrated extended candidates), range-crossing
/// transitions, and the advisory arm flag (near-edge or out — the
/// authoritative detector, slope condition included, runs at finalize).
fn update_live(t: &mut ShardTenant, samples: &[MetricSample], model: &HeapModel) {
    let s = &model.settings;
    let stable = &model.stable;
    for _ in samples {
        t.stats.record_sample();
    }
    // Confidence widening: the mismatch ratio of the stream's
    // announced sampling rate and the model's calibration-time rate,
    // matching the authoritative detector at finalize (rate-matched
    // calibration needs no widening; a rate gap widens by the ratio).
    let model_rate = if model.sample_rate.is_finite() && model.sample_rate > 0.0 {
        model.sample_rate
    } else {
        1.0
    };
    let stream_rate = t.sampling.map_or(1.0, |i| i.rate());
    let rate = stream_rate.min(model_rate) / stream_rate.max(model_rate).max(f64::MIN_POSITIVE);
    let mut gauges = Vec::with_capacity(stable.len() + model.candidate_stable.len());
    let mut crossings = 0u64;
    let mut armed = false;
    // One closure folds a sample series into a gauge so the paper
    // metrics and the extended candidates share the exact same
    // range/near-edge/crossing semantics.
    let mut fold = |slot: usize,
                    name: String,
                    min: f64,
                    max: f64,
                    read: &dyn Fn(&MetricSample) -> Option<f64>| {
        let widen = crate::model::sampling_widen(max - min, rate);
        let lo = min - s.range_margin - widen;
        let hi = max + s.range_margin + widen;
        let near = (max - min).max(0.5) * s.near_edge_frac;
        let mut was_out = t.last_out[slot];
        let (mut value, mut distance, mut status) = (0.0, 0.0, STATUS_OK);
        for sample in samples {
            let Some(v) = read(sample) else { continue };
            let out = v < lo || v > hi;
            if out && !was_out {
                crossings += 1;
            }
            was_out = out;
            value = v;
            distance = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            status = if out {
                STATUS_OUT
            } else if v >= hi - near || v <= lo + near {
                STATUS_NEAR_EDGE
            } else {
                STATUS_OK
            };
        }
        t.last_out[slot] = was_out;
        armed |= status != STATUS_OK;
        gauges.push(MetricGauge {
            metric: name,
            value,
            distance,
            band: hi - lo,
            status,
        });
    };
    for (i, sm) in stable.iter().enumerate() {
        fold(i, sm.kind.short_name().to_string(), sm.min, sm.max, &|m| {
            Some(metric_value(m, sm.kind))
        });
    }
    for (j, cm) in model.candidate_stable.iter().enumerate() {
        let kind = cm.kind();
        fold(stable.len() + j, cm.id.clone(), cm.min, cm.max, &|m| {
            m.candidate(kind)
        });
    }
    if crossings > 0 {
        t.stats.add_crossings(crossings);
    }
    t.stats.set_armed(armed);
    t.stats.set_metrics(gauges);
}

/// The per-metric calibration verdicts a tenant's model implies: the
/// paper seven always get a verdict; the extended family appears only
/// when the model actually calibrated candidates, so paper-mode
/// exposition is unchanged.
fn verdicts_for(model: &HeapModel) -> Vec<MetricVerdict> {
    let mut out: Vec<MetricVerdict> = heap_graph::CandidateKind::ALL[..heap_graph::METRIC_COUNT]
        .iter()
        .map(|k| {
            let paper = k.paper_kind().expect("first seven are paper metrics");
            MetricVerdict {
                metric: k.id().to_string(),
                stable: model.stable.iter().any(|sm| sm.kind == paper),
            }
        })
        .collect();
    if model.has_candidates() || !model.candidate_unstable.is_empty() {
        for cm in &model.candidate_stable {
            out.push(MetricVerdict {
                metric: cm.id.clone(),
                stable: true,
            });
        }
        for id in &model.candidate_unstable {
            out.push(MetricVerdict {
                metric: id.clone(),
                stable: false,
            });
        }
    }
    out
}

/// Runs the buffered stream through the authoritative offline check and
/// closes the tenant's books. An evicted tenant still gets its buffered
/// prefix checked (partial verdict + incident bundles) — eviction
/// changes how the outcome is labeled, not whether evidence is kept.
fn finalize(
    mut t: ShardTenant,
    tenant: String,
    partial: bool,
    evicted: Option<String>,
    cleanup: Vec<PathBuf>,
    incident_dir: Option<&PathBuf>,
    run_store: Option<&RunStore>,
    sampler: Option<SamplerConfig>,
) -> TenantOutcome {
    if evicted.is_some() {
        t.stats.set_evicted();
    }
    t.stats.set_connected(false);
    t.stats.set_rate(0);
    t.stats.set_queue_depth(0);
    let model = Arc::clone(&t.model);
    let events = t.events.len() as u64;
    let mut trace = Trace::new();
    for ev in t.events.drain(..) {
        trace.push(ev);
    }
    trace.set_functions(std::mem::take(&mut t.functions));
    trace.set_sampling(t.sampling);
    // Daemon-side production-overhead mode: re-sample full-fidelity
    // streams before the authoritative check. Streams that arrived
    // sampled keep their recorded schedule.
    let trace = match sampler {
        Some(config) if trace.sampling().is_none() => {
            let sampled = trace.sampled(config);
            t.stats.set_sample_rate(sampled.sample_rate());
            sampled
        }
        _ => trace,
    };
    // Tenant names are charset-validated (no separators), so they are
    // safe as directory names.
    let log = incident_dir.map(|d| IncidentLog::new(d.join(&tenant), tenant.clone()));
    let outcome = match trace.check_logged(&model, &model.settings, log) {
        Ok(out) => {
            t.stats.record_bugs(out.bugs.len() as u64);
            t.stats.add_incidents(out.bundle_paths.len() as u64);
            if let Some(store) = run_store {
                let src = RowSource {
                    workload: model.program.clone(),
                    version: 0,
                    run: tenant.clone(),
                    tenant: tenant.clone(),
                    kind: RowKind::Serve,
                    time: unix_time_now(),
                    sample_rate: trace.sample_rate(),
                };
                let rows = rows_from_samples(&src, &out.samples);
                if let Err(e) = store.append(&rows) {
                    // The verdict is authoritative; a failed append is
                    // a degraded observability plane, not a failed
                    // tenant.
                    heapmd_obs::error!("run-store append for tenant {tenant} failed: {e}");
                } else {
                    heapmd_obs::count!("serve_run_store_rows_total", rows.len() as u64);
                }
            }
            if let Some(b) = out.bugs.first() {
                t.stats
                    .set_last_anomaly(&format!("{} {}", b.metric, b.kind.slug()));
            }
            TenantOutcome {
                tenant,
                events,
                bugs: out.bugs,
                bundle_paths: out.bundle_paths,
                partial,
                evicted,
                error: None,
            }
        }
        Err(e) => TenantOutcome {
            tenant,
            events,
            bugs: Vec::new(),
            bundle_paths: Vec::new(),
            partial,
            evicted,
            error: Some(e.to_string()),
        },
    };
    for path in cleanup {
        let _ = std::fs::remove_file(path);
    }
    heapmd_obs::export::emit_event("tenant_verdict", |o| {
        o.field_str("tenant", &outcome.tenant)
            .field_u64("events", outcome.events)
            .field_u64("bugs", outcome.bugs.len() as u64)
            .field_bool("partial", outcome.partial);
    });
    outcome
}

/// Replayers a shard loop keeps warm for reuse; beyond this, finished
/// streams' replayers are dropped instead of pooled.
const REPLAYER_POOL_CAP: usize = 8;

fn shard_loop(
    rx: Receiver<ShardMsg>,
    incident_dir: Option<PathBuf>,
    run_store: Option<Arc<RunStore>>,
    sampler: Option<SamplerConfig>,
) -> Vec<TenantOutcome> {
    let mut tenants: BTreeMap<String, ShardTenant> = BTreeMap::new();
    let mut outcomes = Vec::new();
    // Recycled replayers: a finished stream's replayer goes back here
    // (graph slabs and shadow pages intact) and the next Start reuses
    // it instead of allocating cold.
    let mut replayer_pool: Vec<Replayer> = Vec::new();
    let recycle = |t: &mut ShardTenant, pool: &mut Vec<Replayer>| {
        if pool.len() < REPLAYER_POOL_CAP {
            let settings = t.model.settings.clone();
            let mut r = std::mem::replace(&mut t.replayer, Replayer::new(settings.clone(), &[]));
            r.reset(settings, &[]);
            pool.push(r);
        }
    };
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Start {
                tenant,
                stats,
                pending,
                model,
                resume,
            } => {
                // A v2 reconnect re-attaches to the accumulated state;
                // everything else (v1 reconnects included) starts a
                // fresh stream and drops the unfinished one.
                if resume && tenants.contains_key(&tenant) {
                    continue;
                }
                let replayer = match replayer_pool.pop() {
                    Some(mut r) => {
                        r.reset(model.settings.clone(), &[]);
                        heapmd_obs::count!("serve_replayer_pool_reuse_total");
                        r
                    }
                    None => Replayer::new(model.settings.clone(), &[]),
                };
                stats.set_verdicts(verdicts_for(&model));
                let state = ShardTenant {
                    stats,
                    pending,
                    events: Vec::new(),
                    functions: Vec::new(),
                    replayer,
                    sampling: None,
                    last_out: vec![false; model.stable.len() + model.candidate_stable.len()],
                    model,
                    window_start: Instant::now(),
                    window_events: 0,
                };
                tenants.insert(tenant, state);
            }
            ShardMsg::Events { tenant, events } => {
                let Some(t) = tenants.get_mut(&tenant) else {
                    continue;
                };
                let n = events.len() as u64;
                let clock = heapmd_obs::throughput::stage_clock();
                t.replayer.ingest_batch(&events);
                t.events.extend_from_slice(&events);
                if let Some(t0) = clock {
                    heapmd_obs::throughput::record_stage(
                        "serve_ingest",
                        n,
                        t0.elapsed().as_nanos() as u64,
                    );
                }
                t.pending.fetch_sub(n.min(t.pending.load(Relaxed)), Relaxed);
                t.stats.record_events(n);
                t.stats.set_queue_depth(t.pending.load(Relaxed));
                let samples = t.replayer.take_samples();
                if !samples.is_empty() {
                    let model = Arc::clone(&t.model);
                    update_live(t, &samples, &model);
                }
                t.window_events += n;
                let elapsed = t.window_start.elapsed();
                if elapsed >= RATE_WINDOW {
                    let rate = (t.window_events as u128 * 1_000_000_000 / elapsed.as_nanos().max(1))
                        as u64;
                    t.stats.set_rate(rate);
                    t.window_start = Instant::now();
                    t.window_events = 0;
                }
            }
            ShardMsg::Functions { tenant, names } => {
                if let Some(t) = tenants.get_mut(&tenant) {
                    t.functions = names;
                }
            }
            ShardMsg::Sampling { tenant, info } => {
                if let Some(t) = tenants.get_mut(&tenant) {
                    t.sampling = Some(info);
                    t.stats.set_sample_rate(info.rate());
                }
            }
            ShardMsg::End {
                tenant,
                index,
                cleanup,
            } => {
                let Some(mut t) = tenants.remove(&tenant) else {
                    continue;
                };
                recycle(&mut t, &mut replayer_pool);
                if t.events.len() as u64 != index.total_events {
                    let reason = format!(
                        "index declares {} events, stream carried {}",
                        index.total_events,
                        t.events.len()
                    );
                    outcomes.push(finalize(
                        t,
                        tenant,
                        true,
                        Some(reason),
                        cleanup,
                        incident_dir.as_ref(),
                        run_store.as_deref(),
                        sampler,
                    ));
                    continue;
                }
                outcomes.push(finalize(
                    t,
                    tenant,
                    false,
                    None,
                    cleanup,
                    incident_dir.as_ref(),
                    run_store.as_deref(),
                    sampler,
                ));
            }
            ShardMsg::Abort {
                tenant,
                reason,
                evict,
                cleanup,
            } => {
                let Some(mut t) = tenants.remove(&tenant) else {
                    continue;
                };
                recycle(&mut t, &mut replayer_pool);
                let evicted = evict.then_some(reason);
                outcomes.push(finalize(
                    t,
                    tenant,
                    true,
                    evicted,
                    cleanup,
                    incident_dir.as_ref(),
                    run_store.as_deref(),
                    sampler,
                ));
            }
        }
    }
    // Channel closed (shutdown drained the accept loop): finalize
    // whatever streams never sent an explicit end. Journals stay on
    // disk so a restarted daemon can pick the sessions back up.
    for (tenant, t) in tenants {
        outcomes.push(finalize(
            t,
            tenant,
            true,
            None,
            Vec::new(),
            incident_dir.as_ref(),
            run_store.as_deref(),
            sampler,
        ));
    }
    outcomes
}

// ---------------------------------------------------------------------
// Shared connection-handling context
// ---------------------------------------------------------------------

/// Everything a connection handler needs, bundled so the accept loop
/// clones one `Arc`. Dropped (with the shard senders inside) once the
/// accept loop joins its handlers, which closes the shard channels.
pub(crate) struct ServeCtx {
    pub(crate) senders: Vec<Sender<ShardMsg>>,
    pub(crate) fleet: Arc<FleetRegistry>,
    pub(crate) queue_events: u64,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) model: Arc<HeapModel>,
    pub(crate) model_dir: Option<PathBuf>,
    pub(crate) journal_dir: Option<PathBuf>,
    pub(crate) session_timeout: Duration,
    pub(crate) sessions: Mutex<BTreeMap<String, Arc<Mutex<session::SessionEntry>>>>,
    model_cache: Mutex<BTreeMap<String, Arc<HeapModel>>>,
}

impl ServeCtx {
    pub(crate) fn sender_for(&self, tenant: &str) -> &Sender<ShardMsg> {
        &self.senders[shard_for(tenant, self.senders.len())]
    }

    /// Resolves the model `tenant` checks against: `<model_dir>/
    /// <tenant>.hmdm` when present and loadable, else the shared model.
    /// Resolution is cached for the daemon's lifetime.
    pub(crate) fn model_for(&self, tenant: &str) -> Arc<HeapModel> {
        let Some(dir) = &self.model_dir else {
            return Arc::clone(&self.model);
        };
        if let Some(m) = self.model_cache.lock().unwrap().get(tenant) {
            return Arc::clone(m);
        }
        let path = dir.join(format!("{tenant}.hmdm"));
        let model = if path.exists() {
            match HeapModel::load(&path) {
                Ok(m) => Arc::new(m),
                Err(e) => {
                    // A present-but-unloadable override falls back to
                    // the shared model rather than rejecting the tenant.
                    heapmd_obs::export::emit_event("tenant_model_error", |o| {
                        o.field_str("tenant", tenant)
                            .field_str("error", &e.to_string());
                    });
                    Arc::clone(&self.model)
                }
            }
        } else {
            Arc::clone(&self.model)
        };
        self.model_cache
            .lock()
            .unwrap()
            .insert(tenant.to_string(), Arc::clone(&model));
        model
    }
}

// ---------------------------------------------------------------------
// Connection handling
// ---------------------------------------------------------------------

/// A parsed connection preamble line.
enum Preamble {
    V1 {
        tenant: String,
    },
    V2 {
        tenant: String,
        session: String,
        acked: u64,
    },
}

/// Reads and validates the preamble: `HMDSERVE1 <tenant>\n` or
/// `HMDSERVE2 <tenant> <session> <acked>\n`.
fn read_preamble(stream: &mut impl Read) -> Option<Preamble> {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    while line.len() < MAX_PREAMBLE {
        stream.read_exact(&mut byte).ok()?;
        if byte[0] == b'\n' {
            let text = std::str::from_utf8(&line).ok()?;
            if let Some(rest) = text.strip_prefix(SERVE_PREAMBLE_V2) {
                let mut parts = rest.strip_prefix(' ')?.split(' ');
                let tenant = parts.next()?;
                let session = parts.next()?;
                let acked = parts.next()?.parse::<u64>().ok()?;
                if parts.next().is_some()
                    || !valid_tenant(tenant)
                    || !session::valid_session(session)
                {
                    return None;
                }
                return Some(Preamble::V2 {
                    tenant: tenant.to_string(),
                    session: session.to_string(),
                    acked,
                });
            }
            let tenant = text.strip_prefix(SERVE_PREAMBLE)?.strip_prefix(' ')?;
            return valid_tenant(tenant).then(|| Preamble::V1 {
                tenant: tenant.to_string(),
            });
        }
        line.push(byte[0]);
    }
    None
}

/// Waits for the tenant's queue to drop under `bound`; `false` means
/// the queue made no progress at all for a whole grace window and the
/// tenant should be evicted as stalled. Only this connection's thread
/// increments `pending`, so any decrease observed here is shard
/// progress, which resets the grace clock — a busy-but-alive shard
/// backpressures the client indefinitely rather than evicting it.
fn wait_for_room(pending: &AtomicU64, bound: u64, shutdown: &AtomicBool) -> bool {
    let mut last = pending.load(Relaxed);
    if last < bound {
        return true;
    }
    let mut deadline = Instant::now() + BACKPRESSURE_GRACE;
    loop {
        if shutdown.load(Relaxed) {
            // Let the shutdown path finalize the tenant instead.
            return true;
        }
        std::thread::sleep(BACKPRESSURE_POLL);
        let now = pending.load(Relaxed);
        if now < bound {
            return true;
        }
        if now < last {
            last = now;
            deadline = Instant::now() + BACKPRESSURE_GRACE;
        } else if Instant::now() >= deadline {
            return false;
        }
    }
}

fn handle_conn(stream: AnyStream, ctx: Arc<ServeCtx>) {
    let _ = stream.set_read_timeout(READ_POLL);
    let mut stream = DrainingStream {
        inner: stream,
        shutdown: Arc::clone(&ctx.shutdown),
    };
    match read_preamble(&mut stream) {
        Some(Preamble::V1 { tenant }) => handle_v1(stream, tenant, &ctx),
        Some(Preamble::V2 {
            tenant,
            session,
            acked,
        }) => session::handle_v2(stream, tenant, session, acked, &ctx),
        None => {
            // EOF during shutdown is the daemon going away, not a
            // client speaking the wrong protocol.
            if !ctx.shutdown.load(Relaxed) {
                ctx.fleet.record_protocol_error();
            }
        }
    }
}

fn handle_v1(stream: DrainingStream, tenant: String, ctx: &ServeCtx) {
    let stats = ctx.fleet.connect(&tenant);
    let pending = Arc::new(AtomicU64::new(0));
    let tx = ctx.sender_for(&tenant);
    if tx
        .send(ShardMsg::Start {
            tenant: tenant.clone(),
            stats: Arc::clone(&stats),
            pending: Arc::clone(&pending),
            model: ctx.model_for(&tenant),
            resume: false,
        })
        .is_err()
    {
        return;
    }
    let mut reader = WireReader::new(stream);
    loop {
        match reader.next_frame() {
            Ok(WireFrame::Events(events)) => {
                if !wait_for_room(&pending, ctx.queue_events, &ctx.shutdown) {
                    ctx.fleet.evict(&stats);
                    let _ = tx.send(ShardMsg::Abort {
                        tenant,
                        reason: format!("slow consumer: over {} queued events", ctx.queue_events),
                        evict: true,
                        cleanup: Vec::new(),
                    });
                    return;
                }
                pending.fetch_add(events.len() as u64, Relaxed);
                stats.set_queue_depth(pending.load(Relaxed));
                if tx
                    .send(ShardMsg::Events {
                        tenant: tenant.clone(),
                        events,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Ok(WireFrame::Functions(names)) => {
                let _ = tx.send(ShardMsg::Functions {
                    tenant: tenant.clone(),
                    names,
                });
            }
            Ok(WireFrame::Meta(payload)) => {
                // Unrecognized meta payloads stay forward-compatible
                // no-ops; a sampling block re-labels the tenant.
                if let Ok(Some(info)) = crate::trace_codec::decode_sampling_meta(&payload) {
                    let _ = tx.send(ShardMsg::Sampling {
                        tenant: tenant.clone(),
                        info,
                    });
                }
            }
            Ok(WireFrame::End(index)) => {
                let _ = tx.send(ShardMsg::End {
                    tenant,
                    index,
                    cleanup: Vec::new(),
                });
                return;
            }
            Err(e) => {
                if ctx.shutdown.load(Relaxed) {
                    // The stream drained to EOF because the daemon is
                    // going down; everything that arrived still gets a
                    // (partial) verdict.
                    let _ = tx.send(ShardMsg::Abort {
                        tenant,
                        reason: "server shutdown".into(),
                        evict: false,
                        cleanup: Vec::new(),
                    });
                } else {
                    // Corrupt stream: evict, but salvage the buffered
                    // prefix into a partial verdict + incident bundles
                    // (the shard's Abort path finalizes either way).
                    ctx.fleet.evict(&stats);
                    let _ = tx.send(ShardMsg::Abort {
                        tenant,
                        reason: e.to_string(),
                        evict: true,
                        cleanup: Vec::new(),
                    });
                }
                return;
            }
        }
    }
}

fn accept_loop(listener: AnyListener, ctx: Arc<ServeCtx>) {
    let mut handles = Vec::new();
    let mut last_sweep = Instant::now();
    while !ctx.shutdown.load(Relaxed) {
        if last_sweep.elapsed() >= SWEEP_PERIOD {
            session::sweep_expired(&ctx);
            last_sweep = Instant::now();
        }
        match listener.accept() {
            Ok(stream) => {
                let _ = stream.set_blocking();
                heapmd_obs::count!("heapmd_serve_connections_total");
                let ctx = Arc::clone(&ctx);
                handles.push(std::thread::spawn(move || handle_conn(stream, ctx)));
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
    // Handlers notice the flag within one read-timeout tick, drain what
    // the kernel buffered, and hand their tenants to the shards.
    for h in handles {
        let _ = h.join();
    }
    // Dropping `ctx` (the handlers' clones died with them) drops the
    // shard senders, which closes the channels, which drain and
    // finalize.
}

// ---------------------------------------------------------------------
// HTTP control endpoint
// ---------------------------------------------------------------------

fn handle_http(stream: &mut TcpStream, fleet: &FleetRegistry, shutdown: &AtomicBool) {
    let mut buf = [0u8; 2048];
    let mut n = 0;
    loop {
        match stream.read(&mut buf[n..]) {
            Ok(0) => break,
            Ok(k) => {
                n += k;
                if n == buf.len() || buf[..n].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request.split_whitespace().nth(1).unwrap_or("");
    let (status, ctype, body) = match path {
        "/metrics" => (200, "text/plain; version=0.0.4", {
            let mut text = heapmd_obs::export::prometheus_text();
            text.push_str(&fleet.prometheus_text());
            text
        }),
        "/fleet.tsv" => (200, "text/tab-separated-values", fleet.tsv()),
        "/fleet.jsonl" => (200, "application/x-ndjson", fleet.firehose_jsonl()),
        "/healthz" => (200, "text/plain", "ok\n".to_string()),
        "/shutdown" => {
            shutdown.store(true, Relaxed);
            (200, "text/plain", "shutting down\n".to_string())
        }
        _ => (404, "text/plain", "not found\n".to_string()),
    };
    let reason = if status == 200 { "OK" } else { "Not Found" };
    let _ = write!(
        stream,
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn http_loop(listener: TcpListener, fleet: Arc<FleetRegistry>, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Relaxed) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(Duration::from_millis(1000)));
                handle_http(&mut stream, &fleet, &shutdown);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

// ---------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------

/// A running fleet daemon. Construct with [`Server::start`]; block on
/// [`Server::wait`]; stop via [`Server::shutdown`] or the HTTP
/// `/shutdown` endpoint.
pub struct Server {
    ingest_addr: String,
    http_addr: String,
    fleet: Arc<FleetRegistry>,
    shutdown: Arc<AtomicBool>,
    accept: JoinHandle<()>,
    http: JoinHandle<()>,
    shards: Vec<JoinHandle<Vec<TenantOutcome>>>,
    prom_dump: Option<PathBuf>,
}

impl Server {
    /// Binds the ingest socket (`host:port` or `unix:<path>`) and the
    /// HTTP control socket (`host:port`; port 0 picks a free one),
    /// replays any session journals left by a previous daemon, and
    /// spawns the accept, HTTP, and shard worker threads.
    ///
    /// # Errors
    ///
    /// [`HeapMdError::Io`] when either socket cannot be bound.
    pub fn start(config: ServeConfig, listen: &str, http: &str) -> Result<Server, HeapMdError> {
        heapmd_obs::export::mark_process_start();
        let (ingest, ingest_addr) = AnyListener::bind(listen)?;
        let http_listener = TcpListener::bind(http)?;
        let http_addr = http_listener.local_addr()?.to_string();
        http_listener.set_nonblocking(true)?;

        let fleet = Arc::new(FleetRegistry::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let model = Arc::new(config.model);

        // One store shared by every shard: appends are segment-atomic
        // and serialized behind the store's own lock.
        let run_store = match &config.run_store {
            Some(dir) => Some(Arc::new(RunStore::open(dir).map_err(|e| match e {
                heapmd_runstore::StoreError::Io(io) => HeapMdError::from(io),
                other => HeapMdError::InvalidInput(other.to_string()),
            })?)),
            None => None,
        };
        let shard_count = config.shards.max(1);
        let mut senders = Vec::with_capacity(shard_count);
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let (tx, rx) = channel();
            senders.push(tx);
            let incident_dir = config.incident_dir.clone();
            let run_store = run_store.clone();
            let sampler = config.sampler;
            shards.push(
                std::thread::Builder::new()
                    .name(format!("hmd-shard-{i}"))
                    .spawn(move || shard_loop(rx, incident_dir, run_store, sampler))?,
            );
        }
        let ctx = Arc::new(ServeCtx {
            senders,
            fleet: Arc::clone(&fleet),
            queue_events: config.queue_events.max(1),
            shutdown: Arc::clone(&shutdown),
            model,
            model_dir: config.model_dir,
            journal_dir: config.journal_dir,
            session_timeout: config.session_timeout,
            sessions: Mutex::new(BTreeMap::new()),
            model_cache: Mutex::new(BTreeMap::new()),
        });
        // Crash-only recovery: replay whatever journals the previous
        // daemon left before accepting new connections, so resuming
        // clients find their sessions already rebuilt.
        session::recover_sessions(&ctx);
        let accept = std::thread::Builder::new()
            .name("hmd-accept".into())
            .spawn(move || accept_loop(ingest, ctx))?;
        let http = {
            let fleet = Arc::clone(&fleet);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("hmd-http".into())
                .spawn(move || http_loop(http_listener, fleet, shutdown))?
        };
        Ok(Server {
            ingest_addr,
            http_addr,
            fleet,
            shutdown,
            accept,
            http,
            shards,
            prom_dump: config.prom_dump,
        })
    }

    /// The resolved ingest address (`host:port`, or the `unix:<path>`
    /// spec as given).
    pub fn ingest_addr(&self) -> &str {
        &self.ingest_addr
    }

    /// The resolved HTTP control address.
    pub fn http_addr(&self) -> &str {
        &self.http_addr
    }

    /// The daemon's tenant registry (live rollups).
    pub fn fleet(&self) -> Arc<FleetRegistry> {
        Arc::clone(&self.fleet)
    }

    /// Requests graceful shutdown: stop accepting, close in-flight
    /// streams, finalize buffered prefixes, flush incidents, write the
    /// final dump. Session journals are left on disk for the next
    /// daemon. Returns immediately; [`Server::wait`] observes it.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Relaxed);
    }

    /// Blocks until shutdown (via [`Server::shutdown`] or HTTP
    /// `/shutdown`), then drains every shard and returns the summary.
    pub fn wait(self) -> ServeSummary {
        let _ = self.accept.join();
        let mut summary = ServeSummary::default();
        for shard in self.shards {
            if let Ok(outcomes) = shard.join() {
                for o in outcomes {
                    summary.tenants.insert(o.tenant.clone(), o);
                }
            }
        }
        let _ = self.http.join();
        if let Some(path) = &self.prom_dump {
            let mut text = heapmd_obs::export::prometheus_text();
            text.push_str(&self.fleet.prometheus_text());
            if let Err(e) = std::fs::write(path, text) {
                summary.prom_dump_error = Some(format!("{}: {e}", path.display()));
            }
        }
        summary
    }
}

// ---------------------------------------------------------------------
// Clients (v1 fire-and-forget; resumable clients live in [`client`])
// ---------------------------------------------------------------------

pub(crate) fn connect_any(addr: &str) -> Result<AnyStream, HeapMdError> {
    if let Some(path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        return Ok(AnyStream::Unix(UnixStream::connect(path)?));
        #[cfg(not(unix))]
        return Err(HeapMdError::InvalidInput(format!(
            "unix socket address {path:?} unsupported on this platform"
        )));
    }
    Ok(AnyStream::Tcp(TcpStream::connect(addr)?))
}

/// Connects to a daemon and sends the preamble, returning a sink
/// suitable for [`crate::Process::stream_trace_to_format`] with
/// [`crate::StreamFormat::Binary`] — live processes stream their trace
/// to the fleet exactly as they would to a file.
///
/// # Errors
///
/// [`HeapMdError::InvalidInput`] for a bad tenant name,
/// [`HeapMdError::Io`] on connect/write failure.
pub fn connect_stream(addr: &str, tenant: &str) -> Result<Box<dyn Write>, HeapMdError> {
    if !valid_tenant(tenant) {
        return Err(HeapMdError::InvalidInput(format!(
            "invalid tenant name {tenant:?} (want 1-64 chars of [A-Za-z0-9._:-])"
        )));
    }
    let mut stream = connect_any(addr)?;
    stream.write_all(format!("{SERVE_PREAMBLE} {tenant}\n").as_bytes())?;
    Ok(Box::new(stream))
}

/// Pushes a recorded trace to a daemon as `tenant`, re-encoding it as a
/// binary stream. Returns the number of events sent.
///
/// # Errors
///
/// Same as [`connect_stream`], plus encode/transport failures.
pub fn push_trace(addr: &str, tenant: &str, trace: &Trace) -> Result<u64, HeapMdError> {
    let sink = connect_stream(addr, tenant)?;
    let mut writer = BinaryTraceWriter::new(io::BufWriter::new(sink))?;
    // Announce the recording's sampling schedule before any event so
    // the daemon's live gauges widen from the first sample on.
    if let Some(info) = trace.sampling() {
        writer.write_meta(&crate::trace_codec::encode_sampling_meta(&info))?;
    }
    for ev in trace.events() {
        writer.write_event(ev)?;
    }
    writer.write_functions(trace.functions())?;
    let mut inner = writer.finish()?;
    inner.flush()?;
    Ok(trace.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_names_are_charset_checked() {
        assert!(valid_tenant("api-eu.web_1:prod"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant("has space"));
        assert!(!valid_tenant("path/../escape"));
        assert!(!valid_tenant(&"x".repeat(65)));
        assert!(valid_tenant(&"x".repeat(64)));
    }

    #[test]
    fn shard_assignment_is_stable_and_in_range() {
        for shards in [1usize, 2, 4, 7] {
            for name in ["a", "tenant-42", "web.eu:1"] {
                let s = shard_for(name, shards);
                assert!(s < shards);
                assert_eq!(s, shard_for(name, shards), "deterministic");
            }
        }
    }

    #[test]
    fn preamble_parses_both_versions() {
        let mut v1 = io::Cursor::new(b"HMDSERVE1 web-1\n".to_vec());
        assert!(matches!(
            read_preamble(&mut v1),
            Some(Preamble::V1 { tenant }) if tenant == "web-1"
        ));
        let mut v2 = io::Cursor::new(b"HMDSERVE2 web-1 s-42 7\n".to_vec());
        match read_preamble(&mut v2) {
            Some(Preamble::V2 {
                tenant,
                session,
                acked,
            }) => {
                assert_eq!(tenant, "web-1");
                assert_eq!(session, "s-42");
                assert_eq!(acked, 7);
            }
            other => panic!("wanted V2, got {}", other.is_some()),
        }
        for bad in [
            &b"HMDSERVE2 web-1 s-42\n"[..],
            b"HMDSERVE2 web-1 s-42 x\n",
            b"HMDSERVE2 web-1 bad session 7\n",
            b"HMDSERVE3 web-1\n",
        ] {
            assert!(
                read_preamble(&mut io::Cursor::new(bad.to_vec())).is_none(),
                "{:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }
}
