//! The resumable (v2) session layer of the fleet daemon.
//!
//! # Protocol
//!
//! A v2 connection opens with `HMDSERVE2 <tenant> <session> <acked>\n`:
//! the tenant name, a client-chosen session id (1–32 chars, same
//! charset as tenant names), and the highest block count the client has
//! seen acknowledged (informational — the daemon's journal is
//! authoritative). After the preamble, the client sends the `.hmdt`
//! block stream *without* its 8-byte file header, each block prefixed
//! with a little-endian `u64` sequence number starting at 0. The index
//! block travels together with the 20-byte footer as one frame.
//!
//! The daemon answers on the same socket with fixed 13-byte ack frames
//! (`HMAK` + acked:u64le + flags:u8): one hello ack immediately after
//! the preamble telling the client where to resume (`acked` = the next
//! expected sequence number), one progress ack after each journaled
//! block, and a final ack (flags bit 0) once the end-of-stream frame is
//! accepted. **An ack means the block is journaled** (or, without a
//! journal directory, handed to the checking shard) — the client may
//! drop it from its spill buffer.
//!
//! # Failure semantics
//!
//! - A connection error, a torn frame, or a silently-desynced stream
//!   (a chaos fault truncating bytes mid-frame surfaces as a CRC or
//!   framing error) closes the connection but **keeps the session**:
//!   the client reconnects and resumes from the first unacked block, so
//!   any fault schedule that eventually heals converges to the same
//!   bytes — and therefore the same verdict — as an uninterrupted
//!   stream.
//! - A duplicate block (retransmitted because its ack was lost) is
//!   read, discarded, and re-acked; a sequence gap closes the
//!   connection (the session stays resumable).
//! - A session that stays disconnected past
//!   [`super::ServeConfig::session_timeout`] is evicted, salvaging the
//!   buffered prefix into a partial verdict like any other eviction.
//!
//! # Crash-only recovery
//!
//! With [`super::ServeConfig::journal_dir`] set, every accepted block
//! is appended to `<tenant>.hmdt` — a header-complete, salvageable
//! binary trace — next to a tiny atomic `<tenant>.session.json`
//! ([`write_atomic`], the checkpoint idiom) recording the session id.
//! A restarted daemon replays each journal through the normal shard
//! path (truncating any torn tail a crash left), registers the session
//! at the recovered sequence number, and lets the client resume as if
//! the daemon had never died. Journals survive graceful shutdown too:
//! there is no special shutdown state, recovery *is* the startup path.

use super::{wait_for_room, DrainingStream, ServeCtx, ShardMsg};
use crate::error::HeapMdError;
use crate::persist::write_atomic;
use crate::trace_codec::{WireFrame, WireReader, BINARY_FORMAT_VERSION, BINARY_MAGIC, HEADER_LEN};
use heapmd_obs::fleet::TenantStats;
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// First token of the resumable-session preamble line.
pub const SERVE_PREAMBLE_V2: &str = "HMDSERVE2";

/// Magic prefix of an ack frame.
pub(crate) const ACK_MAGIC: [u8; 4] = *b"HMAK";
/// Size of an ack frame: magic + acked sequence + flags.
pub(crate) const ACK_LEN: usize = 13;
/// Ack flag bit: the stream's end frame was accepted and the verdict
/// is closing; the client is done.
pub(crate) const ACK_FINAL: u8 = 1;

/// Current session metadata format version; future-versioned files are
/// ignored on recovery.
pub(crate) const SESSION_META_VERSION: u32 = 1;

/// Whether `id` is a valid session id: 1–32 bytes of `[A-Za-z0-9._:-]`.
pub fn valid_session(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= 32
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b':' | b'-'))
}

/// Encodes one ack frame.
pub(crate) fn encode_ack(acked: u64, flags: u8) -> [u8; ACK_LEN] {
    let mut buf = [0u8; ACK_LEN];
    buf[..4].copy_from_slice(&ACK_MAGIC);
    buf[4..12].copy_from_slice(&acked.to_le_bytes());
    buf[12] = flags;
    buf
}

/// Decodes one ack frame; `None` on a bad magic.
pub(crate) fn decode_ack(buf: &[u8]) -> Option<(u64, u8)> {
    if buf.len() != ACK_LEN || buf[..4] != ACK_MAGIC {
        return None;
    }
    let acked = u64::from_le_bytes(buf[4..12].try_into().ok()?);
    Some((acked, buf[12]))
}

fn send_ack(w: &mut impl Write, acked: u64, flags: u8) -> io::Result<()> {
    w.write_all(&encode_ack(acked, flags))?;
    w.flush()
}

/// On-disk session metadata, written atomically next to the journal.
/// The journal itself is authoritative for sequence/offset state (it
/// is replayed on recovery); the metadata pins the session id and the
/// completed flag.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct SessionMeta {
    /// Format version (see [`SESSION_META_VERSION`]).
    #[serde(default)]
    pub version: u32,
    /// Tenant the journal belongs to.
    pub tenant: String,
    /// Client-chosen session id.
    pub session: String,
    /// The end-of-stream frame was accepted; the journal (if still
    /// present) replays to a complete verdict and reconnecting clients
    /// get a final ack.
    pub completed: bool,
}

impl SessionMeta {
    fn validate(&self) -> Result<(), HeapMdError> {
        if self.version > SESSION_META_VERSION {
            return Err(HeapMdError::Checkpoint(format!(
                "session meta version {} is newer than supported {}",
                self.version, SESSION_META_VERSION
            )));
        }
        if !super::valid_tenant(&self.tenant) || !valid_session(&self.session) {
            return Err(HeapMdError::Checkpoint(
                "session meta carries invalid tenant or session id".into(),
            ));
        }
        Ok(())
    }
}

/// In-memory state of one tenant's v2 session, shared between the
/// active connection handler (at most one) and the expiry sweeper.
pub(crate) struct SessionEntry {
    /// Client-chosen session id; a different id supersedes the session.
    pub session: String,
    /// Next expected wire sequence number (== blocks accepted so far).
    pub next_seq: u64,
    /// Logical `.hmdt` stream offset of the next block (the file
    /// header counts, so offsets embedded in the trailing index keep
    /// validating across resumes).
    pub offset: u64,
    /// A connection handler currently owns this session.
    pub connected: bool,
    /// End-of-stream accepted; the entry is a tombstone that replays
    /// final acks.
    pub completed: bool,
    /// Last connect/disconnect/accept activity, for expiry.
    pub last_seen: Instant,
    pub stats: Arc<TenantStats>,
    pub pending: Arc<AtomicU64>,
}

/// Both journal paths for `tenant`, if journaling is configured.
fn journal_cleanup(ctx: &ServeCtx, tenant: &str) -> Vec<PathBuf> {
    match &ctx.journal_dir {
        Some(dir) => vec![
            dir.join(format!("{tenant}.hmdt")),
            dir.join(format!("{tenant}.session.json")),
        ],
        None => Vec::new(),
    }
}

fn write_meta(ctx: &ServeCtx, tenant: &str, session: &str, completed: bool) {
    let Some(dir) = &ctx.journal_dir else { return };
    let meta = SessionMeta {
        version: SESSION_META_VERSION,
        tenant: tenant.to_string(),
        session: session.to_string(),
        completed,
    };
    if let Ok(text) = serde_json::to_string(&meta) {
        let _ = write_atomic(dir.join(format!("{tenant}.session.json")), text.as_bytes());
    }
}

/// Append-only handle on a tenant's block journal. The file is a valid
/// (salvageable) `.hmdt`: the 8-byte header followed by raw blocks.
struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Opens the journal for appending. `fresh` truncates any previous
    /// incarnation; either way the file starts with the binary header.
    fn open(dir: &Path, tenant: &str, fresh: bool) -> io::Result<Journal> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{tenant}.hmdt"));
        let mut opts = std::fs::OpenOptions::new();
        opts.write(true).create(true);
        if fresh {
            opts.truncate(true);
        } else {
            opts.append(true);
        }
        let mut file = opts.open(path)?;
        if file.metadata()?.len() == 0 {
            let mut header = [0u8; HEADER_LEN];
            header[..6].copy_from_slice(BINARY_MAGIC);
            header[6] = BINARY_FORMAT_VERSION;
            file.write_all(&header)?;
        }
        Ok(Journal { file })
    }

    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.file.flush()
    }
}

enum Attach {
    /// Session attached; `resumed` when it carries prior state.
    Attached {
        entry: Arc<Mutex<SessionEntry>>,
        resumed: bool,
    },
    /// The stream already completed; replay the final ack.
    Final(u64),
    /// Another connection owns this session right now.
    Busy,
}

fn attach_session(ctx: &ServeCtx, tenant: &str, session: &str) -> Attach {
    let mut map = ctx.sessions.lock().unwrap();
    if let Some(arc) = map.get(tenant).cloned() {
        let mut e = arc.lock().unwrap();
        if e.session == session {
            if e.connected {
                return Attach::Busy;
            }
            if e.completed {
                e.last_seen = Instant::now();
                return Attach::Final(e.next_seq);
            }
            e.connected = true;
            e.last_seen = Instant::now();
            e.stats.set_connected(true);
            e.stats.record_resume();
            ctx.fleet.record_reconnect();
            drop(e);
            return Attach::Attached {
                entry: arc,
                resumed: true,
            };
        }
        // A different session id supersedes the old incarnation: its
        // buffered prefix is salvaged (not evicted) and its journal
        // removed synchronously, before the fresh journal is created
        // under the same path.
        drop(e);
        map.remove(tenant);
        let _ = ctx.sender_for(tenant).send(ShardMsg::Abort {
            tenant: tenant.to_string(),
            reason: format!("superseded by session {session}"),
            evict: false,
            cleanup: Vec::new(),
        });
        for path in journal_cleanup(ctx, tenant) {
            let _ = std::fs::remove_file(path);
        }
    }
    let stats = ctx.fleet.connect(tenant);
    let pending = Arc::new(AtomicU64::new(0));
    let entry = Arc::new(Mutex::new(SessionEntry {
        session: session.to_string(),
        next_seq: 0,
        offset: HEADER_LEN as u64,
        connected: true,
        completed: false,
        last_seen: Instant::now(),
        stats,
        pending,
    }));
    map.insert(tenant.to_string(), Arc::clone(&entry));
    Attach::Attached {
        entry,
        resumed: false,
    }
}

/// Marks the session disconnected (resumable until the sweeper expires
/// it) after a connection loss or torn frame.
fn detach(entry: &Arc<Mutex<SessionEntry>>) {
    let mut e = entry.lock().unwrap();
    e.connected = false;
    e.last_seen = Instant::now();
    e.stats.set_connected(false);
    e.stats.set_rate(0);
}

/// Removes the session and salvage-evicts its shard state.
fn evict_session(ctx: &ServeCtx, tenant: &str, entry: &Arc<Mutex<SessionEntry>>, reason: String) {
    ctx.sessions.lock().unwrap().remove(tenant);
    {
        let e = entry.lock().unwrap();
        ctx.fleet.evict(&e.stats);
    }
    let _ = ctx.sender_for(tenant).send(ShardMsg::Abort {
        tenant: tenant.to_string(),
        reason,
        evict: true,
        cleanup: journal_cleanup(ctx, tenant),
    });
}

/// Drives one v2 connection: attach, hello ack, then the
/// seq-prefixed block loop with journaling and per-block acks.
pub(crate) fn handle_v2(
    mut stream: DrainingStream,
    tenant: String,
    session: String,
    _client_acked: u64,
    ctx: &ServeCtx,
) {
    let (entry, resumed) = match attach_session(ctx, &tenant, &session) {
        Attach::Busy => {
            ctx.fleet.record_protocol_error();
            return;
        }
        Attach::Final(next_seq) => {
            let _ = send_ack(&mut stream, next_seq, ACK_FINAL);
            return;
        }
        Attach::Attached { entry, resumed } => (entry, resumed),
    };

    let mut journal = match &ctx.journal_dir {
        Some(dir) => match Journal::open(dir, &tenant, !resumed) {
            Ok(j) => {
                if !resumed {
                    write_meta(ctx, &tenant, &session, false);
                }
                Some(j)
            }
            Err(_) => {
                // Can't make acks durable: refuse the session rather
                // than promise resumability the journal can't back.
                evict_session(ctx, &tenant, &entry, "journal unavailable".into());
                return;
            }
        },
        None => None,
    };

    let (stats, pending, next_seq, offset) = {
        let e = entry.lock().unwrap();
        (
            Arc::clone(&e.stats),
            Arc::clone(&e.pending),
            e.next_seq,
            e.offset,
        )
    };
    let tx = ctx.sender_for(&tenant);
    if tx
        .send(ShardMsg::Start {
            tenant: tenant.clone(),
            stats: Arc::clone(&stats),
            pending: Arc::clone(&pending),
            model: ctx.model_for(&tenant),
            resume: resumed,
        })
        .is_err()
    {
        detach(&entry);
        return;
    }
    // Hello ack: where to resume from.
    if send_ack(&mut stream, next_seq, 0).is_err() {
        detach(&entry);
        return;
    }

    let mut reader = WireReader::resume(stream, offset);
    loop {
        let mut seq_buf = [0u8; 8];
        if reader.stream_mut().read_exact(&mut seq_buf).is_err() {
            // Connection gone (or shutdown drained to EOF): the session
            // stays resumable; the journal already holds every acked
            // block.
            detach(&entry);
            return;
        }
        let seq = u64::from_le_bytes(seq_buf);
        let expected = entry.lock().unwrap().next_seq;
        if seq < expected {
            // Retransmitted duplicate (its ack was lost): consume the
            // frame, discard it, rewind the logical offset, re-ack.
            let before = reader.bytes_consumed();
            if reader.next_frame_raw().is_err() {
                detach(&entry);
                return;
            }
            reader.rewind(before);
            if send_ack(reader.stream_mut(), expected, 0).is_err() {
                detach(&entry);
                return;
            }
            continue;
        }
        if seq > expected {
            // The client is ahead of the journal — some earlier frame
            // never arrived. Drop the connection; the hello ack on
            // reconnect resynchronizes.
            detach(&entry);
            return;
        }
        let (frame, raw) = match reader.next_frame_raw() {
            Ok(fr) => fr,
            Err(_) => {
                // Torn or damaged frame (a mid-block cut, a flipped
                // bit, a silent truncation surfacing as a framing
                // error): nothing past the last ack was journaled, so
                // resuming re-sends the damaged block intact.
                detach(&entry);
                return;
            }
        };
        if let Some(j) = &mut journal {
            if j.append(&raw).is_err() {
                // An unjournalable block must not be acked.
                detach(&entry);
                return;
            }
        }
        match frame {
            WireFrame::Events(events) => {
                if !wait_for_room(&pending, ctx.queue_events, &ctx.shutdown) {
                    evict_session(
                        ctx,
                        &tenant,
                        &entry,
                        format!("slow consumer: over {} queued events", ctx.queue_events),
                    );
                    return;
                }
                pending.fetch_add(events.len() as u64, Relaxed);
                stats.set_queue_depth(pending.load(Relaxed));
                if tx
                    .send(ShardMsg::Events {
                        tenant: tenant.clone(),
                        events,
                    })
                    .is_err()
                {
                    detach(&entry);
                    return;
                }
            }
            WireFrame::Functions(names) => {
                if tx
                    .send(ShardMsg::Functions {
                        tenant: tenant.clone(),
                        names,
                    })
                    .is_err()
                {
                    detach(&entry);
                    return;
                }
            }
            WireFrame::Meta(payload) => {
                if let Ok(Some(info)) = crate::trace_codec::decode_sampling_meta(&payload) {
                    if tx
                        .send(ShardMsg::Sampling {
                            tenant: tenant.clone(),
                            info,
                        })
                        .is_err()
                    {
                        detach(&entry);
                        return;
                    }
                }
            }
            WireFrame::End(index) => {
                let final_seq = {
                    let mut e = entry.lock().unwrap();
                    e.next_seq += 1;
                    e.offset = reader.bytes_consumed();
                    e.completed = true;
                    e.connected = false;
                    e.last_seen = Instant::now();
                    e.next_seq
                };
                // Tombstone the metadata before the shard deletes the
                // journal: a crash in between leaves either a replayable
                // journal or a final-ack tombstone, never a lost stream.
                write_meta(ctx, &tenant, &session, true);
                let _ = tx.send(ShardMsg::End {
                    tenant: tenant.clone(),
                    index,
                    cleanup: journal_cleanup(ctx, &tenant),
                });
                let _ = send_ack(reader.stream_mut(), final_seq, ACK_FINAL);
                return;
            }
        }
        let acked = {
            let mut e = entry.lock().unwrap();
            e.next_seq += 1;
            e.offset = reader.bytes_consumed();
            e.last_seen = Instant::now();
            e.next_seq
        };
        if send_ack(reader.stream_mut(), acked, 0).is_err() {
            detach(&entry);
            return;
        }
    }
}

/// Evicts sessions that stayed disconnected past the configured
/// timeout, salvaging their buffered prefix into a partial verdict.
/// Called periodically from the accept loop.
pub(crate) fn sweep_expired(ctx: &ServeCtx) {
    let timeout = ctx.session_timeout;
    let candidates: Vec<String> = {
        let map = ctx.sessions.lock().unwrap();
        map.iter()
            .filter(|(_, arc)| {
                let e = arc.lock().unwrap();
                !e.connected && !e.completed && e.last_seen.elapsed() > timeout
            })
            .map(|(tenant, _)| tenant.clone())
            .collect()
    };
    for tenant in candidates {
        // Re-check under the lock: the client may have reconnected
        // between the scan and now.
        let stats = {
            let mut map = ctx.sessions.lock().unwrap();
            let Some(arc) = map.get(&tenant) else {
                continue;
            };
            let e = arc.lock().unwrap();
            if e.connected || e.completed || e.last_seen.elapsed() <= timeout {
                continue;
            }
            let stats = Arc::clone(&e.stats);
            drop(e);
            map.remove(&tenant);
            stats
        };
        ctx.fleet.evict(&stats);
        let _ = ctx.sender_for(&tenant).send(ShardMsg::Abort {
            tenant: tenant.clone(),
            reason: format!(
                "session expired after {}ms disconnected",
                timeout.as_millis()
            ),
            evict: true,
            cleanup: journal_cleanup(ctx, &tenant),
        });
    }
}

/// Replays every journal the previous daemon left: rebuilds shard
/// state through the normal message path, truncates torn tails, and
/// registers each session so its client can resume. Runs before the
/// accept loop starts.
pub(crate) fn recover_sessions(ctx: &ServeCtx) {
    let Some(dir) = ctx.journal_dir.clone() else {
        return;
    };
    let _ = std::fs::create_dir_all(&dir);
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return;
    };
    for de in entries.flatten() {
        let name = de.file_name().to_string_lossy().into_owned();
        let Some(tenant) = name.strip_suffix(".session.json") else {
            continue;
        };
        if !super::valid_tenant(tenant) {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(de.path()) else {
            continue;
        };
        let Ok(meta) = serde_json::from_str::<SessionMeta>(&text) else {
            continue;
        };
        if meta.validate().is_err() || meta.tenant != tenant {
            continue;
        }
        recover_one(ctx, tenant, meta, &dir);
    }
}

#[allow(clippy::too_many_arguments)]
fn register_entry(
    ctx: &ServeCtx,
    tenant: &str,
    session: String,
    next_seq: u64,
    offset: u64,
    completed: bool,
    stats: Arc<TenantStats>,
    pending: Arc<AtomicU64>,
) {
    let entry = Arc::new(Mutex::new(SessionEntry {
        session,
        next_seq,
        offset,
        connected: false,
        completed,
        last_seen: Instant::now(),
        stats,
        pending,
    }));
    ctx.sessions
        .lock()
        .unwrap()
        .insert(tenant.to_string(), entry);
}

fn recover_one(ctx: &ServeCtx, tenant: &str, meta: SessionMeta, dir: &Path) {
    let jpath = dir.join(format!("{tenant}.hmdt"));
    let mpath = dir.join(format!("{tenant}.session.json"));
    let bytes = std::fs::read(&jpath).unwrap_or_default();
    if bytes.len() < HEADER_LEN {
        if meta.completed {
            // The journal was already cleaned up but the tombstone
            // survived: keep replaying final acks to the client.
            let stats = ctx.fleet.tenant(tenant);
            let pending = Arc::new(AtomicU64::new(0));
            register_entry(
                ctx,
                tenant,
                meta.session,
                0,
                HEADER_LEN as u64,
                true,
                stats,
                pending,
            );
        } else {
            let _ = std::fs::remove_file(&mpath);
            let _ = std::fs::remove_file(&jpath);
        }
        return;
    }
    let stats = ctx.fleet.tenant(tenant);
    let pending = Arc::new(AtomicU64::new(0));
    let tx = ctx.sender_for(tenant);
    if tx
        .send(ShardMsg::Start {
            tenant: tenant.to_string(),
            stats: Arc::clone(&stats),
            pending: Arc::clone(&pending),
            model: ctx.model_for(tenant),
            resume: false,
        })
        .is_err()
    {
        return;
    }
    heapmd_obs::export::emit_event("session_recovered", |o| {
        o.field_str("tenant", tenant)
            .field_u64("journal_bytes", bytes.len() as u64);
    });
    let mut reader = WireReader::new(io::Cursor::new(&bytes[..]));
    let mut good = HEADER_LEN as u64;
    let mut frames = 0u64;
    loop {
        match reader.next_frame() {
            Ok(WireFrame::Events(events)) => {
                // No pending increment: recovery feeds the shard ahead
                // of any live connection, and the shard's saturating
                // decrement tolerates the imbalance.
                let _ = tx.send(ShardMsg::Events {
                    tenant: tenant.to_string(),
                    events,
                });
            }
            Ok(WireFrame::Functions(names)) => {
                let _ = tx.send(ShardMsg::Functions {
                    tenant: tenant.to_string(),
                    names,
                });
            }
            Ok(WireFrame::Meta(payload)) => {
                if let Ok(Some(info)) = crate::trace_codec::decode_sampling_meta(&payload) {
                    let _ = tx.send(ShardMsg::Sampling {
                        tenant: tenant.to_string(),
                        info,
                    });
                }
            }
            Ok(WireFrame::End(index)) => {
                // The whole stream made it to the journal before the
                // crash: finalize now and tombstone the session.
                frames += 1;
                let _ = tx.send(ShardMsg::End {
                    tenant: tenant.to_string(),
                    index,
                    cleanup: vec![jpath, mpath],
                });
                register_entry(
                    ctx,
                    tenant,
                    meta.session,
                    frames,
                    reader.bytes_consumed(),
                    true,
                    stats,
                    pending,
                );
                return;
            }
            Err(_) => break,
        }
        frames += 1;
        good = reader.bytes_consumed();
    }
    // A crash mid-append left a torn tail: truncate back to the last
    // whole block (everything acked is before it) and resume there.
    if (good as usize) < bytes.len() {
        if let Ok(f) = std::fs::OpenOptions::new().write(true).open(&jpath) {
            let _ = f.set_len(good);
        }
    }
    register_entry(
        ctx,
        tenant,
        meta.session,
        frames,
        good,
        false,
        stats,
        pending,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_ids_are_charset_checked() {
        assert!(valid_session("s-1.retry:2"));
        assert!(!valid_session(""));
        assert!(!valid_session("has space"));
        assert!(!valid_session(&"x".repeat(33)));
        assert!(valid_session(&"x".repeat(32)));
    }

    #[test]
    fn ack_frames_round_trip() {
        let buf = encode_ack(42, ACK_FINAL);
        assert_eq!(decode_ack(&buf), Some((42, ACK_FINAL)));
        assert_eq!(decode_ack(&buf[..12]), None, "short frame");
        let mut bad = buf;
        bad[0] = b'X';
        assert_eq!(decode_ack(&bad), None, "bad magic");
    }

    #[test]
    fn meta_rejects_future_versions_and_bad_names() {
        let ok = SessionMeta {
            version: SESSION_META_VERSION,
            tenant: "web-1".into(),
            session: "s1".into(),
            completed: false,
        };
        assert!(ok.validate().is_ok());
        let mut future = ok.clone();
        future.version = SESSION_META_VERSION + 1;
        assert!(future.validate().is_err());
        let mut bad = ok;
        bad.tenant = "no/slashes".into();
        assert!(bad.validate().is_err());
    }
}
