//! Locally stable metrics — the extension the paper announces in §2.1
//! ("In the future, we plan to extend the implementation of HeapMD to
//! also include locally stable metrics in the model").
//!
//! A locally stable metric is flat *within* program phases but steps
//! between them. Its useful model is not one `[min, max]` but a set of
//! **plateau ranges**: the value bands the metric occupies per phase.
//! During checking, a locally stable metric must lie inside *some*
//! calibrated plateau — a value between plateaus (a phase the program
//! never exhibited in training) or beyond them is anomalous.

use serde::{Deserialize, Serialize};

/// One flat stretch of a metric series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Plateau {
    /// Index of the first sample in the plateau.
    pub start: usize,
    /// Number of samples.
    pub len: usize,
    /// Minimum value within the plateau.
    pub min: f64,
    /// Maximum value within the plateau.
    pub max: f64,
}

impl Plateau {
    /// Mean of the plateau's bounds (a representative value).
    pub fn mid(&self) -> f64 {
        (self.min + self.max) / 2.0
    }
}

/// Splits a series into plateaus at *spikes*: steps whose percentage
/// change exceeds `spike_pct` (the same percent-change definition the
/// stability classifier uses).
///
/// Plateaus shorter than `min_len` samples are discarded — they are
/// transition noise, not phases.
pub fn segment(series: &[f64], spike_pct: f64, min_len: usize) -> Vec<Plateau> {
    let mut plateaus = Vec::new();
    if series.is_empty() {
        return plateaus;
    }
    let changes = crate::fluctuation::percent_changes(series);
    let mut start = 0usize;
    let flush = |start: usize, end: usize, out: &mut Vec<Plateau>| {
        let len = end - start;
        if len >= min_len {
            let window = &series[start..end];
            out.push(Plateau {
                start,
                len,
                min: window.iter().copied().fold(f64::INFINITY, f64::min),
                max: window.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            });
        }
    };
    for (i, &c) in changes.iter().enumerate() {
        if c.abs() > spike_pct {
            flush(start, i + 1, &mut plateaus);
            start = i + 1;
        }
    }
    flush(start, series.len(), &mut plateaus);
    plateaus
}

/// Merges the `[min, max]` bands of many plateaus into a minimal set of
/// disjoint ranges, joining bands closer than `gap`.
pub fn merge_ranges(plateaus: &[Plateau], gap: f64) -> Vec<(f64, f64)> {
    let mut bands: Vec<(f64, f64)> = plateaus.iter().map(|p| (p.min, p.max)).collect();
    bands.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let mut merged: Vec<(f64, f64)> = Vec::new();
    for (lo, hi) in bands {
        match merged.last_mut() {
            Some(last) if lo <= last.1 + gap => last.1 = last.1.max(hi),
            _ => merged.push((lo, hi)),
        }
    }
    merged
}

/// A locally stable metric's calibrated model entry: the plateau bands
/// observed across the training inputs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalMetric {
    /// The metric.
    pub kind: heap_graph::MetricKind,
    /// Disjoint value bands a phase may occupy, ascending.
    pub ranges: Vec<(f64, f64)>,
    /// Training runs on which the metric was locally (or globally)
    /// stable.
    pub stable_runs: usize,
    /// Total training runs.
    pub total_runs: usize,
}

impl LocalMetric {
    /// Returns `true` when `value` lies inside some calibrated band,
    /// each widened by `margin` per side.
    pub fn contains(&self, value: f64, margin: f64) -> bool {
        self.ranges
            .iter()
            .any(|&(lo, hi)| value >= lo - margin && value <= hi + margin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_phase_series() -> Vec<f64> {
        let mut s = vec![10.0; 20];
        s.extend(vec![20.0; 20]);
        s
    }

    #[test]
    fn segment_splits_at_the_phase_step() {
        let p = segment(&two_phase_series(), 5.0, 3);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].start, 0);
        assert_eq!(p[0].len, 20);
        assert_eq!((p[0].min, p[0].max), (10.0, 10.0));
        assert_eq!(p[1].start, 20);
        assert_eq!((p[1].min, p[1].max), (20.0, 20.0));
        assert_eq!(p[1].mid(), 20.0);
    }

    #[test]
    fn small_jitter_does_not_split() {
        let series: Vec<f64> = (0..30).map(|i| 50.0 + (i % 2) as f64).collect();
        let p = segment(&series, 5.0, 3);
        assert_eq!(p.len(), 1);
        assert_eq!((p[0].min, p[0].max), (50.0, 51.0));
    }

    #[test]
    fn short_transition_plateaus_are_dropped() {
        // 10,10,10, 15, 20,20,20 with min_len 3: the lone 15 vanishes.
        let series = vec![10.0, 10.0, 10.0, 15.0, 20.0, 20.0, 20.0];
        let p = segment(&series, 5.0, 3);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].max, 10.0);
        assert_eq!(p[1].min, 20.0);
    }

    #[test]
    fn empty_and_tiny_series() {
        assert!(segment(&[], 5.0, 3).is_empty());
        assert!(segment(&[1.0, 2.0], 5.0, 3).is_empty());
        assert_eq!(segment(&[1.0, 1.0, 1.0], 5.0, 3).len(), 1);
    }

    #[test]
    fn merge_joins_overlapping_and_near_bands() {
        let plateaus = vec![
            Plateau {
                start: 0,
                len: 5,
                min: 10.0,
                max: 12.0,
            },
            Plateau {
                start: 5,
                len: 5,
                min: 11.0,
                max: 13.0,
            },
            Plateau {
                start: 10,
                len: 5,
                min: 20.0,
                max: 21.0,
            },
            Plateau {
                start: 15,
                len: 5,
                min: 21.4,
                max: 22.0,
            },
        ];
        let merged = merge_ranges(&plateaus, 0.5);
        assert_eq!(merged, vec![(10.0, 13.0), (20.0, 22.0)]);
    }

    #[test]
    fn local_metric_containment_with_margin() {
        let lm = LocalMetric {
            kind: heap_graph::MetricKind::Indeg1,
            ranges: vec![(10.0, 12.0), (20.0, 22.0)],
            stable_runs: 3,
            total_runs: 5,
        };
        assert!(lm.contains(11.0, 0.5));
        assert!(lm.contains(12.4, 0.5));
        assert!(!lm.contains(16.0, 0.5), "between phases is anomalous");
        assert!(lm.contains(20.0, 0.0));
        assert!(!lm.contains(23.0, 0.5));
    }
}
