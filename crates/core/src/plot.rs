//! ASCII rendering of metric series.
//!
//! The paper's prototype shipped a GUI "that plots heap metrics while
//! the program executes"; this reproduction renders the same plots as
//! text so the experiment binaries can regenerate Figures 4, 5, and 10
//! in a terminal and in `EXPERIMENTS.md`.

/// A horizontal reference line (e.g. a calibrated min/max bound).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefLine {
    /// The y-value of the line.
    pub value: f64,
    /// Glyph used to draw it.
    pub glyph: char,
    /// Short label printed in the legend.
    pub label: &'static str,
}

/// Renders one series as an ASCII chart of the given size, with
/// optional horizontal reference lines.
///
/// The x-axis is the sample index (compressed to `width` columns by
/// averaging); the y-axis spans the data and reference lines.
///
/// # Example
///
/// ```
/// use heapmd::plot::{chart, RefLine};
///
/// let series = [1.0, 2.0, 3.0, 2.0, 1.0];
/// let s = chart("demo", &series, 20, 5, &[RefLine { value: 2.5, glyph: '-', label: "max" }]);
/// assert!(s.contains("demo"));
/// assert!(s.contains('*'));
/// ```
pub fn chart(title: &str, series: &[f64], width: usize, height: usize, refs: &[RefLine]) -> String {
    let width = width.max(8);
    let height = height.max(3);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if series.is_empty() {
        out.push_str("(empty series)\n");
        return out;
    }

    // Compress the series to `width` columns by bucket-averaging.
    let cols: Vec<f64> = (0..width.min(series.len()))
        .map(|c| {
            let n = width.min(series.len());
            let lo = c * series.len() / n;
            let hi = ((c + 1) * series.len() / n).max(lo + 1);
            let bucket = &series[lo..hi.min(series.len())];
            bucket.iter().sum::<f64>() / bucket.len() as f64
        })
        .collect();

    let mut y_min = f64::INFINITY;
    let mut y_max = f64::NEG_INFINITY;
    for &v in cols.iter().chain(refs.iter().map(|r| &r.value)) {
        y_min = y_min.min(v);
        y_max = y_max.max(v);
    }
    if (y_max - y_min).abs() < 1e-12 {
        y_max = y_min + 1.0;
    }
    let row_of = |v: f64| -> usize {
        let frac = (v - y_min) / (y_max - y_min);
        let r = ((1.0 - frac) * (height - 1) as f64).round();
        (r as usize).min(height - 1)
    };

    let mut grid = vec![vec![' '; cols.len()]; height];
    for r in refs {
        let row = row_of(r.value);
        for cell in &mut grid[row] {
            *cell = r.glyph;
        }
    }
    for (c, &v) in cols.iter().enumerate() {
        grid[row_of(v)][c] = '*';
    }

    for (i, row) in grid.iter().enumerate() {
        let y = y_max - (y_max - y_min) * i as f64 / (height - 1) as f64;
        out.push_str(&format!("{y:7.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "        +{}\n         samples 0..{}",
        "-".repeat(cols.len()),
        series.len()
    ));
    if !refs.is_empty() {
        out.push_str("  [");
        for (i, r) in refs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{} {}={:.2}", r.glyph, r.label, r.value));
        }
        out.push(']');
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_renders_placeholder() {
        let s = chart("t", &[], 10, 4, &[]);
        assert!(s.contains("(empty series)"));
    }

    #[test]
    fn stars_cover_all_columns() {
        let series: Vec<f64> = (0..100).map(|i| (i as f64 / 10.0).sin() * 10.0).collect();
        let s = chart("sine", &series, 40, 10, &[]);
        let stars = s.chars().filter(|&c| c == '*').count();
        assert_eq!(stars, 40);
    }

    #[test]
    fn reference_lines_appear_with_legend() {
        let s = chart(
            "bounds",
            &[5.0, 6.0, 7.0],
            10,
            5,
            &[
                RefLine {
                    value: 8.0,
                    glyph: '=',
                    label: "max",
                },
                RefLine {
                    value: 4.0,
                    glyph: '-',
                    label: "min",
                },
            ],
        );
        assert!(s.contains('='));
        assert!(s.contains("max=8.00"));
        assert!(s.contains("min=4.00"));
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = chart("flat", &[3.0; 50], 20, 5, &[]);
        assert!(s.contains('*'));
    }

    #[test]
    fn short_series_uses_one_column_per_sample() {
        let s = chart("short", &[1.0, 2.0], 40, 4, &[]);
        let stars = s.chars().filter(|&c| c == '*').count();
        assert_eq!(stars, 2);
    }
}
