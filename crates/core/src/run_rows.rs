//! Bridge from detector-side [`MetricSample`] series to run-store
//! [`RunRow`]s — the one place that knows how the metric vocabulary
//! maps onto columnar metric ids.

use crate::report::MetricSample;
use heap_graph::{CandidateKind, METRIC_COUNT};
use heapmd_runstore::{RowKind, RunRow};

/// Provenance shared by every row of one recorded run.
#[derive(Debug, Clone)]
pub struct RowSource {
    /// Workload name (e.g. `webd`).
    pub workload: String,
    /// Program version the run executed at.
    pub version: u64,
    /// Run identifier (input id, trace path, session id, ...).
    pub run: String,
    /// Tenant for fleet rows; empty for local runs.
    pub tenant: String,
    /// Which stage produced the rows.
    pub kind: RowKind,
    /// Record time, Unix seconds.
    pub time: u64,
    /// Effective store-sampling rate of the run. At `1.0` (exact) the
    /// sampling columns are omitted, keeping rows byte-identical to
    /// pre-sampling stores; below it every row gains `sampling.rate`
    /// and `sampling.band` so cross-run queries (`--agg drift`) can
    /// separate sampling noise from genuine version drift.
    pub sample_rate: f64,
}

/// Current wall clock as Unix seconds (0 if the clock is before the
/// epoch — the store treats time as advisory, not load-bearing).
pub fn unix_time_now() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Converts a sampled metric series into run-store rows.
///
/// Samples carrying the widened candidate family record all
/// [`CandidateKind::ALL`] metric ids; legacy samples record the seven
/// paper ids (which are the family's first seven, so columns line up
/// across mixed batches).
pub fn rows_from_samples(src: &RowSource, samples: &[MetricSample]) -> Vec<RunRow> {
    samples
        .iter()
        .map(|s| {
            let mut metrics: Vec<(String, f64)> = match &s.candidates {
                Some(c) => CandidateKind::ALL
                    .iter()
                    .map(|k| (k.id().to_string(), c.get(*k)))
                    .collect(),
                None => CandidateKind::ALL[..METRIC_COUNT]
                    .iter()
                    .map(|k| {
                        let paper = k.paper_kind().expect("first seven are paper metrics");
                        (k.id().to_string(), s.metrics.get(paper))
                    })
                    .collect(),
            };
            if src.sample_rate < 1.0 {
                metrics.push(("sampling.rate".to_string(), src.sample_rate));
                metrics.push((
                    "sampling.band".to_string(),
                    crate::model::sampling_widen(1.0, src.sample_rate),
                ));
            }
            RunRow {
                workload: src.workload.clone(),
                version: src.version,
                run: src.run.clone(),
                tenant: src.tenant.clone(),
                kind: src.kind,
                time: src.time,
                seq: s.seq as u64,
                fn_entries: s.fn_entries,
                nodes: s.nodes,
                edges: s.edges,
                dangling: s.dangling,
                metrics,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use heap_graph::{CandidateVector, MetricVector};

    fn sample(seq: usize, with_candidates: bool) -> MetricSample {
        let mut metrics = MetricVector::zero();
        metrics.set(heap_graph::MetricKind::Roots, 12.5);
        let candidates = with_candidates.then(|| {
            let mut c = CandidateVector::zero();
            c.set(CandidateKind::Roots, 12.5);
            c.set(CandidateKind::InEntropy, 1.75);
            c
        });
        MetricSample {
            seq,
            fn_entries: seq as u64 * 100,
            tick: 0,
            metrics,
            nodes: 10,
            edges: 9,
            dangling: 0,
            candidates,
        }
    }

    fn source() -> RowSource {
        RowSource {
            workload: "webd".into(),
            version: 3,
            run: "input-1000".into(),
            tenant: String::new(),
            kind: RowKind::Check,
            time: 1_700_000_000,
            sample_rate: 1.0,
        }
    }

    #[test]
    fn candidate_samples_record_the_full_family() {
        let rows = rows_from_samples(&source(), &[sample(0, true)]);
        assert_eq!(rows[0].metrics.len(), heap_graph::CANDIDATE_COUNT);
        assert_eq!(rows[0].metric("paper.roots"), Some(12.5));
        assert_eq!(rows[0].metric("dist.in_entropy"), Some(1.75));
    }

    #[test]
    fn legacy_samples_record_the_paper_seven() {
        let rows = rows_from_samples(&source(), &[sample(4, false)]);
        assert_eq!(rows[0].metrics.len(), METRIC_COUNT);
        assert_eq!(rows[0].metric("paper.roots"), Some(12.5));
        assert_eq!(rows[0].metric("dist.in_entropy"), None);
        assert_eq!(rows[0].seq, 4);
        assert_eq!(rows[0].version, 3);
    }

    #[test]
    fn sampled_runs_tee_rate_and_band_columns() {
        let mut src = source();
        src.sample_rate = 0.25;
        let rows = rows_from_samples(&src, &[sample(0, true)]);
        assert_eq!(rows[0].metric("sampling.rate"), Some(0.25));
        let band = rows[0].metric("sampling.band").unwrap();
        assert!(band > 0.0, "band column must carry the widening factor");
        assert_eq!(band, crate::model::sampling_widen(1.0, 0.25));
        // Exact runs stay column-compatible with pre-sampling stores.
        let exact = rows_from_samples(&source(), &[sample(0, true)]);
        assert_eq!(exact[0].metric("sampling.rate"), None);
        assert_eq!(exact[0].metric("sampling.band"), None);
    }
}
