//! The execution checker / anomaly detector (paper §2.2).

use crate::bug::{AnomalyKind, BugReport, Direction, LogPhase, StackLogEntry};
use crate::fluctuation::FluctuationStats;
use crate::incident::{DegreeSnapshot, IncidentBundle, IncidentLog, SeriesData};
use crate::model::{CandidateMetric, HeapModel, StableMetric};
use crate::monitor::{Monitor, MonitorCtx};
use crate::phase_model::LocalMetric;
use crate::report::{MetricReport, MetricSample};
use crate::ringbuf::CircularBuffer;
use crate::settings::Settings;
use crate::stability::{classify, StabilityClass};
use heap_graph::MetricKind;
use serde::{Deserialize, Serialize};
use sim_heap::HeapEvent;

/// Maximum post-crossing events attached to one bug's context.
const AFTER_CONTEXT_EVENTS: usize = 8;

/// Fraction of post-warmup samples that must sit at an extreme for a
/// *poorly disguised* report.
const PINNED_FRACTION: f64 = 0.8;

/// Per-locally-stable-metric checking state (the §2.1 extension).
#[derive(Debug)]
struct LocalState {
    lm: LocalMetric,
    in_violation: bool,
}

/// Flight-recorder context snapshotted when an excursion opens, held
/// until the bug finalizes (the report may still grow after-context).
#[derive(Debug, Default)]
struct PendingCapture {
    slope: f64,
    armed_at_seq: Option<u64>,
    series: Vec<SeriesData>,
    degrees: Option<DegreeSnapshot>,
}

/// A calibrated extended candidate straying outside its range during
/// checking. Deliberately *not* a [`BugReport`]: candidate findings
/// ride alongside the legacy verdict — `bugs()` is bit-identical with
/// or without them — and carry the candidate's string id instead of a
/// [`MetricKind`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateFinding {
    /// Stable string id of the candidate that strayed.
    pub id: String,
    /// The observed value.
    pub value: f64,
    /// The calibrated range after the checking slack
    /// (`[min - range_margin, max + range_margin]`).
    pub range: (f64, f64),
    /// Sample index of the excursion's first out-of-range point.
    pub sample_seq: usize,
    /// Cumulative function entries at that point.
    pub fn_entries: u64,
    /// Which bound was crossed.
    pub direction: Direction,
}

/// Per-calibrated-candidate checking state.
#[derive(Debug)]
struct CandState {
    cm: CandidateMetric,
    in_violation: bool,
}

/// Per-stable-metric checking state.
#[derive(Debug)]
struct MetricState {
    sm: StableMetric,
    last: Option<f64>,
    in_violation: bool,
    pending: Option<BugReport>,
    capture: Option<PendingCapture>,
    after_budget: usize,
    pinned_low: usize,
    pinned_high: usize,
    ever_violated: bool,
}

impl MetricState {
    fn margin(&self, settings: &Settings) -> f64 {
        (self.sm.width()).max(0.5) * settings.near_edge_frac
    }
}

/// HeapMD's online execution checker.
///
/// Attach to a [`crate::Process`] (via [`crate::Process::attach`]) and
/// it will, at every metric computation point, verify each globally
/// stable metric against its calibrated range:
///
/// * **Approach logging** — when a stable metric moves within a margin
///   of its calibrated extreme *with a slope toward it*, call-stack
///   logging into a circular buffer is armed, so a subsequent report
///   carries context from before the crossing.
/// * **Range violation** — crossing the calibrated min/max raises a
///   [`BugReport`] with before/during/after call-stack context.
/// * **Poorly disguised** — a metric that exits startup pinned at an
///   extreme of its range (and stays there) is reported at finish.
/// * **Pathological** — a metric that was *unstable* in training but
///   stays globally stable during the checked run is reported at
///   finish as unexpected stability.
///
/// Stability is deliberately *not* required during checking: a metric
/// may wander, so long as it stays within the calibrated range (§2.2).
///
/// # Example
///
/// ```
/// use heapmd::{AnomalyDetector, HeapModel, ModelBuilder, Process, Settings};
/// use std::cell::RefCell;
/// use std::rc::Rc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let settings = Settings::builder().frq(5).build()?;
/// # let mut b = ModelBuilder::new(settings.clone());
/// # for _ in 0..3 {
/// #     let mut p = Process::new(settings.clone());
/// #     for _ in 0..200 { p.enter("w"); p.malloc(16, "n")?; p.leave(); }
/// #     b.add_run(&p.finish("train"));
/// # }
/// # let model = b.build().model;
/// let detector = Rc::new(RefCell::new(AnomalyDetector::new(model, settings.clone())));
/// let mut p = Process::new(settings);
/// p.attach(detector.clone());
/// // … run the program under test …
/// # for _ in 0..100 { p.enter("w"); p.malloc(16, "n")?; p.leave(); }
/// let _report = p.finish("check");
/// assert!(detector.borrow().bugs().is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct AnomalyDetector {
    settings: Settings,
    states: Vec<MetricState>,
    local_states: Vec<LocalState>,
    /// Checking state for the model's calibrated extended candidates.
    /// Empty for paper-mode models — arming is an artifact property,
    /// not a check-time flag.
    cand_states: Vec<CandState>,
    candidate_findings: Vec<CandidateFinding>,
    /// Metrics the model recorded as never-stable in training, tracked
    /// for pathological (unexpected-stability) detection:
    /// (kind, post-warmup values).
    unstable: Vec<(MetricKind, Vec<f64>)>,
    log: CircularBuffer<StackLogEntry>,
    armed: bool,
    /// Sample seq at which the current armed window opened.
    armed_at: Option<u64>,
    samples_seen: usize,
    bugs: Vec<BugReport>,
    /// Bundles staged at bug finalization; survivors of the shutdown
    /// trim move to `incidents` (and the attached log) in `finish_scan`.
    pending_incidents: Vec<IncidentBundle>,
    incidents: Vec<IncidentBundle>,
    incident_log: Option<IncidentLog>,
    startup_checked: bool,
    post_warmup_samples: usize,
    /// Calibration-time store-sampling rate carried by the model.
    model_rate: f64,
    /// Store-sampling rate of the checked stream (updated from the
    /// monitor context online; set from the report offline). The
    /// effective widening rate is the *mismatch ratio* of both — see
    /// [`Self::effective_rate`].
    stream_rate: f64,
}

impl AnomalyDetector {
    /// Creates a checker for the given model.
    pub fn new(model: HeapModel, settings: Settings) -> Self {
        let model_rate = if model.sample_rate.is_finite() && model.sample_rate > 0.0 {
            model.sample_rate
        } else {
            1.0
        };
        let states = model
            .stable
            .iter()
            .map(|&sm| MetricState {
                sm,
                last: None,
                in_violation: false,
                pending: None,
                capture: None,
                after_budget: 0,
                pinned_low: 0,
                pinned_high: 0,
                ever_violated: false,
            })
            .collect::<Vec<_>>();
        let unstable = model.unstable.iter().map(|&k| (k, Vec::new())).collect();
        let local_states = model
            .locally_stable
            .iter()
            .cloned()
            .map(|lm| LocalState {
                lm,
                in_violation: false,
            })
            .collect();
        let cand_states = model
            .candidate_stable
            .iter()
            .cloned()
            .map(|cm| CandState {
                cm,
                in_violation: false,
            })
            .collect();
        AnomalyDetector {
            log: CircularBuffer::new(settings.callstack_capacity),
            settings,
            states,
            local_states,
            cand_states,
            candidate_findings: Vec::new(),
            unstable,
            armed: false,
            armed_at: None,
            samples_seen: 0,
            bugs: Vec::new(),
            pending_incidents: Vec::new(),
            incidents: Vec::new(),
            incident_log: None,
            startup_checked: false,
            post_warmup_samples: 0,
            model_rate,
            stream_rate: 1.0,
        }
    }

    /// The rate that parameterizes confidence widening: the *mismatch
    /// ratio* `min(model, stream) / max(model, stream)` of the model's
    /// calibration-time sampling rate and the checked stream's rate.
    ///
    /// Store sampling biases connectivity metrics (dropped stores are
    /// missing edges), so what needs slack is not sampling per se but
    /// checking a stream against ranges calibrated at a *different*
    /// rate: rate-matched calibration sees the same biased
    /// distribution on both sides and needs no widening, while an
    /// exact model checking a `rate`-sampled stream (or vice versa)
    /// widens by the full mismatch. `1.0` → zero widening,
    /// bit-identical to the pre-sampling detector.
    fn effective_rate(&self) -> f64 {
        let lo = self.model_rate.min(self.stream_rate);
        let hi = self.model_rate.max(self.stream_rate);
        if hi <= 0.0 {
            return 1.0;
        }
        lo / hi
    }

    /// Bug reports raised so far (range violations immediately; poorly
    /// disguised / pathological reports appear after finish).
    pub fn bugs(&self) -> &[BugReport] {
        &self.bugs
    }

    /// Takes ownership of the reports.
    pub fn take_bugs(&mut self) -> Vec<BugReport> {
        std::mem::take(&mut self.bugs)
    }

    /// Returns `true` if any anomaly has been reported.
    pub fn has_anomalies(&self) -> bool {
        !self.bugs.is_empty()
    }

    /// Findings from the widened candidate family (empty unless the
    /// model calibrated extended candidates). Excursions confined to
    /// the shutdown trim are dropped at finish, like range violations.
    pub fn candidate_findings(&self) -> &[CandidateFinding] {
        &self.candidate_findings
    }

    /// Takes ownership of the candidate findings.
    pub fn take_candidate_findings(&mut self) -> Vec<CandidateFinding> {
        std::mem::take(&mut self.candidate_findings)
    }

    /// Attaches an [`IncidentLog`]: every range-violation incident that
    /// survives the shutdown trim is also persisted as a bundle file
    /// under the log's directory at finish.
    pub fn log_incidents_to(&mut self, log: IncidentLog) {
        self.incident_log = Some(log);
    }

    /// The attached incident log, if any — exposes the paths written.
    pub fn incident_log(&self) -> Option<&IncidentLog> {
        self.incident_log.as_ref()
    }

    /// Incident bundles for range violations that survived the
    /// shutdown trim. Populated by `finish_scan` (i.e. after
    /// [`crate::Process::finish`] when attached as a monitor).
    pub fn incidents(&self) -> &[IncidentBundle] {
        &self.incidents
    }

    /// Takes ownership of the incident bundles.
    pub fn take_incidents(&mut self) -> Vec<IncidentBundle> {
        std::mem::take(&mut self.incidents)
    }

    /// Checks a completed [`MetricReport`] offline (post-mortem mode
    /// without event context: reports carry no call-stacks).
    ///
    /// The first `warmup_samples` are skipped as startup, matching the
    /// online checker.
    pub fn check_report(
        model: &HeapModel,
        settings: &Settings,
        report: &MetricReport,
    ) -> Vec<BugReport> {
        // Offline, the run length is known: align the startup skip with
        // the trim the model construction applied.
        let mut settings = settings.clone();
        settings.warmup_samples = settings
            .warmup_samples
            .max(settings.trim_count(report.len()));
        let mut det = AnomalyDetector::new(model.clone(), settings);
        if report.sample_rate.is_finite() && report.sample_rate > 0.0 {
            det.stream_rate = report.sample_rate;
        }
        for sample in &report.samples {
            det.scan_sample(sample, None);
        }
        det.finish_scan();
        det.bugs
    }

    fn describe(event: &HeapEvent) -> String {
        match event {
            HeapEvent::Alloc { size, site, .. } => format!("alloc {size}B at {site}"),
            HeapEvent::Free { obj, size, .. } => format!("free {obj} ({size}B)"),
            HeapEvent::PtrWrite { src, offset, .. } => format!("ptr write {src}+{offset}"),
            HeapEvent::ScalarWrite { src, offset, .. } => format!("scalar write {src}+{offset}"),
            HeapEvent::Read { obj } => format!("read {obj}"),
            HeapEvent::FnEnter { func } => format!("enter fn#{func}"),
            HeapEvent::FnExit { func } => format!("exit fn#{func}"),
        }
    }

    /// Core per-sample logic, shared by online and offline modes.
    /// `ctx` provides the call stack, heap graph, and flight recorder
    /// when running online; offline checking passes `None` and the
    /// resulting reports carry no stacks or series.
    fn scan_sample(&mut self, sample: &MetricSample, ctx: Option<&MonitorCtx<'_>>) {
        let ctx_stack: Option<Vec<String>> = ctx.map(|c| c.stack_names());
        if let Some(c) = ctx {
            if c.sample_rate.is_finite() && c.sample_rate > 0.0 {
                self.stream_rate = c.sample_rate;
            }
        }
        let rate = self.effective_rate();
        self.samples_seen += 1;
        let warmup = self.samples_seen <= self.settings.warmup_samples;

        if !warmup {
            self.post_warmup_samples += 1;
            for (kind, values) in &mut self.unstable {
                values.push(sample.metrics.get(*kind));
            }
        }

        let mut any_armed = false;
        let mut arm_triggers = Vec::new();
        for i in 0..self.states.len() {
            let (lo, hi, margin, last, kind) = {
                let st = &self.states[i];
                let widen = crate::model::sampling_widen(st.sm.width(), rate);
                (
                    st.sm.min - self.settings.range_margin - widen,
                    st.sm.max + self.settings.range_margin + widen,
                    st.margin(&self.settings),
                    st.last,
                    st.sm.kind,
                )
            };
            let v = sample.metrics.get(kind);
            let slope = last.map(|l| v - l).unwrap_or(0.0);

            if warmup {
                self.states[i].last = Some(v);
                continue;
            }

            // Startup→stable transition check (poorly disguised, §4.1):
            // the paper always logs the call-stack when a metric exits
            // startup at an extreme value. Degenerate (near-point)
            // calibrated ranges are exempt — sitting at the only
            // calibrated value is normal, not extreme.
            if hi - lo >= 1.0 {
                let st = &mut self.states[i];
                if v <= lo + margin {
                    st.pinned_low += 1;
                }
                if v >= hi - margin {
                    st.pinned_high += 1;
                }
            }

            // Arm call-stack logging on approach with adverse slope.
            let near_high = v >= hi - margin && v <= hi && slope > 0.0;
            let near_low = v <= lo + margin && v >= lo && slope < 0.0;
            if near_high || near_low {
                any_armed = true;
                arm_triggers.push((kind, v, slope, if near_high { "high" } else { "low" }));
            }

            let violated_dir = if v > hi {
                Some(Direction::AboveMax)
            } else if v < lo {
                Some(Direction::BelowMin)
            } else {
                None
            };

            match violated_dir {
                Some(direction) => {
                    any_armed = true; // keep logging during the excursion
                    arm_triggers.push((kind, v, slope, "violation"));
                    let st = &mut self.states[i];
                    st.ever_violated = true;
                    if !st.in_violation {
                        st.in_violation = true;
                        let mut context: Vec<StackLogEntry> = self.log.iter().cloned().collect();
                        context.push(StackLogEntry {
                            tick: sample.tick,
                            stack: ctx_stack.clone().unwrap_or_default(),
                            event: format!(
                                "metric computation point #{} observed {v:.3}",
                                sample.seq
                            ),
                            phase: LogPhase::During,
                        });
                        let out_by = match direction {
                            Direction::AboveMax => v - hi,
                            Direction::BelowMin => lo - v,
                        };
                        st.pending = Some(BugReport {
                            metric: kind,
                            kind: AnomalyKind::RangeViolation { direction },
                            value: v,
                            range: (lo, hi),
                            sample_seq: sample.seq,
                            fn_entries: sample.fn_entries,
                            sample_rate: rate,
                            band_distance: out_by / (hi - lo).max(1.0),
                            context,
                        });
                        st.after_budget = AFTER_CONTEXT_EVENTS;
                        // Flight-recorder snapshot at the crossing. When
                        // arming starts on this very sample (a jump that
                        // crossed without an approach) the window opens
                        // here too.
                        st.capture = Some(PendingCapture {
                            slope,
                            armed_at_seq: self.armed_at.or(Some(sample.seq as u64)),
                            series: ctx
                                .and_then(|c| c.recorder)
                                .map(|r| r.snapshot().iter().map(SeriesData::from).collect())
                                .unwrap_or_default(),
                            degrees: ctx.map(|c| DegreeSnapshot::capture(c.graph.histogram())),
                        });
                    }
                }
                None => {
                    let st = &mut self.states[i];
                    if st.in_violation {
                        st.in_violation = false;
                        if let Some(bug) = st.pending.take() {
                            let capture = st.capture.take();
                            self.finalize_bug(bug, capture);
                        }
                    }
                }
            }
            self.states[i].last = Some(v);
        }

        // The §2.1 extension: locally stable metrics must sit inside
        // *some* calibrated phase band.
        if !warmup {
            for st in &mut self.local_states {
                // Widen each phase band by the widest band's
                // sampling-confidence slack.
                let bw = st
                    .lm
                    .ranges
                    .iter()
                    .map(|r| r.1 - r.0)
                    .fold(0.0_f64, f64::max);
                let margin =
                    self.settings.range_margin + crate::model::sampling_widen(bw, rate);
                let v = sample.metrics.get(st.lm.kind);
                if st.lm.contains(v, margin) {
                    st.in_violation = false;
                } else if !st.in_violation {
                    st.in_violation = true;
                    let hull = (
                        st.lm.ranges.first().map(|r| r.0).unwrap_or(f64::NAN),
                        st.lm.ranges.last().map(|r| r.1).unwrap_or(f64::NAN),
                    );
                    let bug = BugReport {
                        metric: st.lm.kind,
                        kind: AnomalyKind::LocalRangeViolation,
                        value: v,
                        range: hull,
                        sample_seq: sample.seq,
                        fn_entries: sample.fn_entries,
                        sample_rate: rate,
                        band_distance: 0.0,
                        context: Vec::new(),
                    };
                    crate::bug::emit_anomaly_event(&bug, "detector");
                    self.bugs.push(bug);
                }
            }
        }

        // The widened family: calibrated extended candidates must stay
        // inside their ranges (with the same checking slack). Strictly
        // additive — findings never enter `bugs`, so the legacy verdict
        // is untouched. Samples replayed from pre-candidate artifacts
        // carry no candidate vector and are skipped.
        if !warmup {
            for st in &mut self.cand_states {
                let kind = match heap_graph::CandidateKind::from_id(&st.cm.id) {
                    Some(k) => k,
                    None => continue, // validate() rejects these on load
                };
                let v = match sample.candidate(kind) {
                    Some(v) => v,
                    None => continue,
                };
                let widen = crate::model::sampling_widen(st.cm.width(), rate);
                let lo = st.cm.min - self.settings.range_margin - widen;
                let hi = st.cm.max + self.settings.range_margin + widen;
                let direction = if v > hi {
                    Some(Direction::AboveMax)
                } else if v < lo {
                    Some(Direction::BelowMin)
                } else {
                    None
                };
                match direction {
                    Some(direction) => {
                        if !st.in_violation {
                            st.in_violation = true;
                            self.candidate_findings.push(CandidateFinding {
                                id: st.cm.id.clone(),
                                value: v,
                                range: (lo, hi),
                                sample_seq: sample.seq,
                                fn_entries: sample.fn_entries,
                                direction,
                            });
                            heapmd_obs::count!("heapmd_candidate_findings_total");
                            heapmd_obs::export::emit_event("candidate_finding", |o| {
                                o.field_str("metric", &st.cm.id)
                                    .field_f64("value", v)
                                    .field_f64("lo", lo)
                                    .field_f64("hi", hi)
                                    .field_u64("sample_seq", sample.seq as u64);
                            });
                        }
                    }
                    None => st.in_violation = false,
                }
            }
        }

        if !warmup {
            self.startup_checked = true;
        }
        // Rising edge of the slope heuristic: the circular call-stack
        // buffer starts recording here, so surface why it armed.
        if any_armed && !self.armed {
            self.armed_at = Some(sample.seq as u64);
            heapmd_obs::count!("heapmd_detector_armed_total");
            heapmd_obs::export::emit_event("detector_armed", |o| {
                o.field_u64("sample_seq", sample.seq as u64)
                    .field_u64("fn_entries", sample.fn_entries);
                if let Some((kind, v, slope, edge)) = arm_triggers.first() {
                    o.field_str("metric", kind.short_name())
                        .field_f64("value", *v)
                        .field_f64("slope", *slope)
                        .field_str("edge", edge);
                }
                o.field_u64("trigger_count", arm_triggers.len() as u64)
                    .field_str_array("stack", ctx_stack.as_deref().unwrap_or(&[]));
            });
        }
        self.armed = any_armed;
        if !any_armed {
            self.armed_at = None;
        }
    }

    /// Emits a finalized range-violation bug and stages its incident
    /// bundle. Bundles are only materialized (and written to any
    /// attached log) in `finish_scan`, for bugs that survive the
    /// shutdown trim.
    fn finalize_bug(&mut self, bug: BugReport, capture: Option<PendingCapture>) {
        let cap = capture.unwrap_or_default();
        self.pending_incidents.push(IncidentBundle::from_report(
            "detector",
            &bug,
            cap.slope,
            cap.armed_at_seq,
            self.samples_seen as u64,
            cap.series,
            cap.degrees,
        ));
        crate::bug::emit_anomaly_event(&bug, "detector");
        self.bugs.push(bug);
    }

    fn finish_scan(&mut self) {
        let _span = heapmd_obs::span!("detector_finish");
        let rate = self.effective_rate();
        // Flush excursions still open at end of run.
        let mut flushed = Vec::new();
        for st in &mut self.states {
            if let Some(bug) = st.pending.take() {
                flushed.push((bug, st.capture.take()));
            }
        }
        for (bug, capture) in flushed {
            self.finalize_bug(bug, capture);
        }
        // Shutdown trim: the model ignores the final `trim_frac` of
        // metric computation points as teardown (§2.1); drop range
        // violations that only began there — a heap being dismantled
        // is not an anomaly.
        let n = self.samples_seen;
        let cutoff = n.saturating_sub(self.settings.trim_count(n));
        self.bugs.retain(|b| {
            !matches!(
                b.kind,
                AnomalyKind::RangeViolation { .. } | AnomalyKind::LocalRangeViolation
            ) || b.sample_seq < cutoff
        });
        // Candidate findings follow the same shutdown trim as range
        // violations: a heap being dismantled is not an anomaly in the
        // widened family either.
        self.candidate_findings.retain(|f| f.sample_seq < cutoff);
        // Incident bundles follow the same trim: only bundles whose bug
        // survived are materialized, so arming that never fires — or an
        // excursion confined to teardown — leaves no bundle behind.
        let bugs = &self.bugs;
        let kept: Vec<IncidentBundle> = self
            .pending_incidents
            .drain(..)
            .filter(|inc| {
                bugs.iter().any(|b| {
                    matches!(b.kind, AnomalyKind::RangeViolation { .. })
                        && b.metric == inc.meta.metric
                        && b.sample_seq as u64 == inc.meta.sample_seq
                })
            })
            .collect();
        if let Some(log) = self.incident_log.as_mut() {
            for inc in &kept {
                if let Err(err) = log.write(inc) {
                    heapmd_obs::count!("heapmd_incident_write_errors_total");
                    heapmd_obs::export::emit_event("incident_write_failed", |o| {
                        o.field_str("error", &err.to_string());
                    });
                }
            }
        }
        self.incidents.extend(kept);
        // Poorly disguised: pinned at an extreme for most of the run,
        // without ever crossing.
        let total = self.post_warmup_samples;
        if total > 0 {
            let needed = ((total as f64) * PINNED_FRACTION).ceil() as usize;
            for st in &self.states {
                if st.ever_violated {
                    continue;
                }
                let extreme = if st.pinned_low >= needed {
                    Some(Direction::BelowMin)
                } else if st.pinned_high >= needed {
                    Some(Direction::AboveMax)
                } else {
                    None
                };
                if let Some(extreme) = extreme {
                    let bug = BugReport {
                        metric: st.sm.kind,
                        kind: AnomalyKind::PoorlyDisguised { extreme },
                        value: st.last.unwrap_or(f64::NAN),
                        range: (st.sm.min, st.sm.max),
                        sample_seq: self.samples_seen.saturating_sub(1),
                        fn_entries: 0,
                        sample_rate: rate,
                        band_distance: 0.0,
                        context: Vec::new(),
                    };
                    crate::bug::emit_anomaly_event(&bug, "detector");
                    self.bugs.push(bug);
                }
            }
        }
        // Pathological: an unstable-in-training metric held globally
        // stable during checking.
        for (kind, values) in &self.unstable {
            if values.len() < self.settings.min_samples {
                continue;
            }
            let stats = FluctuationStats::from_series(values);
            if classify(&stats, &self.settings) == StabilityClass::GloballyStable {
                let bug = BugReport {
                    metric: *kind,
                    kind: AnomalyKind::UnexpectedStability,
                    value: *values.last().expect("non-empty"),
                    range: (f64::NAN, f64::NAN),
                    sample_seq: self.samples_seen.saturating_sub(1),
                    fn_entries: 0,
                    sample_rate: rate,
                    band_distance: 0.0,
                    context: Vec::new(),
                };
                crate::bug::emit_anomaly_event(&bug, "detector");
                self.bugs.push(bug);
            }
        }
    }
}

impl Monitor for AnomalyDetector {
    fn on_event(&mut self, ctx: &MonitorCtx<'_>, event: &HeapEvent) {
        // Post-crossing context capture for open excursions.
        for st in &mut self.states {
            if st.in_violation && st.after_budget > 0 {
                if let Some(bug) = &mut st.pending {
                    bug.context.push(StackLogEntry {
                        tick: ctx.heap.tick(),
                        stack: ctx.stack_names(),
                        event: Self::describe(event),
                        phase: LogPhase::After,
                    });
                    st.after_budget -= 1;
                }
            }
        }
        // Approach logging into the circular buffer.
        if self.armed {
            self.log.push(StackLogEntry {
                tick: ctx.heap.tick(),
                stack: ctx.stack_names(),
                event: Self::describe(event),
                phase: LogPhase::Before,
            });
        }
    }

    fn on_sample(&mut self, ctx: &MonitorCtx<'_>, sample: &MetricSample) {
        self.scan_sample(sample, Some(ctx));
    }

    fn on_finish(&mut self, _ctx: &MonitorCtx<'_>) {
        self.finish_scan();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::StableMetric;
    use heap_graph::{MetricVector, METRIC_COUNT};

    fn model_with(kind: MetricKind, min: f64, max: f64) -> HeapModel {
        HeapModel {
            version: crate::model::MODEL_FORMAT_VERSION,
            program: "test".into(),
            settings: Settings::default(),
            stable: vec![StableMetric {
                kind,
                min,
                max,
                avg_change: 0.0,
                std_change: 1.0,
                stable_runs: 5,
                total_runs: 5,
            }],
            unstable: MetricKind::ALL
                .iter()
                .copied()
                .filter(|&k| k != kind)
                .collect(),
            locally_stable: vec![],
            candidate_stable: vec![],
            candidate_unstable: vec![],
            sample_rate: 1.0,
            training_runs: 5,
        }
    }

    fn settings() -> Settings {
        Settings::builder().warmup_samples(2).build().unwrap()
    }

    fn sample(seq: usize, kind: MetricKind, value: f64) -> MetricSample {
        let mut metrics = MetricVector::from_array([50.0; METRIC_COUNT]);
        metrics.set(kind, value);
        // Make non-target metrics noisy so the pathological detector
        // stays quiet in these tests.
        for other in MetricKind::ALL {
            if other != kind {
                metrics.set(other, if seq.is_multiple_of(2) { 20.0 } else { 60.0 });
            }
        }
        MetricSample {
            seq,
            fn_entries: (seq as u64 + 1) * 100,
            tick: (seq as u64 + 1) * 1000,
            metrics,
            nodes: 100,
            edges: 50,
            dangling: 0,
            candidates: None,
        }
    }

    fn run_values(values: &[f64], kind: MetricKind, min: f64, max: f64) -> Vec<BugReport> {
        let mut det = AnomalyDetector::new(model_with(kind, min, max), settings());
        for (i, &v) in values.iter().enumerate() {
            det.scan_sample(&sample(i, kind, v), None);
        }
        det.finish_scan();
        det.bugs
    }

    #[test]
    fn in_range_run_is_clean() {
        let bugs = run_values(
            &[15.0, 15.5, 15.2, 16.0, 15.8, 15.1, 15.6, 16.2],
            MetricKind::Indeg1,
            13.0,
            18.0,
        );
        assert!(bugs.is_empty(), "unexpected: {bugs:?}");
    }

    #[test]
    fn crossing_max_raises_one_bug_per_excursion() {
        let bugs = run_values(
            &[15.0, 15.5, 15.2, 17.0, 19.5, 20.0, 16.0, 15.5],
            MetricKind::Indeg1,
            13.0,
            18.0,
        );
        assert_eq!(bugs.len(), 1);
        let b = &bugs[0];
        assert_eq!(b.metric, MetricKind::Indeg1);
        assert!(matches!(
            b.kind,
            AnomalyKind::RangeViolation {
                direction: Direction::AboveMax
            }
        ));
        assert_eq!(b.value, 19.5);
        assert_eq!(b.sample_seq, 4);
    }

    #[test]
    fn crossing_min_is_reported_below() {
        let bugs = run_values(
            &[15.0, 15.0, 15.0, 14.0, 12.0, 11.0],
            MetricKind::Leaves,
            13.0,
            18.0,
        );
        assert_eq!(bugs.len(), 1);
        assert!(matches!(
            bugs[0].kind,
            AnomalyKind::RangeViolation {
                direction: Direction::BelowMin
            }
        ));
    }

    #[test]
    fn warmup_samples_are_not_checked() {
        // Warmup is 2 samples; the excursion is entirely within them.
        let bugs = run_values(
            &[99.0, 99.0, 15.0, 15.0, 15.0, 15.0, 15.0],
            MetricKind::Indeg1,
            13.0,
            18.0,
        );
        assert!(bugs.is_empty());
    }

    #[test]
    fn instability_within_range_is_permitted() {
        // Paper §2.2: a training-stable metric may be unstable during
        // checking, provided it stays in range.
        let bugs = run_values(
            &[14.0, 17.0, 13.5, 17.5, 13.2, 17.8, 13.1, 17.9],
            MetricKind::Outdeg1,
            13.0,
            18.0,
        );
        assert!(bugs.is_empty());
    }

    #[test]
    fn two_excursions_raise_two_bugs() {
        let bugs = run_values(
            &[15.0, 15.0, 15.0, 19.0, 15.0, 15.0, 12.0, 15.0],
            MetricKind::Indeg1,
            13.0,
            18.0,
        );
        assert_eq!(bugs.len(), 2);
    }

    #[test]
    fn open_excursion_is_flushed_at_finish() {
        let bugs = run_values(
            &[15.0, 15.0, 15.0, 19.0, 20.0, 21.0],
            MetricKind::Indeg1,
            13.0,
            18.0,
        );
        assert_eq!(bugs.len(), 1);
    }

    #[test]
    fn pinned_at_extreme_reports_poorly_disguised() {
        // Stays glued to the minimum from startup on, never crossing.
        let bugs = run_values(
            &[
                13.0, 13.0, 13.05, 13.02, 13.04, 13.01, 13.03, 13.02, 13.0, 13.01,
            ],
            MetricKind::Indeg1,
            13.0,
            33.0,
        );
        assert_eq!(bugs.len(), 1);
        assert!(matches!(
            bugs[0].kind,
            AnomalyKind::PoorlyDisguised {
                extreme: Direction::BelowMin
            }
        ));
    }

    #[test]
    fn pathological_unexpected_stability_reported() {
        // Model says only Indeg1 is stable; feed a run where Roots (not
        // stable in training) is perfectly flat.
        let model = model_with(MetricKind::Indeg1, 0.0, 100.0);
        let mut det = AnomalyDetector::new(model, settings());
        for i in 0..20 {
            let mut metrics = MetricVector::from_array([0.0; METRIC_COUNT]);
            metrics.set(MetricKind::Indeg1, 50.0);
            metrics.set(MetricKind::Roots, 25.0); // flat: unexpected
                                                  // keep the rest noisy
            for k in [
                MetricKind::Indeg2,
                MetricKind::Leaves,
                MetricKind::Outdeg1,
                MetricKind::Outdeg2,
                MetricKind::InEqOut,
            ] {
                metrics.set(k, if i % 2 == 0 { 10.0 } else { 70.0 });
            }
            det.scan_sample(
                &MetricSample {
                    seq: i,
                    fn_entries: i as u64,
                    tick: i as u64,
                    metrics,
                    nodes: 10,
                    edges: 0,
                    dangling: 0,
                    candidates: None,
                },
                None,
            );
        }
        det.finish_scan();
        let patho: Vec<_> = det
            .bugs
            .iter()
            .filter(|b| matches!(b.kind, AnomalyKind::UnexpectedStability))
            .collect();
        assert_eq!(patho.len(), 1);
        assert_eq!(patho[0].metric, MetricKind::Roots);
    }

    #[test]
    fn locally_stable_bands_are_enforced() {
        use crate::phase_model::LocalMetric;
        let mut model = model_with(MetricKind::Indeg1, 0.0, 100.0);
        model.locally_stable = vec![LocalMetric {
            kind: MetricKind::Leaves,
            ranges: vec![(10.0, 12.0), (30.0, 32.0)],
            stable_runs: 3,
            total_runs: 5,
        }];
        let mut det = AnomalyDetector::new(model, settings());
        // Values in either band are fine; 20 (between bands) is not.
        let values = [11.0, 11.0, 31.0, 11.0, 20.0, 31.0, 11.0, 31.0, 30.5, 31.0];
        for (i, &v) in values.iter().enumerate() {
            let mut metrics = MetricVector::from_array([50.0; METRIC_COUNT]);
            metrics.set(MetricKind::Indeg1, 50.0);
            metrics.set(MetricKind::Leaves, v);
            det.scan_sample(
                &MetricSample {
                    seq: i,
                    fn_entries: i as u64,
                    tick: i as u64,
                    metrics,
                    nodes: 10,
                    edges: 0,
                    dangling: 0,
                    candidates: None,
                },
                None,
            );
        }
        det.finish_scan();
        let local: Vec<_> = det
            .bugs
            .iter()
            .filter(|b| matches!(b.kind, AnomalyKind::LocalRangeViolation))
            .collect();
        assert_eq!(local.len(), 1, "{:?}", det.bugs);
        assert_eq!(local[0].metric, MetricKind::Leaves);
        assert_eq!(local[0].sample_seq, 4);
    }

    /// Steps `values` one sample at a time, returning the detector and
    /// whether arming was ever observed.
    fn run_stepped(
        values: &[f64],
        kind: MetricKind,
        min: f64,
        max: f64,
    ) -> (AnomalyDetector, bool) {
        let mut det = AnomalyDetector::new(model_with(kind, min, max), settings());
        let mut ever_armed = false;
        for (i, &v) in values.iter().enumerate() {
            det.scan_sample(&sample(i, kind, v), None);
            ever_armed |= det.armed;
        }
        det.finish_scan();
        (det, ever_armed)
    }

    #[test]
    fn zero_slope_at_the_bound_does_not_arm() {
        // Sitting exactly on each calibrated bound with zero slope:
        // arming requires adverse drift (slope strictly toward the
        // extreme), so a flat series at the edge must stay disarmed.
        // [13, 18] with range_margin 0.5 → effective bounds 12.5/18.5.
        for edge in [18.5, 12.5] {
            let (det, ever_armed) = run_stepped(
                &[edge, edge, edge, edge, 15.0, 15.0, 15.0, 15.0],
                MetricKind::Indeg1,
                13.0,
                18.0,
            );
            assert!(!ever_armed, "flat series at {edge} must not arm");
            assert!(det.bugs.is_empty(), "unexpected: {:?}", det.bugs);
            assert!(det.incidents().is_empty());
        }
    }

    #[test]
    fn touching_min_and_max_in_one_run_stays_clean() {
        // Touches both effective bounds exactly (12.5 and 18.5), with
        // adverse slopes on the way — the detector arms, but a value ON
        // the bound is not a violation, so no bugs and no bundles.
        let (det, ever_armed) = run_stepped(
            &[15.0, 15.0, 12.5, 18.5, 15.0, 12.5, 18.5, 15.0, 15.0, 15.0],
            MetricKind::Indeg1,
            13.0,
            18.0,
        );
        assert!(ever_armed, "bound-touching with adverse slope should arm");
        assert!(det.bugs.is_empty(), "unexpected: {:?}", det.bugs);
        assert!(det.incidents().is_empty());
    }

    #[test]
    fn arming_that_never_fires_writes_no_incident_bundles() {
        let dir =
            std::env::temp_dir().join(format!("heapmd-detector-noarm-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut det = AnomalyDetector::new(model_with(MetricKind::Indeg1, 13.0, 18.0), settings());
        det.log_incidents_to(crate::IncidentLog::new(&dir, "t"));
        // Approaches the max with positive slope (arming) but retreats
        // without ever crossing 18.5.
        let values = [15.0, 15.0, 15.0, 18.3, 18.4, 18.45, 15.0, 15.0, 15.0, 15.0];
        let mut ever_armed = false;
        for (i, &v) in values.iter().enumerate() {
            det.scan_sample(&sample(i, MetricKind::Indeg1, v), None);
            ever_armed |= det.armed;
        }
        det.finish_scan();
        assert!(ever_armed, "the approach should have armed logging");
        assert!(det.bugs.is_empty(), "unexpected: {:?}", det.bugs);
        assert!(det.incidents().is_empty());
        assert!(det.incident_log().unwrap().paths().is_empty());
        assert!(!dir.exists(), "no bundle file may be created");
    }

    #[test]
    fn excursion_confined_to_teardown_leaves_no_bundle() {
        // 20 samples, trim_frac 0.10 → the last 2 are teardown. An
        // excursion that only begins there is trimmed, and its staged
        // incident bundle must be dropped with it.
        let mut values = vec![15.0; 18];
        values.extend([19.0, 20.0]);
        let (det, _) = run_stepped(&values, MetricKind::Indeg1, 13.0, 18.0);
        assert!(det.bugs.is_empty(), "unexpected: {:?}", det.bugs);
        assert!(det.incidents().is_empty());
        assert!(det.pending_incidents.is_empty(), "staging must drain");
    }

    #[test]
    fn crossing_after_an_approach_yields_an_incident_with_armed_window() {
        let values = [
            15.0, 15.0, 15.0, 18.3, 19.5, 15.0, 15.0, 15.0, 15.0, 15.0, 15.0, 15.0,
        ];
        let (det, _) = run_stepped(&values, MetricKind::Indeg1, 13.0, 18.0);
        assert_eq!(det.bugs.len(), 1);
        assert_eq!(det.incidents().len(), 1);
        let inc = &det.incidents()[0];
        assert!(inc.validate().is_ok());
        assert_eq!(inc.meta.source, "detector");
        assert_eq!(inc.meta.metric, MetricKind::Indeg1);
        assert_eq!(inc.meta.value, 19.5);
        assert_eq!(inc.meta.sample_seq, 4);
        assert_eq!(inc.meta.armed_at_seq, Some(3), "armed on the approach");
        assert!((inc.meta.slope - 1.2).abs() < 1e-9);
        // Finalized when the excursion closed at sample index 5.
        assert_eq!(inc.meta.samples_seen, 6);
        // Offline scan: no recorder or heap graph was attached.
        assert!(inc.series.is_empty());
        assert!(inc.degrees.is_none());
        assert!(!inc.stacks.is_empty(), "carries the during-crossing entry");
    }

    #[test]
    fn check_report_offline_matches_online_semantics() {
        let model = model_with(MetricKind::Indeg1, 13.0, 18.0);
        let samples: Vec<MetricSample> = [15.0, 15.0, 15.0, 19.0, 15.0]
            .iter()
            .enumerate()
            .map(|(i, &v)| sample(i, MetricKind::Indeg1, v))
            .collect();
        let report = MetricReport::new("offline", samples);
        let bugs = AnomalyDetector::check_report(&model, &settings(), &report);
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].sample_seq, 3);
    }
}
