//! Offline (post-mortem) traces.
//!
//! HeapMD's second deployment mode (§2): the instrumented program writes
//! an execution trace; the checker later replays it against a
//! previously constructed model. Because the whole trace is available,
//! offline analysis can avoid online cascade effects — and, in this
//! reproduction, lets tests replay identical event streams through
//! different settings.

use crate::callstack::FunctionTable;
use crate::detector::AnomalyDetector;
use crate::error::HeapMdError;
use crate::incident::{IncidentBundle, IncidentLog};
use crate::model::HeapModel;
use crate::monitor::{Monitor, MonitorCtx};
use crate::report::{MetricReport, MetricSample};
use crate::settings::Settings;
use heap_graph::GraphImage;
use serde::{Deserialize, Serialize};
use sim_heap::{HeapEvent, SimHeap};
use std::path::{Path, PathBuf};
use swat::{SampledIngest, SamplerConfig, SamplingInfo};

/// A recorded instrumentation event stream.
///
/// Produced by [`crate::Process::enable_trace`]; replay it with
/// [`Trace::replay`] (to recover the metric report under any sampling
/// settings) or [`Trace::check`] (to run the anomaly detector
/// post-mortem, with full call-stack context).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<HeapEvent>,
    /// Function names interned by the traced run (so replays can render
    /// call stacks). Populated by [`set_functions`](Self::set_functions)
    /// or left empty for anonymous frames.
    functions: Vec<String>,
    /// Sampling metadata when the recording process ran behind a
    /// [`SampledIngest`] filter: the stream is already decimated, and
    /// this records how. `None` (what pre-sampling artifacts
    /// deserialize to) means every store was recorded.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    sampling: Option<SamplingInfo>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: HeapEvent) {
        self.events.push(event);
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[HeapEvent] {
        &self.events
    }

    /// Attaches the traced run's function-name table (index = id).
    pub fn set_functions(&mut self, names: Vec<String>) {
        self.functions = names;
    }

    /// The attached function-name table (empty for anonymous frames).
    pub fn functions(&self) -> &[String] {
        &self.functions
    }

    /// Sampling metadata of the recorded stream (`None` = unsampled).
    pub fn sampling(&self) -> Option<SamplingInfo> {
        self.sampling
    }

    /// Attaches sampling metadata (what a [`SampledIngest`]-fronted
    /// recording measured).
    pub fn set_sampling(&mut self, sampling: Option<SamplingInfo>) {
        self.sampling = sampling;
    }

    /// The effective store-sampling rate of the recorded stream:
    /// `1.0` for unsampled traces.
    pub fn sample_rate(&self) -> f64 {
        self.sampling.map_or(1.0, |s| s.rate())
    }

    /// Produces the sampled copy of this (unsampled) trace: the event
    /// stream a process recording behind a [`SampledIngest`] filter
    /// under `config` would have written, with the measured
    /// [`SamplingInfo`] attached. Alloc/free/function events all
    /// survive; pointer and scalar stores are burst-sampled per
    /// allocation site. With `decimation == 1` the copy is
    /// event-identical to `self` (only the metadata differs).
    pub fn sampled(&self, config: SamplerConfig) -> Trace {
        let mut filter = SampledIngest::new(config);
        let events: Vec<HeapEvent> = self
            .events
            .iter()
            .filter(|ev| filter.admit(ev))
            .copied()
            .collect();
        Trace {
            events,
            functions: self.functions.clone(),
            sampling: Some(filter.info()),
        }
    }

    /// Checks that every `FnEnter`/`FnExit` event references an id
    /// inside the interned `functions` table. An empty table means
    /// anonymous frames, where any id is legal.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::InvalidInput`] naming the first event
    /// whose function id falls outside the table.
    fn validate_function_ids(&self) -> Result<(), HeapMdError> {
        if self.functions.is_empty() {
            return Ok(());
        }
        let table_len = self.functions.len();
        for (i, ev) in self.events.iter().enumerate() {
            let func = match *ev {
                HeapEvent::FnEnter { func } | HeapEvent::FnExit { func } => func,
                _ => continue,
            };
            if func as usize >= table_len {
                return Err(HeapMdError::InvalidInput(format!(
                    "event {i} references function id {func}, but the trace \
                     interns only {table_len} function names"
                )));
            }
        }
        Ok(())
    }

    /// Serializes the trace to JSON.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Serde`].
    pub fn to_json(&self) -> Result<String, HeapMdError> {
        Ok(serde_json::to_string(self)?)
    }

    /// Parses a trace from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Serde`].
    pub fn from_json(json: &str) -> Result<Self, HeapMdError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Writes the trace to a file as one JSON document, atomically
    /// (write-to-temp, then rename). For crash-safe incremental
    /// recording prefer the streaming format
    /// ([`save_stream`](Self::save_stream) / [`crate::TraceWriter`]).
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] / [`HeapMdError::Serde`].
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), HeapMdError> {
        crate::persist::write_atomic(path, self.to_json()?.as_bytes())?;
        Ok(())
    }

    /// Reads a trace previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::Io`] / [`HeapMdError::Serde`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, HeapMdError> {
        Self::from_json(&std::fs::read_to_string(path)?)
    }

    /// Replays the trace, recomputing the metric report under
    /// `settings` (which may differ from the settings used when the
    /// trace was recorded — e.g. a different `frq`).
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::InvalidInput`] when an event references a
    /// function id outside the interned `functions` table (a mangled or
    /// mismatched trace).
    pub fn replay(
        &self,
        settings: &Settings,
        run: impl Into<String>,
    ) -> Result<MetricReport, HeapMdError> {
        self.validate_function_ids()?;
        let mut replayer = Replayer::new(settings.clone(), &self.functions);
        replayer.ingest_batch(&self.events);
        Ok(MetricReport::with_sample_rate(
            run,
            replayer.take_samples(),
            self.sample_rate(),
        ))
    }

    /// Replays the trace through the anomaly detector, post-mortem.
    ///
    /// Unlike [`AnomalyDetector::check_report`], the detector sees the
    /// full event stream, so bug reports carry call-stack context just
    /// as in online mode.
    ///
    /// # Errors
    ///
    /// Returns [`HeapMdError::InvalidInput`] when an event references a
    /// function id outside the interned `functions` table.
    pub fn check(
        &self,
        model: &HeapModel,
        settings: &Settings,
    ) -> Result<Vec<crate::bug::BugReport>, HeapMdError> {
        self.check_logged(model, settings, None).map(|o| o.bugs)
    }

    /// [`check`](Self::check) with incident capture: when `log` is
    /// given, the detector persists one CRC-framed bundle per surviving
    /// range violation into the log's directory, exactly as the online
    /// `check --incidents` path does. The verdict is bit-identical to
    /// [`check`](Self::check) — logging only adds persistence.
    ///
    /// # Errors
    ///
    /// Same as [`check`](Self::check).
    pub fn check_logged(
        &self,
        model: &HeapModel,
        settings: &Settings,
        log: Option<IncidentLog>,
    ) -> Result<TraceCheckOutcome, HeapMdError> {
        self.validate_function_ids()?;
        // The trace's length is known up front: align the startup skip
        // with the trim model construction applied (as
        // [`AnomalyDetector::check_report`] does).
        let fn_entries = self
            .events
            .iter()
            .filter(|e| matches!(e, HeapEvent::FnEnter { .. }))
            .count() as u64;
        let total_samples = (fn_entries / settings.frq) as usize;
        let mut settings = settings.clone();
        settings.warmup_samples = settings
            .warmup_samples
            .max(settings.trim_count(total_samples));
        let settings = settings;
        let mut detector = AnomalyDetector::new(model.clone(), settings.clone());
        if let Some(log) = log {
            detector.log_incidents_to(log);
        }
        let mut replayer = Replayer::new(settings.clone(), &self.functions);
        // The recorded stream is already decimated; the filter stays
        // off, but the detector must still see the measured rate so its
        // ranges widen accordingly.
        replayer.set_rate_override(self.sample_rate());
        let mut monitors: [&mut dyn Monitor; 1] = [&mut detector];
        for ev in &self.events {
            replayer.step(ev, &mut monitors);
        }
        replayer.finish(&mut monitors);
        Ok(TraceCheckOutcome {
            bundle_paths: detector
                .incident_log()
                .map(|l| l.paths().to_vec())
                .unwrap_or_default(),
            bugs: detector.take_bugs(),
            incidents: detector.take_incidents(),
            candidate_findings: detector.take_candidate_findings(),
            samples: replayer.take_samples(),
        })
    }
}

/// What a logged offline check produced (see [`Trace::check_logged`]).
#[derive(Debug)]
pub struct TraceCheckOutcome {
    /// The detector's bug reports.
    pub bugs: Vec<crate::bug::BugReport>,
    /// Incident bundles for range violations that survived the
    /// shutdown trim.
    pub incidents: Vec<IncidentBundle>,
    /// Bundle files written by the incident log.
    pub bundle_paths: Vec<PathBuf>,
    /// Findings from the widened candidate family (empty unless the
    /// model calibrated extended candidates).
    pub candidate_findings: Vec<crate::CandidateFinding>,
    /// The metric samples the check replayed — the same series a
    /// [`Trace::replay`] would produce, exposed so callers (e.g. the
    /// run-store append path) need not replay the trace twice.
    pub samples: Vec<MetricSample>,
}

/// Minimal re-execution of a trace: rebuilds the heap-graph image and
/// the sampling schedule from events alone.
///
/// Crate-internal so the binary codec's pipelined engine
/// ([`crate::trace_codec`]) can drive the same replayer block by block:
/// [`ingest_batch`](Self::ingest_batch) is resumable, carrying a running
/// global event offset so samples land with the same `tick` whether the
/// stream arrives as one slice or as decoded blocks.
pub(crate) struct Replayer {
    graph: GraphImage,
    /// An empty heap stands in for the traced process's; monitors only
    /// use it for the logical clock, which we advance per event.
    heap: SimHeap,
    funcs: FunctionTable,
    stack: Vec<crate::callstack::FuncId>,
    settings: Settings,
    fn_entries: u64,
    samples: Vec<MetricSample>,
    tick: u64,
    /// Events consumed by prior [`ingest_batch`](Self::ingest_batch)
    /// calls: the global event offset the next batch resumes from.
    ingested: u64,
    /// Live store-sampling filter, when this replay *re-samples* an
    /// unsampled stream (production-overhead simulation). Events it
    /// rejects reach neither the graph nor monitors nor the tick
    /// clock, so the result is bit-identical to replaying
    /// [`Trace::sampled`]'s output unfiltered.
    sampling: Option<SampledIngest>,
    /// Effective rate handed to monitors when the *input* stream was
    /// already decimated at record time (the filter itself is off).
    /// `1.0` for unsampled streams; ignored while `sampling` is live.
    rate_override: f64,
}

impl Replayer {
    pub(crate) fn new(settings: Settings, function_names: &[String]) -> Self {
        Replayer::with_shards(settings, function_names, 1)
    }

    /// A replayer whose graph image is partitioned into `shards`
    /// address-range shards (1 = the classic single-slab graph; the
    /// observables are bit-identical either way).
    pub(crate) fn with_shards(
        settings: Settings,
        function_names: &[String],
        shards: usize,
    ) -> Self {
        let mut funcs = FunctionTable::new();
        for name in function_names {
            funcs.intern(name);
        }
        Replayer {
            graph: GraphImage::new(shards),
            heap: SimHeap::new(),
            funcs,
            stack: Vec::new(),
            settings,
            fn_entries: 0,
            samples: Vec::new(),
            tick: 0,
            ingested: 0,
            sampling: None,
            rate_override: 1.0,
        }
    }

    /// Installs a live [`SampledIngest`] filter: subsequent batches and
    /// steps re-sample the incoming (unsampled) stream under `config`.
    pub(crate) fn enable_sampling(&mut self, config: SamplerConfig) {
        self.sampling = Some(SampledIngest::new(config));
    }

    /// Declares the effective rate of an already-decimated input stream
    /// (see [`Trace::sampling`]); monitors observe it via
    /// [`MonitorCtx::sample_rate`].
    pub(crate) fn set_rate_override(&mut self, rate: f64) {
        self.rate_override = rate;
    }

    /// The effective sampling rate monitors currently observe: the live
    /// filter's measured rate when one is installed, the declared
    /// override otherwise.
    pub(crate) fn effective_rate(&self) -> f64 {
        match &self.sampling {
            Some(filter) => filter.effective_rate(),
            None => self.rate_override,
        }
    }

    /// The live filter's measured outcome, when one is installed.
    pub(crate) fn sampling_info(&self) -> Option<SamplingInfo> {
        self.sampling.as_ref().map(|f| f.info())
    }

    /// Returns the replayer to its just-constructed state while
    /// retaining graph capacity (slot slabs, shadow pages, id index):
    /// the serve daemon's shard pools recycle replayers across tenant
    /// streams this way instead of allocating one per stream.
    pub(crate) fn reset(&mut self, settings: Settings, function_names: &[String]) {
        self.graph.reset();
        self.heap = SimHeap::new();
        self.funcs = FunctionTable::new();
        for name in function_names {
            self.funcs.intern(name);
        }
        self.stack.clear();
        self.settings = settings;
        self.fn_entries = 0;
        self.samples.clear();
        self.tick = 0;
        self.ingested = 0;
        // A recycled replayer starts a new stream: rebuild the filter
        // fresh under the same knobs, and forget the prior stream's
        // declared rate.
        if let Some(filter) = &self.sampling {
            self.sampling = Some(SampledIngest::new(filter.config()));
        }
        self.rate_override = 1.0;
    }

    /// Hands over the samples recorded so far.
    pub(crate) fn take_samples(&mut self) -> Vec<MetricSample> {
        std::mem::take(&mut self.samples)
    }

    fn func_name(&mut self, raw: u32) -> crate::callstack::FuncId {
        if (raw as usize) < self.funcs.len() {
            crate::callstack::FuncId(raw)
        } else {
            self.funcs.intern(&format!("fn#{raw}"))
        }
    }

    /// Records a metric computation point from the current graph state.
    fn take_sample(&mut self) -> MetricSample {
        self.graph.reconcile();
        let ext = self.graph.extended_metrics();
        let sample = MetricSample {
            seq: self.samples.len(),
            fn_entries: self.fn_entries,
            tick: self.tick,
            metrics: self.graph.metrics(),
            nodes: ext.nodes,
            edges: ext.edges,
            dangling: ext.dangling_slots,
            candidates: Some(self.graph.candidates()),
        };
        self.samples.push(sample);
        sample
    }

    /// Monitor-free replay: graph mutations between function entries
    /// apply through [`heap_graph::HeapGraph::apply_batch`], amortizing dispatch.
    ///
    /// Equivalent to [`step`](Self::step)-ing each event with no
    /// monitors: samples land at the same function-entry boundaries
    /// with the same tick, and non-graph events inside a flushed span
    /// are ignored by the graph either way. `FnExit` only pops the
    /// (unobserved) call stack, so it needs no flush.
    ///
    /// Resumable: ticks count from the running global offset, so
    /// feeding a stream as N block-sized slices (the pipelined binary
    /// decoder does exactly this, recycling one batch buffer instead of
    /// allocating per block) produces samples bit-identical to one call
    /// over the whole slice.
    pub(crate) fn ingest_batch(&mut self, events: &[HeapEvent]) {
        if self.sampling.is_none() {
            return self.ingest_batch_raw(events);
        }
        let mut filter = self.sampling.take().expect("checked above");
        self.ingest_batch_filtered(events, &mut filter);
        self.sampling = Some(filter);
    }

    /// Single-pass fused filter + ingest: the sampled twin of
    /// [`ingest_batch_raw`](Self::ingest_batch_raw). Rejected stores
    /// flush the pending graph slice around themselves (zero-copy —
    /// the batch is never duplicated) and are excluded from the event
    /// offset, so ticks and sample points land exactly where replaying
    /// the recorded sampled trace would put them. The filter is
    /// deterministic and sequential, so chunking cannot change the
    /// outcome.
    fn ingest_batch_filtered(&mut self, events: &[HeapEvent], filter: &mut SampledIngest) {
        let base = self.ingested;
        let mut admitted = 0u64;
        let mut batch_start = 0;
        for (i, ev) in events.iter().enumerate() {
            match *ev {
                HeapEvent::FnEnter { func } => {
                    self.graph.apply_batch(&events[batch_start..i]);
                    batch_start = i + 1;
                    let id = self.func_name(func);
                    self.stack.push(id);
                    self.fn_entries += 1;
                    admitted += 1;
                    self.tick = base + admitted;
                    if self.fn_entries.is_multiple_of(self.settings.frq) {
                        self.take_sample();
                    }
                }
                HeapEvent::FnExit { .. } => {
                    self.stack.pop();
                    admitted += 1;
                }
                HeapEvent::Alloc { .. }
                | HeapEvent::PtrWrite { .. }
                | HeapEvent::ScalarWrite { .. } => {
                    if filter.admit(ev) {
                        admitted += 1;
                    } else {
                        self.graph.apply_batch(&events[batch_start..i]);
                        batch_start = i + 1;
                    }
                }
                _ => {
                    admitted += 1;
                }
            }
        }
        self.graph.apply_batch(&events[batch_start..]);
        self.ingested = base + admitted;
        self.tick = self.ingested;
    }

    fn ingest_batch_raw(&mut self, events: &[HeapEvent]) {
        let base = self.ingested;
        let mut batch_start = 0;
        for (i, ev) in events.iter().enumerate() {
            match *ev {
                HeapEvent::FnEnter { func } => {
                    self.graph.apply_batch(&events[batch_start..i]);
                    batch_start = i + 1;
                    let id = self.func_name(func);
                    self.stack.push(id);
                    self.fn_entries += 1;
                    self.tick = base + i as u64 + 1;
                    if self.fn_entries.is_multiple_of(self.settings.frq) {
                        self.take_sample();
                    }
                }
                HeapEvent::FnExit { .. } => {
                    self.stack.pop();
                }
                _ => {}
            }
        }
        self.graph.apply_batch(&events[batch_start..]);
        self.ingested = base + events.len() as u64;
        self.tick = self.ingested;
    }

    pub(crate) fn step(&mut self, ev: &HeapEvent, monitors: &mut [&mut dyn Monitor]) {
        if let Some(filter) = self.sampling.as_mut() {
            // A rejected store is as if it was never recorded: no tick,
            // no graph mutation, no monitor callback — bit-identical to
            // stepping the pre-filtered stream without a filter.
            if !filter.admit(ev) {
                return;
            }
        }
        self.tick += 1;
        match *ev {
            HeapEvent::FnEnter { func } => {
                let id = self.func_name(func);
                self.stack.push(id);
                self.fn_entries += 1;
            }
            HeapEvent::FnExit { .. } => {
                self.stack.pop();
            }
            _ => self.graph.apply(ev),
        }
        let ctx = MonitorCtx {
            graph: &self.graph,
            heap: &self.heap,
            stack: &self.stack,
            funcs: &self.funcs,
            fn_entries: self.fn_entries,
            sample_rate: self.effective_rate(),
            recorder: None,
        };
        for m in monitors.iter_mut() {
            m.on_event(&ctx, ev);
        }
        if matches!(ev, HeapEvent::FnEnter { .. })
            && self.fn_entries.is_multiple_of(self.settings.frq)
        {
            let sample = self.take_sample();
            let ctx = MonitorCtx {
                graph: &self.graph,
                heap: &self.heap,
                stack: &self.stack,
                funcs: &self.funcs,
                fn_entries: self.fn_entries,
                sample_rate: self.effective_rate(),
                recorder: None,
            };
            for m in monitors.iter_mut() {
                m.on_sample(&ctx, &sample);
            }
        }
    }

    pub(crate) fn finish(&mut self, monitors: &mut [&mut dyn Monitor]) {
        let ctx = MonitorCtx {
            graph: &self.graph,
            heap: &self.heap,
            stack: &self.stack,
            funcs: &self.funcs,
            fn_entries: self.fn_entries,
            sample_rate: self.effective_rate(),
            recorder: None,
        };
        for m in monitors.iter_mut() {
            m.on_finish(&ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::Process;

    fn traced_run(frq: u64, n: usize) -> (Trace, MetricReport) {
        let settings = Settings::builder().frq(frq).build().unwrap();
        let mut p = Process::new(settings);
        p.enable_trace();
        let mut prev = None;
        for _ in 0..n {
            p.enter("build");
            let node = p.malloc(16, "node").unwrap();
            if let Some(prev) = prev {
                p.write_ptr(node.offset(8), prev).unwrap();
            }
            prev = Some(node);
            p.leave();
        }
        let mut trace = p.take_trace().unwrap();
        let names: Vec<String> = (0..p.functions().len())
            .map(|i| {
                p.functions()
                    .name(crate::callstack::FuncId(i as u32))
                    .to_string()
            })
            .collect();
        trace.set_functions(names);
        let report = p.finish("online");
        (trace, report)
    }

    #[test]
    fn replay_reproduces_the_online_report() {
        let (trace, online) = traced_run(5, 100);
        let settings = Settings::builder().frq(5).build().unwrap();
        let offline = trace.replay(&settings, "offline").unwrap();
        assert_eq!(online.len(), offline.len());
        for (a, b) in online.samples.iter().zip(&offline.samples) {
            assert_eq!(a.metrics, b.metrics);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.fn_entries, b.fn_entries);
        }
    }

    #[test]
    fn batched_replay_matches_stepped_replay() {
        let (trace, _) = traced_run(5, 100);
        let settings = Settings::builder().frq(5).build().unwrap();
        let batched = trace.replay(&settings, "batched").unwrap();
        // Stepped reference: drive the replayer one event at a time.
        let mut stepped = Replayer::new(settings, trace.functions());
        for ev in trace.events() {
            stepped.step(ev, &mut []);
        }
        assert_eq!(batched.samples, stepped.samples);
    }

    #[test]
    fn blockwise_ingest_matches_whole_slice_ingest() {
        let (trace, _) = traced_run(5, 200);
        let settings = Settings::builder().frq(5).build().unwrap();
        let whole = trace.replay(&settings, "whole").unwrap();
        // Feed the same stream in awkwardly sized chunks, as the
        // pipelined binary decoder does block by block.
        for chunk in [1usize, 7, 64, 1000] {
            let mut r = Replayer::new(settings.clone(), trace.functions());
            for part in trace.events().chunks(chunk) {
                r.ingest_batch(part);
            }
            assert_eq!(
                whole.samples,
                r.take_samples(),
                "chunk size {chunk} must not change the replay"
            );
        }
    }

    #[test]
    fn reset_replayer_reproduces_a_fresh_one() {
        let (trace, _) = traced_run(5, 120);
        let settings = Settings::builder().frq(5).build().unwrap();
        for shards in [1usize, 4] {
            let mut fresh = Replayer::with_shards(settings.clone(), trace.functions(), shards);
            fresh.ingest_batch(trace.events());
            let want = fresh.take_samples();
            // Dirty a replayer with a different stream, then reset it.
            let (other, _) = traced_run(3, 77);
            let mut reused = Replayer::with_shards(settings.clone(), other.functions(), shards);
            reused.ingest_batch(other.events());
            reused.reset(settings.clone(), trace.functions());
            reused.ingest_batch(trace.events());
            assert_eq!(
                reused.take_samples(),
                want,
                "reset replayer diverged (shards={shards})"
            );
        }
    }

    #[test]
    fn replay_supports_different_sampling_rates() {
        let (trace, _) = traced_run(5, 100);
        let coarse = Settings::builder().frq(20).build().unwrap();
        let report = trace.replay(&coarse, "coarse").unwrap();
        assert_eq!(report.len(), 5);
    }

    #[test]
    fn out_of_table_function_id_is_invalid_input() {
        let (mut trace, _) = traced_run(5, 20);
        let table_len = trace.functions().len() as u32;
        trace.push(sim_heap::HeapEvent::FnEnter {
            func: table_len + 3,
        });
        let settings = Settings::builder().frq(5).build().unwrap();
        assert!(matches!(
            trace.replay(&settings, "bad"),
            Err(HeapMdError::InvalidInput(_))
        ));
        let model = crate::model::ModelBuilder::new(settings.clone())
            .build()
            .model;
        assert!(matches!(
            trace.check(&model, &settings),
            Err(HeapMdError::InvalidInput(_))
        ));
        // Anonymous frames (no table) remain permissive.
        trace.set_functions(Vec::new());
        assert!(trace.replay(&settings, "anon").is_ok());
    }

    #[test]
    fn trace_json_round_trip() {
        let (trace, _) = traced_run(10, 30);
        let json = trace.to_json().unwrap();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn offline_check_finds_the_same_violation_as_online() {
        use crate::model::{HeapModel, StableMetric};
        use heap_graph::MetricKind;

        // Model claiming Roots must stay within [0, 5]: a growing list
        // has Roots ≈ 1/n·100 shrinking toward 0 — fine — but a fresh
        // run that never links nodes has Roots = 100.
        let model = HeapModel {
            version: crate::model::MODEL_FORMAT_VERSION,
            program: "t".into(),
            settings: Settings::default(),
            stable: vec![StableMetric {
                kind: MetricKind::Roots,
                min: 0.0,
                max: 5.0,
                avg_change: 0.0,
                std_change: 0.5,
                stable_runs: 3,
                total_runs: 3,
            }],
            unstable: vec![],
            locally_stable: vec![],
            candidate_stable: vec![],
            candidate_unstable: vec![],
            sample_rate: 1.0,
            training_runs: 3,
        };
        let settings = Settings::builder()
            .frq(5)
            .warmup_samples(1)
            .build()
            .unwrap();
        // Buggy run: isolated nodes only (Roots = 100 > 5).
        let mut p = Process::new(settings.clone());
        p.enable_trace();
        for _ in 0..50 {
            p.enter("loop");
            p.malloc(16, "iso").unwrap();
            p.leave();
        }
        let trace = p.take_trace().unwrap();
        let bugs = trace.check(&model, &settings).unwrap();
        assert_eq!(bugs.len(), 1);
        assert_eq!(bugs[0].metric, MetricKind::Roots);
    }
}
